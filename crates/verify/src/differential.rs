//! The generic differential runner: evaluate two (path, transform) arms
//! over one sweep and diff everything — per-point canonical digests,
//! numeric values under a tolerance class, and the failure ledger.
//!
//! The repo carries three coexisting evaluation paths (legacy per-point,
//! planned, factored) whose equivalence used to be asserted by bespoke
//! golden tests, each re-rolling the same sweep/digest scaffolding. A
//! differential case replaces that with data: *which* two arms, *what*
//! metamorphic transform, *which* tolerance — the comparison machinery
//! is shared and exhaustive.
//!
//! A **metamorphic transform** is a change to the inputs or the engine
//! configuration that must not change results: reordering the candidate
//! list, attaching a memoization cache, pinning the scheduler to a
//! different thread count (all bit-exact), or round-tripping continuous
//! axes through a unit conversion (equal only up to float rounding,
//! which is exactly what the approximate tolerance classes are for).
//!
//! The what-if subsystem gets the same treatment: [`whatif_grid_diff`]
//! compares the batch rule-grid screening path against a naive
//! one-rule-at-a-time loop over the [`whatif_grid_64`] grid.

use crate::tolerance::Tolerance;
use acs_cache::{CacheKey, ShardedCache};
use acs_dse::{
    CandidateParams, DseRunner, EvaluatedDesign, LatticeScreen, LatticeScreenOptions, SweepReport,
    SweepSpec,
};
use acs_errors::json::Value;
use acs_errors::AcsError;
use acs_llm::rng::SplitMix64;
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_policy::{Acr2022, Acr2023, DeviceMetrics, HbmRule2024, MemBwRule};
use acs_whatif::{ClassificationLedger, RuleGrid, RuleSpec};
use std::fmt;
use std::sync::Arc;

/// Which evaluation pipeline an arm drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPath {
    /// Per-point pipeline (`try_evaluate_legacy`): no shared planning.
    Legacy,
    /// Plan-then-execute pipeline (`run_report`).
    Planned,
    /// Dependency-keyed leg-table pipeline (`run_report_factored`).
    Factored,
    /// Broadcast lattice pipeline over fused leg vectors
    /// (`run_report_lattice`).
    Lattice,
}

impl EvalPath {
    fn run(self, runner: &DseRunner, candidates: &[CandidateParams]) -> SweepReport {
        match self {
            EvalPath::Legacy => runner.run_report_legacy(candidates),
            EvalPath::Planned => runner.run_report(candidates),
            EvalPath::Factored => runner.run_report_factored(candidates),
            EvalPath::Lattice => runner.run_report_lattice(candidates),
        }
    }
}

impl fmt::Display for EvalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EvalPath::Legacy => "legacy",
            EvalPath::Planned => "planned",
            EvalPath::Factored => "factored",
            EvalPath::Lattice => "lattice",
        })
    }
}

/// A result-preserving change to an arm's inputs or engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// No change: the arm differs only by its [`EvalPath`].
    Identity,
    /// Seeded Fisher–Yates shuffle of the candidate list. Leg tables and
    /// plans key on parameter *values*, not sweep positions, so the same
    /// candidates in any order must produce the same result *set*;
    /// comparison switches to set discipline automatically.
    PermuteOrder {
        /// Shuffle seed (deterministic replay).
        seed: u64,
    },
    /// Round-trip the continuous axes through a unit conversion
    /// (TB/s → GB/s → TB/s, GB/s → MB/s → GB/s). Exact over the reals,
    /// off by an ulp or two over `f64` — requires an approximate
    /// tolerance, which is the point: it exercises the tolerance
    /// machinery against realistically perturbed inputs.
    RescaleUnits,
    /// Evaluate through a fresh shared memoization cache. Cache hits
    /// must return bit-identical values to cold evaluation.
    WarmCache,
    /// Pin the sweep scheduler to exactly this many worker threads.
    /// Scheduling must never leak into results.
    Threads(usize),
}

impl Transform {
    /// Rewrite the candidate list for this arm.
    #[must_use]
    pub fn apply(&self, candidates: &[CandidateParams]) -> Vec<CandidateParams> {
        match self {
            Transform::Identity | Transform::WarmCache | Transform::Threads(_) => {
                candidates.to_vec()
            }
            Transform::PermuteOrder { seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut shuffled = candidates.to_vec();
                for i in (1..shuffled.len()).rev() {
                    #[allow(clippy::cast_possible_truncation)]
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    shuffled.swap(i, j);
                }
                shuffled
            }
            Transform::RescaleUnits => candidates
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.hbm_tb_s = c.hbm_tb_s * 1000.0 / 1000.0;
                    c.device_bw_gb_s = c.device_bw_gb_s * 1000.0 / 1000.0;
                    c
                })
                .collect(),
        }
    }

    /// Configure the runner for this arm.
    #[must_use]
    pub fn configure(&self, runner: DseRunner) -> DseRunner {
        match self {
            Transform::Threads(n) => runner.with_threads(*n),
            Transform::WarmCache => runner.with_cache(Arc::new(ShardedCache::new(8192))),
            _ => runner,
        }
    }

    /// Whether this transform reorders points (switching the comparison
    /// from index-paired to set discipline).
    #[must_use]
    pub fn reorders(&self) -> bool {
        matches!(self, Transform::PermuteOrder { .. })
    }

    /// The tightest tolerance this transform can honestly promise:
    /// everything is bit-exact except the unit round-trip.
    #[must_use]
    pub fn natural_tolerance(&self) -> Tolerance {
        match self {
            Transform::RescaleUnits => Tolerance::Relative(1e-9),
            _ => Tolerance::Exact,
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Identity => f.write_str("identity"),
            Transform::PermuteOrder { seed } => write!(f, "permute(seed={seed})"),
            Transform::RescaleUnits => f.write_str("rescale-units"),
            Transform::WarmCache => f.write_str("warm-cache"),
            Transform::Threads(n) => write!(f, "threads({n})"),
        }
    }
}

/// One side of a differential comparison.
#[derive(Debug, Clone)]
pub struct Arm {
    /// The pipeline to drive.
    pub path: EvalPath,
    /// The metamorphic change applied to this arm.
    pub transform: Transform,
}

impl Arm {
    /// An untransformed arm on `path`.
    #[must_use]
    pub fn plain(path: EvalPath) -> Self {
        Arm { path, transform: Transform::Identity }
    }
}

impl fmt::Display for Arm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.path, self.transform)
    }
}

/// A declarative differential case: two arms and the tolerance their
/// results must meet.
#[derive(Debug, Clone)]
pub struct DiffCase {
    /// Name used in reports and mismatch messages.
    pub label: String,
    /// Reference arm.
    pub left: Arm,
    /// Arm under test.
    pub right: Arm,
    /// Equality discipline for numeric leaves.
    pub tolerance: Tolerance,
}

impl DiffCase {
    /// Two plain paths compared bit-exactly — the path-equivalence shape.
    #[must_use]
    pub fn paths(label: &str, left: EvalPath, right: EvalPath) -> Self {
        DiffCase {
            label: label.to_owned(),
            left: Arm::plain(left),
            right: Arm::plain(right),
            tolerance: Tolerance::Exact,
        }
    }

    /// One path against its transformed self, at the transform's natural
    /// tolerance — the metamorphic shape.
    #[must_use]
    pub fn metamorphic(label: &str, path: EvalPath, transform: Transform) -> Self {
        let tolerance = transform.natural_tolerance();
        DiffCase { label: label.to_owned(), left: Arm::plain(path), right: Arm { path, transform }, tolerance }
    }
}

/// The built-in pairings: every coexisting path against the planned
/// reference, plus one case per metamorphic transform. This is the suite
/// `tests/plan_equivalence.rs` and `tests/factored_equivalence.rs` are
/// expressed in, and what `acs-verify diff` runs.
#[must_use]
pub fn standard_suite() -> Vec<DiffCase> {
    vec![
        DiffCase::paths("planned-vs-legacy", EvalPath::Planned, EvalPath::Legacy),
        DiffCase::paths("factored-vs-planned", EvalPath::Factored, EvalPath::Planned),
        DiffCase::metamorphic(
            "factored-permuted",
            EvalPath::Factored,
            Transform::PermuteOrder { seed: 0x5EED },
        ),
        DiffCase::metamorphic("planned-warm-cache", EvalPath::Planned, Transform::WarmCache),
        DiffCase::metamorphic("planned-threads-1", EvalPath::Planned, Transform::Threads(1)),
        DiffCase::metamorphic("planned-threads-3", EvalPath::Planned, Transform::Threads(3)),
        DiffCase::metamorphic("planned-rescaled", EvalPath::Planned, Transform::RescaleUnits),
        DiffCase::paths("lattice-vs-factored", EvalPath::Lattice, EvalPath::Factored),
        DiffCase::metamorphic(
            "lattice-permuted",
            EvalPath::Lattice,
            Transform::PermuteOrder { seed: 0xA77 },
        ),
        DiffCase::metamorphic("lattice-warm-cache", EvalPath::Lattice, Transform::WarmCache),
    ]
}

/// Pools each random sweep axis draws from: plausible hardware values
/// spanning the paper's Table-3/Table-5 ranges plus edges the builder
/// quantizes (sub-unit HBM, odd systolic dims).
const DIM_POOL: [u32; 5] = [8, 16, 24, 32, 48];
const LANES_POOL: [u32; 5] = [1, 2, 4, 6, 8];
const L1_POOL: [u32; 6] = [64, 128, 192, 256, 512, 1024];
const L2_POOL: [u32; 6] = [24, 40, 48, 64, 80, 96];
const HBM_POOL: [f64; 6] = [0.8, 1.6, 2.0, 2.4, 3.2, 4.0];
const BW_POOL: [f64; 5] = [300.0, 400.0, 600.0, 750.0, 900.0];

fn sample_u32(rng: &mut SplitMix64, pool: &[u32], max_take: usize) -> Vec<u32> {
    let mut pool = pool.to_vec();
    for i in (1..pool.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        pool.swap(i, j);
    }
    #[allow(clippy::cast_possible_truncation)]
    let take = 1 + (rng.next_u64() % max_take as u64) as usize;
    pool.truncate(take.min(pool.len()));
    pool.sort_unstable();
    pool
}

fn sample_f64(rng: &mut SplitMix64, pool: &[f64], max_take: usize) -> Vec<f64> {
    let mut pool = pool.to_vec();
    for i in (1..pool.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        pool.swap(i, j);
    }
    #[allow(clippy::cast_possible_truncation)]
    let take = 1 + (rng.next_u64() % max_take as u64) as usize;
    pool.truncate(take.min(pool.len()));
    pool.sort_by(f64::total_cmp);
    pool
}

/// Draw a well-formed random [`SweepSpec`] from realistic axis pools,
/// deterministically in `seed` — the property-based input source behind
/// the seeded `acs-verify diff` cases. Every generated spec must diff
/// clean between any two evaluation paths; any seed that does not is a
/// one-line reproducer.
#[must_use]
pub fn random_sweep_spec(seed: u64) -> SweepSpec {
    let mut rng = SplitMix64::new(seed);
    SweepSpec {
        systolic_dims: sample_u32(&mut rng, &DIM_POOL, 2),
        lanes_per_core: sample_u32(&mut rng, &LANES_POOL, 2),
        l1_kib: sample_u32(&mut rng, &L1_POOL, 3),
        l2_mib: sample_u32(&mut rng, &L2_POOL, 2),
        hbm_tb_s: sample_f64(&mut rng, &HBM_POOL, 3),
        device_bw_gb_s: sample_f64(&mut rng, &BW_POOL, 2),
    }
}

/// One disagreement between the two arms.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Where in the sweep (candidate name, or a ledger/shape note).
    pub at: String,
    /// What differed.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.at, self.detail)
    }
}

/// The outcome of one differential case.
#[derive(Debug)]
pub struct DiffReport {
    /// The case's label.
    pub label: String,
    /// Points evaluated per arm.
    pub points: usize,
    /// Successful designs on the reference arm.
    pub ok: usize,
    /// Ledgered failures on the reference arm.
    pub failed: usize,
    /// Every disagreement found (empty on a clean diff).
    pub mismatches: Vec<Mismatch>,
}

impl DiffReport {
    /// Whether the two arms agreed everywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Panic with every mismatch listed — for use inside tests.
    ///
    /// # Panics
    ///
    /// When the diff is not clean.
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "differential case '{}' found {} mismatch(es) over {} points:\n{}",
            self.label,
            self.mismatches.len(),
            self.points,
            self.mismatches.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n"),
        );
    }
}

/// Canonical content digest of one evaluated design: any drift in any
/// field — including float bit patterns, which the canonical JSON codec
/// round-trips exactly — changes this value.
///
/// # Errors
///
/// Propagates serialization failure (non-finite floats).
pub fn design_digest(design: &EvaluatedDesign) -> Result<u64, AcsError> {
    Ok(CacheKey::from_value(&design.to_json_value()?).digest())
}

/// The differential harness: holds the model/workload context and
/// evaluates cases over caller-supplied candidate lists.
#[derive(Debug)]
pub struct Differential {
    model: ModelConfig,
    workload: WorkloadConfig,
}

impl Differential {
    /// A harness over an explicit model and workload.
    #[must_use]
    pub fn new(model: ModelConfig, workload: WorkloadConfig) -> Self {
        Differential { model, workload }
    }

    /// The paper's default verification context (Llama-3-8B, paper
    /// workload) — what the golden equivalence tests use.
    #[must_use]
    pub fn paper_default() -> Self {
        Differential::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
    }

    /// A fresh untransformed runner over the harness's context.
    #[must_use]
    pub fn runner(&self) -> DseRunner {
        DseRunner::new(self.model.clone(), self.workload)
    }

    /// Evaluate both arms of `case` over `candidates` and diff them.
    #[must_use]
    pub fn run(&self, candidates: &[CandidateParams], case: &DiffCase) -> DiffReport {
        let left = self.eval_arm(candidates, &case.left);
        let right = self.eval_arm(candidates, &case.right);
        let as_set = case.left.transform.reorders() || case.right.transform.reorders();
        let mut mismatches = Vec::new();
        compare_reports(&left, &right, case.tolerance, as_set, &mut mismatches);
        DiffReport {
            label: case.label.clone(),
            points: left.total(),
            ok: left.designs.len(),
            failed: left.failures.len(),
            mismatches,
        }
    }

    fn eval_arm(&self, candidates: &[CandidateParams], arm: &Arm) -> SweepReport {
        let runner = arm
            .transform
            .configure(DseRunner::new(self.model.clone(), self.workload));
        let transformed = arm.transform.apply(candidates);
        arm.path.run(&runner, &transformed)
    }
}

fn push(mismatches: &mut Vec<Mismatch>, at: impl Into<String>, detail: String) {
    // A broken sweep disagrees everywhere; a bounded list keeps the
    // report readable while still proving the diff is dirty.
    if mismatches.len() < 32 {
        mismatches.push(Mismatch { at: at.into(), detail });
    }
}

fn compare_reports(
    left: &SweepReport,
    right: &SweepReport,
    tolerance: Tolerance,
    as_set: bool,
    mismatches: &mut Vec<Mismatch>,
) {
    if left.total() != right.total() {
        push(
            mismatches,
            "shape",
            format!("left evaluated {} points, right {}", left.total(), right.total()),
        );
        return;
    }
    compare_failures(left, right, as_set, mismatches);
    if as_set {
        compare_designs_as_set(left, right, mismatches);
    } else {
        compare_designs_paired(left, right, tolerance, mismatches);
    }
}

fn compare_failures(
    left: &SweepReport,
    right: &SweepReport,
    as_set: bool,
    mismatches: &mut Vec<Mismatch>,
) {
    if left.failures.len() != right.failures.len() {
        push(
            mismatches,
            "ledger",
            format!("{} failures vs {}", left.failures.len(), right.failures.len()),
        );
        return;
    }
    if as_set {
        // Reordered sweeps fail at different indices; the (params, kind)
        // multiset is the order-free invariant.
        let keyed = |report: &SweepReport| {
            let mut v: Vec<(String, &'static str)> =
                report.failures.iter().map(|f| (f.params.clone(), f.kind())).collect();
            v.sort();
            v
        };
        let (l, r) = (keyed(left), keyed(right));
        for (lf, rf) in l.iter().zip(&r) {
            if lf != rf {
                push(mismatches, lf.0.clone(), format!("failure {lf:?} vs {rf:?}"));
            }
        }
        return;
    }
    for (lf, rf) in left.failures.iter().zip(&right.failures) {
        if lf.index != rf.index || lf.params != rf.params || lf.kind() != rf.kind() {
            push(
                mismatches,
                format!("failure #{}", lf.index),
                format!(
                    "({}, {}, {}) vs ({}, {}, {})",
                    lf.index,
                    lf.params,
                    lf.kind(),
                    rf.index,
                    rf.params,
                    rf.kind()
                ),
            );
        }
    }
}

fn compare_designs_as_set(left: &SweepReport, right: &SweepReport, mismatches: &mut Vec<Mismatch>) {
    let keyed = |report: &SweepReport| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = report
            .successes()
            .map(|d| (d.name.clone(), design_digest(d).unwrap_or(0)))
            .collect();
        v.sort();
        v
    };
    let (l, r) = (keyed(left), keyed(right));
    if l.len() != r.len() {
        push(mismatches, "designs", format!("{} successes vs {}", l.len(), r.len()));
        return;
    }
    for ((ln, ld), (rn, rd)) in l.iter().zip(&r) {
        if ln != rn {
            push(mismatches, ln.clone(), format!("design sets differ: {ln} vs {rn}"));
        } else if ld != rd {
            push(mismatches, ln.clone(), format!("digest {ld:#018x} vs {rd:#018x}"));
        }
    }
}

fn compare_designs_paired(
    left: &SweepReport,
    right: &SweepReport,
    tolerance: Tolerance,
    mismatches: &mut Vec<Mismatch>,
) {
    if left.designs.len() != right.designs.len() {
        push(
            mismatches,
            "designs",
            format!("{} successes vs {}", left.designs.len(), right.designs.len()),
        );
        return;
    }
    for ((li, ld), (ri, rd)) in left.designs.iter().zip(&right.designs) {
        if li != ri {
            push(mismatches, ld.name.clone(), format!("success index {li} vs {ri}"));
            continue;
        }
        if tolerance == Tolerance::Exact {
            match (design_digest(ld), design_digest(rd)) {
                (Ok(a), Ok(b)) if a == b => {}
                (Ok(a), Ok(b)) => {
                    push(mismatches, ld.name.clone(), format!("digest {a:#018x} vs {b:#018x}"));
                }
                _ => push(mismatches, ld.name.clone(), "design failed to serialize".to_owned()),
            }
            continue;
        }
        compare_design_leaves(ld, rd, tolerance, mismatches);
    }
}

/// Field-by-field comparison of two designs' canonical JSON under an
/// approximate tolerance: numeric leaves must sit within tolerance,
/// everything else must match exactly, and the leaf *paths* must agree.
fn compare_design_leaves(
    left: &EvaluatedDesign,
    right: &EvaluatedDesign,
    tolerance: Tolerance,
    mismatches: &mut Vec<Mismatch>,
) {
    let (Ok(lv), Ok(rv)) = (left.to_json_value(), right.to_json_value()) else {
        push(mismatches, left.name.clone(), "design failed to serialize".to_owned());
        return;
    };
    let (mut l, mut r) = (Vec::new(), Vec::new());
    flatten("", &lv, &mut l);
    flatten("", &rv, &mut r);
    if l.len() != r.len() {
        push(mismatches, left.name.clone(), format!("{} leaves vs {}", l.len(), r.len()));
        return;
    }
    for ((lp, ll), (rp, rl)) in l.iter().zip(&r) {
        if lp != rp {
            push(mismatches, left.name.clone(), format!("leaf path {lp} vs {rp}"));
            return;
        }
        let agree = match (ll, rl) {
            (Leaf::Num(a), Leaf::Num(b)) => tolerance.accepts(*a, *b),
            (a, b) => a == b,
        };
        if !agree {
            push(
                mismatches,
                left.name.clone(),
                format!("{lp}: {ll:?} vs {rl:?} exceeds tolerance {tolerance}"),
            );
        }
    }
}

/// The model-differential: a dense model against its one-expert top-1
/// MoE twin over the same candidates and path. A degenerate "mixture"
/// routes every token to the one expert every device already holds — no
/// router, no dispatch/combine exchange — so the lowering must be
/// byte-identical to the dense FFN and every evaluated design must
/// digest bit-equally. This pins the seam where the MoE lowering joins
/// the dense one: any accidental router FLOPs or phantom all-to-all in
/// the degenerate case shows up as a digest mismatch here.
#[must_use]
pub fn dense_vs_degenerate_moe_diff(
    candidates: &[CandidateParams],
    path: EvalPath,
) -> DiffReport {
    let workload = WorkloadConfig::paper_default();
    let dense = DseRunner::new(ModelConfig::llama3_8b(), workload);
    let moe = DseRunner::new(ModelConfig::llama3_8b().with_moe(1, 1), workload);
    let left = path.run(&dense, candidates);
    let right = path.run(&moe, candidates);
    let mut mismatches = Vec::new();
    compare_reports(&left, &right, Tolerance::Exact, false, &mut mismatches);
    DiffReport {
        label: format!("dense-vs-degenerate-moe ({path})"),
        points: left.total(),
        ok: left.designs.len(),
        failed: left.failures.len(),
        mismatches,
    }
}

/// The pruned-screen differential: `screen_lattice` with branch-and-
/// bound pruning on against the same screen run exact, compared by
/// Pareto-front *name multiset* and per-front-design digest. Pruning may
/// leave dominated interior points unpriced, but the front — ties
/// included — must be exactly the exact mode's, and every front design
/// must be bit-identical (both modes price through the same lattice
/// point path).
#[must_use]
pub fn lattice_screen_front_diff(spec: &SweepSpec, tpp_target: f64) -> DiffReport {
    let runner = Differential::paper_default().runner();
    let exact = runner.screen_lattice(
        spec,
        tpp_target,
        &LatticeScreenOptions { prune: false, ..LatticeScreenOptions::default() },
    );
    let pruned = runner.screen_lattice(spec, tpp_target, &LatticeScreenOptions::default());
    let front = |screen: &LatticeScreen| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = screen
            .front
            .iter()
            .map(|&i| {
                let d = &screen.designs[i];
                (d.name.clone(), design_digest(d).unwrap_or(0))
            })
            .collect();
        v.sort();
        v
    };
    let (le, rp) = (front(&exact), front(&pruned));
    let mut mismatches = Vec::new();
    if le.len() != rp.len() {
        push(
            &mut mismatches,
            "front",
            format!("exact front has {} designs, pruned {}", le.len(), rp.len()),
        );
    } else {
        for ((ln, ld), (rn, rd)) in le.iter().zip(&rp) {
            if ln != rn {
                push(&mut mismatches, ln.clone(), format!("front sets differ: {ln} vs {rn}"));
            } else if ld != rd {
                push(&mut mismatches, ln.clone(), format!("digest {ld:#018x} vs {rd:#018x}"));
            }
        }
    }
    #[allow(clippy::cast_possible_truncation)]
    DiffReport {
        label: "lattice-screen-pruned-front".to_owned(),
        points: exact.stats.nominal_points as usize,
        ok: exact.designs.len(),
        failed: exact.stats.failed_points as usize,
        mismatches,
    }
}

/// The 64-variant rule grid the what-if differential and the golden
/// corpus both screen: 2 October-2022 TPP lines × 4 October-2023 licence
/// TPPs × 2 PD thresholds × 4 memory-bandwidth variants (0 = the rule is
/// not enacted).
#[must_use]
pub fn whatif_grid_64() -> RuleGrid {
    let mut grid = RuleGrid::baseline();
    grid.tpp_threshold_2022 = vec![2400.0, 4800.0];
    grid.tpp_license = vec![1600.0, 2400.0, 3600.0, 4800.0];
    grid.pd_license = vec![3.0, 5.92];
    grid.mem_bw_license = vec![0.0, 600.0, 800.0, 1000.0];
    grid
}

/// Expand `grid` the naive way — an explicit odometer over the axis
/// lists (last axis fastest, mirroring [`acs_whatif::AXES`] order) with
/// each variant's [`RuleSpec`] assembled from struct literals — and
/// screen `devices` one rule at a time. Deliberately shares no expansion
/// or ledger-assembly code with `RuleGrid::variants` /
/// `ClassificationLedger::screen`.
fn naive_whatif_ledgers(grid: &RuleGrid, devices: &[DeviceMetrics]) -> Vec<ClassificationLedger> {
    let axes: [&[f64]; 11] = [
        &grid.tpp_threshold_2022,
        &grid.device_bw_threshold_2022,
        &grid.tpp_license,
        &grid.tpp_floor,
        &grid.tpp_nac,
        &grid.pd_license,
        &grid.pd_nac_high,
        &grid.pd_nac_low,
        &grid.mem_bw_license,
        &grid.hbm_control_density,
        &grid.hbm_exception_density,
    ];
    let mut ledgers = Vec::with_capacity(grid.cardinality());
    let mut idx = [0usize; 11];
    'variants: loop {
        let pick = |axis: usize| axes[axis][idx[axis]];
        let spec = RuleSpec {
            acr_2022: Acr2022 { tpp_threshold: pick(0), device_bw_threshold_gb_s: pick(1) },
            acr_2023: Acr2023 {
                tpp_license: pick(2),
                tpp_floor: pick(3),
                tpp_nac: pick(4),
                pd_license: pick(5),
                pd_nac_high: pick(6),
                pd_nac_low: pick(7),
            },
            mem_bw: (pick(8) > 0.0).then(|| MemBwRule { license_threshold_gb_s: pick(8) }),
            hbm: HbmRule2024 { control_density: pick(9), exception_density: pick(10) },
        };
        let mut entries = Vec::with_capacity(devices.len());
        for metrics in devices {
            entries.push((metrics.name().to_owned(), spec.classify(metrics)));
        }
        ledgers.push(ClassificationLedger { entries });
        for axis in (0..axes.len()).rev() {
            idx[axis] += 1;
            if idx[axis] < axes[axis].len() {
                continue 'variants;
            }
            idx[axis] = 0;
        }
        return ledgers;
    }
}

/// The what-if differential: the batch rule-grid path
/// (`RuleGrid::variants` + `ClassificationLedger::screen`) against a
/// naive one-rule-at-a-time loop, compared ledger digest for ledger
/// digest across every variant. This is what proves a `/v1/whatif` grid
/// response means the same thing as issuing its variants as individual
/// requests.
#[must_use]
pub fn whatif_grid_diff(grid: &RuleGrid, devices: &[DeviceMetrics]) -> DiffReport {
    let batch: Vec<ClassificationLedger> =
        grid.variants().iter().map(|spec| ClassificationLedger::screen(spec, devices)).collect();
    let naive = naive_whatif_ledgers(grid, devices);
    let mut mismatches = Vec::new();
    if batch.len() != naive.len() {
        push(
            &mut mismatches,
            "shape",
            format!("batch expanded {} variants, naive {}", batch.len(), naive.len()),
        );
    } else {
        for (index, (b, n)) in batch.iter().zip(&naive).enumerate() {
            let (bd, nd) = (b.digest(), n.digest());
            if bd != nd {
                push(
                    &mut mismatches,
                    format!("variant {index}"),
                    format!("ledger digest {bd:#018x} vs naive {nd:#018x}"),
                );
            }
        }
    }
    DiffReport {
        label: "whatif-batch-vs-naive".to_owned(),
        points: batch.len(),
        ok: batch.len(),
        failed: 0,
        mismatches,
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Text(String),
    Bool(bool),
    Null,
}

fn flatten(path: &str, value: &Value, out: &mut Vec<(String, Leaf)>) {
    match value {
        Value::Null => out.push((path.to_owned(), Leaf::Null)),
        Value::Bool(b) => out.push((path.to_owned(), Leaf::Bool(*b))),
        Value::Number(n) => out.push((path.to_owned(), Leaf::Num(*n))),
        Value::String(s) => out.push((path.to_owned(), Leaf::Text(s.clone()))),
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{path}[{i}]"), item, out);
            }
        }
        Value::Object(members) => {
            for (key, member) in members {
                flatten(&format!("{path}.{key}"), member, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_dse::SweepSpec;

    fn small_candidates() -> Vec<CandidateParams> {
        SweepSpec {
            systolic_dims: vec![16, 32],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192],
            l2_mib: vec![48],
            hbm_tb_s: vec![2.4, 2.8],
            device_bw_gb_s: vec![600.0],
        }
        .candidates(4800.0)
    }

    #[test]
    fn every_standard_case_is_clean_on_a_small_sweep() {
        let candidates = small_candidates();
        let harness = Differential::paper_default();
        for case in standard_suite() {
            harness.run(&candidates, &case).assert_clean();
        }
    }

    #[test]
    fn a_genuine_divergence_is_reported_not_swallowed() {
        // Rescaled inputs compared under Exact tolerance must be dirty.
        // Neat two-decimal axis values survive `x * 1000.0 / 1000.0`
        // bit-exactly (and the hbm axis is quantized through GB/s by the
        // config builder, which collapses ulp drift), so this sweep pins
        // a device-bandwidth value whose round-trip drift provably
        // survives the builder's per-PHY division as well.
        let device_bw = 729.995_002_337_923_f64;
        let rt = device_bw * 1000.0 / 1000.0;
        assert_ne!(rt.to_bits(), device_bw.to_bits(), "axis value must drift under rescale");
        assert_ne!(
            ((rt / 12.0) * 12.0).to_bits(),
            ((device_bw / 12.0) * 12.0).to_bits(),
            "the drift must survive the 12-PHY split"
        );
        let candidates = SweepSpec {
            systolic_dims: vec![16, 32],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192],
            l2_mib: vec![48],
            hbm_tb_s: vec![2.4],
            device_bw_gb_s: vec![device_bw],
        }
        .candidates(4800.0);
        let harness = Differential::paper_default();
        let case = DiffCase {
            label: "rescale-under-exact".to_owned(),
            left: Arm::plain(EvalPath::Planned),
            right: Arm { path: EvalPath::Planned, transform: Transform::RescaleUnits },
            tolerance: Tolerance::Exact,
        };
        let report = harness.run(&candidates, &case);
        assert!(!report.is_clean(), "ulp-level input drift must fail an exact diff");
    }

    #[test]
    fn whatif_batch_and_naive_agree_on_the_64_variant_grid() {
        let devices: Vec<DeviceMetrics> =
            acs_devices::GpuDatabase::curated_65().iter().map(|r| r.to_metrics()).collect();
        assert_eq!(devices.len(), 65);
        let grid = whatif_grid_64();
        assert_eq!(grid.cardinality(), 64);
        let report = whatif_grid_diff(&grid, &devices);
        assert_eq!(report.points, 64);
        report.assert_clean();
    }

    #[test]
    fn whatif_diff_catches_a_genuinely_different_expansion() {
        // The naive arm walks the grid's own axis lists, so a divergence
        // can only come from the comparison machinery being wired wrong;
        // prove the digests it compares are discriminating by checking
        // two different regimes really hash apart.
        let devices: Vec<DeviceMetrics> =
            acs_devices::GpuDatabase::curated_65().iter().map(|r| r.to_metrics()).collect();
        let base = ClassificationLedger::screen(&RuleSpec::baseline(), &devices);
        let mut strict = RuleSpec::baseline();
        strict.acr_2023.tpp_license = 1600.0;
        let tightened = ClassificationLedger::screen(&strict, &devices);
        assert_ne!(base.digest(), tightened.digest());
    }

    #[test]
    fn degenerate_moe_is_bit_identical_to_dense_on_every_path() {
        let mut candidates = small_candidates();
        // Include ledgered failures: the degenerate twin must fail the
        // same points with the same kinds, not just match on successes.
        let injected = acs_dse::inject_faults(&mut candidates, 2);
        assert!(!injected.is_empty());
        for path in [EvalPath::Legacy, EvalPath::Planned, EvalPath::Factored] {
            let report = dense_vs_degenerate_moe_diff(&candidates, path);
            assert!(report.ok > 0, "sweep produced no designs on {path}");
            report.assert_clean();
        }
    }

    #[test]
    fn random_specs_diff_clean_between_lattice_and_factored() {
        let harness = Differential::paper_default();
        for seed in 0..6_u64 {
            let spec = random_sweep_spec(seed);
            let mut candidates = spec.candidates(4800.0);
            // Odd seeds carry injected faults: the lattice path must
            // demote those points to the identical typed errors.
            if seed % 2 == 1 {
                acs_dse::inject_faults(&mut candidates, seed as usize);
            }
            let case = DiffCase::paths(
                &format!("lattice-vs-factored-seed{seed}"),
                EvalPath::Lattice,
                EvalPath::Factored,
            );
            harness.run(&candidates, &case).assert_clean();
        }
    }

    #[test]
    fn random_spec_generation_is_deterministic_and_well_formed() {
        for seed in [0_u64, 1, 7, 0xDEAD_BEEF] {
            let a = random_sweep_spec(seed);
            assert_eq!(a, random_sweep_spec(seed), "same seed, same spec");
            assert!(a.cardinality() >= 1 && a.cardinality() <= 144);
            assert!(a.systolic_dims.windows(2).all(|w| w[0] < w[1]));
            assert!(a.hbm_tb_s.windows(2).all(|w| w[0] < w[1]));
        }
        assert_ne!(random_sweep_spec(1), random_sweep_spec(2), "seeds decorrelate");
    }

    #[test]
    fn pruned_screen_front_diff_is_clean_on_random_specs() {
        for seed in [3_u64, 11] {
            let spec = random_sweep_spec(seed);
            let report = lattice_screen_front_diff(&spec, 4800.0);
            assert_eq!(report.points, spec.cardinality());
            report.assert_clean();
        }
    }

    #[test]
    fn permutation_uses_set_discipline() {
        let candidates = small_candidates();
        let harness = Differential::paper_default();
        let case = DiffCase::metamorphic(
            "permute",
            EvalPath::Planned,
            Transform::PermuteOrder { seed: 99 },
        );
        harness.run(&candidates, &case).assert_clean();
    }

    #[test]
    fn faulted_candidates_diff_cleanly_including_the_ledger() {
        let mut candidates = small_candidates();
        let injected = acs_dse::inject_faults(&mut candidates, 3);
        assert!(!injected.is_empty());
        let harness = Differential::paper_default();
        harness
            .run(&candidates, &DiffCase::paths("faulted", EvalPath::Factored, EvalPath::Legacy))
            .assert_clean();
        harness
            .run(
                &candidates,
                &DiffCase::metamorphic(
                    "faulted-permute",
                    EvalPath::Factored,
                    Transform::PermuteOrder { seed: 7 },
                ),
            )
            .assert_clean();
    }
}
