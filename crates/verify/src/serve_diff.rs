//! The serve-tier differential: event loop vs worker pool.
//!
//! The epoll event loop and the legacy thread-per-connection pool are
//! two transports for one service; no request may tell them apart. One
//! diff run boots both tiers (identical config except the transport
//! flag), replays an identical request corpus against each in the same
//! order, and demands byte-equal status + body on every response.
//!
//! Two deliberate exclusions:
//!
//! - `/v1/metrics` is compared on status only: the event-loop tier's
//!   raw front cache shifts hits between the `raw` and semantic
//!   counters, so the bodies legitimately diverge.
//! - `/v1/whatif` responses are compared after chunked reassembly (the
//!   [`HttpClient`] decodes the framing): chunk boundaries depend on
//!   write-readiness timing and are not part of the contract — the
//!   reassembled NDJSON is.

use acs_errors::AcsError;
use acs_serve::http::HttpClient;
use acs_serve::{ServeConfig, Server};
use std::time::Duration;

/// What one serve-tier differential run observed.
#[derive(Debug, Clone)]
pub struct ServeDiffReport {
    /// Case label (`event_loop_vs_pool`).
    pub label: String,
    /// Requests replayed against each tier.
    pub requests: usize,
    /// Requests whose responses matched.
    pub ok: usize,
    /// Human-readable divergences (empty on a clean run).
    pub mismatches: Vec<String>,
}

impl ServeDiffReport {
    /// True when every response matched.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The replay corpus: every endpoint, hits and misses, streamed and
/// plain, valid and malformed. `(method, path, body)` triples issued in
/// order on one keep-alive connection per tier.
fn corpus() -> Vec<(&'static str, String, String)> {
    let sim = |seed: u64| {
        format!(
            "{{\"model\":\"llama3-8b\",\"workload\":{{\"batch\":8,\"input_len\":512,\
             \"output_len\":64}},\"trace\":{{\"rate_rps\":4,\"duration_s\":5,\"seed\":{seed}}}}}"
        )
    };
    let mut cases: Vec<(&str, String, String)> = vec![
        ("GET", "/v1/devices".into(), String::new()),
        ("GET", "/v1/devices/H100%20SXM".into(), String::new()),
        ("GET", "/v1/devices/no-such-device".into(), String::new()),
        ("GET", "/v1/nowhere".into(), String::new()),
        ("POST", "/v1/screen".into(), "{\"device\":\"H100 SXM\"}".into()),
        ("POST", "/v1/screen".into(), "not json at all".into()),
        ("POST", "/v1/simulate".into(), sim(7)),
        // The byte-identical repeat: raw front-cache hit on the event
        // loop, semantic hit on the pool — same bytes back either way.
        ("POST", "/v1/simulate".into(), sim(7)),
        ("POST", "/v1/simulate".into(), sim(11)),
        ("POST", "/v1/whatif".into(), "{\"grid\":{\"tpp_license\":[2400,4800]}}".into()),
        ("POST", "/v1/whatif".into(), "{}".into()),
        ("GET", "/v1/metrics".into(), String::new()),
    ];
    for i in 0..8 {
        cases.push(("POST", "/v1/screen".into(), format!("{{\"config\":{{\"name\":\"sd-{i}\"}}}}")));
    }
    cases
}

/// Run the event-loop-vs-pool differential.
///
/// # Errors
///
/// [`AcsError::Io`] when either tier cannot be bound.
pub fn event_loop_vs_pool() -> Result<ServeDiffReport, AcsError> {
    let tier = |event_loop: bool| {
        Server::bind(ServeConfig { workers: 2, event_loop, ..ServeConfig::default() })
    };
    let loop_server = tier(true)?;
    let pool_server = tier(false)?;
    let (loop_addr, pool_addr) = (loop_server.local_addr(), pool_server.local_addr());
    let loop_run = loop_server.spawn();
    let pool_run = pool_server.spawn();

    let timeout = Duration::from_secs(10);
    let mut loop_client = HttpClient::new(loop_addr, timeout);
    let mut pool_client = HttpClient::new(pool_addr, timeout);
    let cases = corpus();
    let requests = cases.len();
    let mut ok = 0usize;
    let mut mismatches = Vec::new();
    for (method, path, body) in cases {
        let a = loop_client.request(method, &path, &body);
        let b = pool_client.request(method, &path, &body);
        let tag = format!("{method} {path} body={body:.40?}");
        match (a, b) {
            (Ok((sa, ba)), Ok((sb, bb))) => {
                if sa != sb {
                    mismatches
                        .push(format!("{tag}: status {sa} (event loop) vs {sb} (pool)"));
                } else if ba != bb && path != "/v1/metrics" {
                    let at = ba.bytes().zip(bb.bytes()).take_while(|(x, y)| x == y).count();
                    mismatches.push(format!(
                        "{tag}: bodies diverge at byte {at} \
                         (event loop {}B, pool {}B)",
                        ba.len(),
                        bb.len()
                    ));
                } else {
                    ok += 1;
                }
            }
            (a, b) => mismatches.push(format!("{tag}: transport outcome {a:?} vs {b:?}")),
        }
    }

    loop_run.0.shutdown();
    pool_run.0.shutdown();
    let _ = loop_run.1.join();
    let _ = pool_run.1.join();
    Ok(ServeDiffReport { label: "event_loop_vs_pool".to_owned(), requests, ok, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_serve_tiers_are_indistinguishable_over_the_corpus() {
        let report = event_loop_vs_pool().expect("both tiers bind");
        assert!(
            report.is_clean(),
            "serve tiers diverged:\n{}",
            report.mismatches.join("\n")
        );
        assert_eq!(report.ok, report.requests);
    }
}
