//! The chaos round: a live server and hostile clients, both wired
//! through the socket-fault shim, with liveness asserted afterwards.
//!
//! One round boots a real `acs-serve` server with server-side fault
//! injection enabled ([`acs_serve::ServeConfig::chaos_seed`]), then
//! fires a batch of requests from clients that are themselves injecting
//! faults into their sockets. Individual requests are allowed — indeed
//! expected — to fail; the system-level invariants are:
//!
//! - the process never panics (worker panics are contained by the
//!   connection loop, and the final health check would catch a shrunken
//!   pool);
//! - no worker wedges: after the storm, a *clean* client must get a
//!   `200` from `/v1/metrics` within a bounded timeout;
//! - the fault machinery actually fired: the server's chaos tally and
//!   the clients' retry counters are reported so a silently-disabled
//!   shim cannot masquerade as a pass.

use acs_errors::json::parse;
use acs_errors::AcsError;
use acs_serve::http::{ClientConfig, HttpClient};
use acs_serve::{FaultPlan, ServeConfig, Server};
use std::time::Duration;

/// Tuning for [`run_chaos`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every per-connection schedule derives from it.
    pub seed: u64,
    /// Rounds to run (each round is an independent server).
    pub rounds: u32,
    /// Requests fired per round.
    pub requests: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 1, rounds: 1, requests: 60 }
    }
}

/// What one round observed.
#[derive(Debug, Clone)]
pub struct ChaosRound {
    /// The round's derived seed.
    pub seed: u64,
    /// Requests attempted.
    pub requests: u32,
    /// Requests that completed with HTTP 200.
    pub ok: u32,
    /// Requests that failed (transport error or non-200) — expected
    /// under fault injection, bounded only by the liveness checks.
    pub failed: u32,
    /// Faults the server-side shim injected (from `/v1/metrics`).
    pub server_faults: u64,
    /// Whether the post-storm clean health check got its 200.
    pub healthy_after: bool,
}

/// Run the configured chaos rounds.
///
/// # Errors
///
/// [`AcsError::Io`] when a server cannot be bound, and
/// [`AcsError::Overloaded`] when a round ends with the server unable to
/// answer a clean health check — the hung-worker signature.
pub fn run_chaos(config: &ChaosConfig) -> Result<Vec<ChaosRound>, AcsError> {
    let mut rounds = Vec::with_capacity(config.rounds as usize);
    for round in 0..config.rounds {
        let seed = config.seed.wrapping_add(u64::from(round).wrapping_mul(0x9E37_79B9));
        rounds.push(run_round(seed, config.requests)?);
    }
    Ok(rounds)
}

fn run_round(seed: u64, requests: u32) -> Result<ChaosRound, AcsError> {
    let server = Server::bind(ServeConfig {
        workers: 2,
        chaos_seed: Some(seed),
        io_timeout: Duration::from_secs(2),
        request_deadline: Duration::from_secs(3),
        keepalive_idle: Duration::from_millis(500),
        ..ServeConfig::default()
    })?;
    let addr = server.local_addr();
    let (handle, thread) = server.spawn();

    let endpoints: [(&str, &str, &str); 3] = [
        ("GET", "/v1/devices", ""),
        ("POST", "/v1/screen", "{\"device\":\"H100 SXM\"}"),
        ("GET", "/v1/devices/H100%20SXM", ""),
    ];
    let (mut ok, mut failed) = (0u32, 0u32);
    for i in 0..requests {
        let client_config = ClientConfig {
            retries: 2,
            jitter_seed: seed ^ u64::from(i),
            ..ClientConfig::uniform(Duration::from_secs(2))
        };
        let mut client = HttpClient::with_config(addr, client_config);
        if i % 2 == 0 {
            // Half the clients also tear their own side of the wire.
            client = client.with_fault_injection(FaultPlan::gentle(seed ^ (u64::from(i) << 17)));
        }
        let (method, path, body) = endpoints[(i as usize) % endpoints.len()];
        match client.request(method, path, body) {
            Ok((200, _)) => ok += 1,
            _ => failed += 1,
        }
    }

    // The decisive probe: a clean client with a bounded timeout. If the
    // storm wedged both workers, this cannot succeed.
    let mut clean = HttpClient::with_config(
        addr,
        ClientConfig { retries: 3, ..ClientConfig::uniform(Duration::from_secs(5)) },
    );
    let health = clean.request("GET", "/v1/metrics", "");
    let (healthy_after, server_faults) = match &health {
        Ok((200, body)) => {
            let faults = parse(body)
                .ok()
                .and_then(|m| {
                    m.get("connections")
                        .and_then(|c| c.get("chaos_faults"))
                        .and_then(acs_errors::json::Value::as_u64)
                })
                .unwrap_or(0);
            (true, faults)
        }
        _ => (false, 0),
    };

    handle.shutdown();
    let joined = thread.join().is_ok();

    if !healthy_after || !joined {
        return Err(AcsError::Overloaded {
            reason: format!(
                "chaos round seed={seed}: server unhealthy after storm \
                 (metrics={health:?}, joined={joined})"
            ),
        });
    }
    Ok(ChaosRound { seed, requests, ok, failed, server_faults, healthy_after })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_leaves_the_server_healthy_and_injects_faults() {
        let rounds =
            run_chaos(&ChaosConfig { seed: 0xBAD5EED, rounds: 1, requests: 30 }).expect("round");
        let round = &rounds[0];
        assert!(round.healthy_after);
        assert_eq!(round.ok + round.failed, 30);
        assert!(round.ok > 0, "gentle chaos should let some requests through");
        assert!(round.server_faults > 0, "the server-side shim must actually fire");
    }
}
