//! The golden corpus: blessed sweep digests and anchor values every PR
//! is diffed against.
//!
//! A corpus snapshot captures, for each named scenario, the canonical
//! digest of an entire sweep (every per-point design digest and every
//! ledgered failure kind folded into one number) plus a handful of
//! scalar **anchors** — individual latencies recorded with their exact
//! bit patterns. `acs-verify corpus` recomputes the snapshot and diffs
//! it against `crates/verify/corpus/golden.json`; `--bless` regenerates
//! the file after an intentional change. Anchors carry a per-entry
//! tolerance class (`exact`, `ulps:N`, `relative:EPS`) so a future
//! numerically-forgivable refactor can loosen one anchor without
//! abandoning bit-exactness everywhere else.

use crate::differential::{design_digest, whatif_grid_64};
use crate::tolerance::Tolerance;
use acs_cache::CacheKey;
use acs_dse::{inject_faults, DseRunner, EvaluatedDesign, SweepSpec};
use acs_errors::json::{object, parse, Value};
use acs_errors::AcsError;
use acs_hw::{DataType, DeviceConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_whatif::WhatIfEngine;
use std::path::{Path, PathBuf};

/// The checked-in golden corpus file.
#[must_use]
pub fn default_corpus_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus").join("golden.json")
}

/// The checked-in fuzzer-regression directory.
#[must_use]
pub fn regressions_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus").join("regressions")
}

/// One sweep scenario's recorded shape and content digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Stable scenario name.
    pub name: String,
    /// Points evaluated.
    pub total: usize,
    /// Successful designs.
    pub ok: usize,
    /// Ledgered failures.
    pub failed: usize,
    /// Canonical digest over every per-point digest / failure kind.
    pub digest: u64,
}

/// One recorded scalar with its exact bit pattern and the tolerance a
/// recomputation must meet.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchor {
    /// Stable anchor name (metric + design).
    pub name: String,
    /// The recorded value.
    pub value: f64,
    /// How close a recomputed value must be.
    pub tolerance: Tolerance,
}

/// A full corpus snapshot: what `compute_snapshot` produces and what
/// `golden.json` stores.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Sweep scenarios in recorded order.
    pub scenarios: Vec<Scenario>,
    /// Scalar anchors in recorded order.
    pub anchors: Vec<Anchor>,
}

/// Fold a sweep's per-point outcomes into one canonical digest: an
/// array of `[index, digest-or-kind]` rows hashed through the canonical
/// JSON cache key, so any drift in any point — value, order, or failure
/// taxonomy — changes the scenario digest.
fn fold_digest(rows: Vec<Value>) -> u64 {
    CacheKey::from_value(&Value::Array(rows)).digest()
}

fn scenario_from_report(name: &str, report: &acs_dse::SweepReport) -> Result<Scenario, AcsError> {
    let mut rows = Vec::with_capacity(report.total());
    for (index, design) in &report.designs {
        rows.push(Value::Array(vec![
            Value::Number(*index as f64),
            Value::String(CacheKey::digest_hex(design_digest(design)?)),
        ]));
    }
    for failure in &report.failures {
        rows.push(Value::Array(vec![
            Value::Number(failure.index as f64),
            Value::String(format!("fail:{}", failure.kind())),
        ]));
    }
    Ok(Scenario {
        name: name.to_owned(),
        total: report.total(),
        ok: report.designs.len(),
        failed: report.failures.len(),
        digest: fold_digest(rows),
    })
}

/// Recompute the full snapshot: the two golden equivalence sweeps (the
/// 512-point faulted Table-3 sweep on both the planned and factored
/// paths — recording both means a regression cannot be blessed into one
/// path unnoticed), the 48-point mixed-datatype sweep, the 64-variant
/// what-if rule-grid screening (every per-variant record digest over the
/// curated device DB and a 32-design fleet reused from the factored
/// sweep), the same grid over a 32-design fleet priced by the
/// expert-parallel MoE scenario runner, and latency anchors from the
/// first successful designs.
///
/// # Errors
///
/// Propagates serialization failures from the canonical JSON codec.
pub fn compute_snapshot() -> Result<Snapshot, AcsError> {
    let runner =
        DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());

    let mut candidates = SweepSpec::table3_fig6().candidates(4800.0);
    inject_faults(&mut candidates, 7);
    let planned = runner.run_report(&candidates);
    let factored = runner.run_report_factored(&candidates);

    let mixed: Vec<DeviceConfig> = SweepSpec::table3_fig6()
        .configs(4800.0)
        .iter()
        .take(48)
        .enumerate()
        .map(|(i, cfg)| {
            let dtype = match i % 3 {
                0 => DataType::Int8,
                1 => DataType::Fp16,
                _ => DataType::Fp32,
            };
            cfg.to_builder().datatype(dtype).build()
        })
        .collect::<Result<_, _>>()?;
    let mut mixed_rows = Vec::with_capacity(mixed.len());
    for (index, outcome) in runner.run_configs(&mixed).iter().enumerate() {
        let cell = match outcome {
            Ok(design) => Value::String(CacheKey::digest_hex(design_digest(design)?)),
            Err(e) => Value::String(format!("fail:{}", e.kind())),
        };
        mixed_rows.push(Value::Array(vec![Value::Number(index as f64), cell]));
    }
    let mixed_ok = mixed_rows.len();

    // The what-if scenario: the shared 64-variant grid screened over the
    // curated 65-device DB plus a fleet borrowed from the factored sweep
    // above (its pricing is already paid), each variant record folded in
    // by canonical digest so any drift in classification deltas,
    // indicator distributions, or externality accounting re-blesses.
    let fleet: Vec<EvaluatedDesign> =
        factored.designs.iter().take(32).map(|(_, d)| d.clone()).collect();
    let grid = whatif_grid_64();
    let mut whatif_rows = Vec::with_capacity(grid.cardinality());
    WhatIfEngine::paper_default().run_streaming(&grid, &fleet, |index, record| {
        whatif_rows.push(Value::Array(vec![
            Value::Number(index as f64),
            Value::String(CacheKey::digest_hex(CacheKey::from_value(record).digest())),
        ]));
        Ok(())
    })?;
    let whatif_total = whatif_rows.len();

    // The MoE twin of the what-if scenario: the same 64-variant grid
    // screened over a fleet priced by the expert-parallel scenario
    // runner (Mixtral-shaped experts, tp4/ep4, expert all-to-all in
    // every collective leg). Recording this digest means the scenario
    // frontend's MoE pricing — dispatch/combine exchange, activated
    // expert accounting — cannot drift without a re-bless.
    let moe_scenario = acs_scenarios::ScenarioRegistry::builtin()
        .get("moe-mixtral-fp16-tp4-ep4")?
        .clone();
    let moe_fleet_report = moe_scenario
        .runner()
        .run_report_factored(&SweepSpec::table3_fig6().candidates(4800.0)[..32]);
    let moe_fleet: Vec<EvaluatedDesign> =
        moe_fleet_report.designs.iter().map(|(_, d)| d.clone()).collect();
    let mut moe_rows = Vec::with_capacity(grid.cardinality());
    WhatIfEngine::paper_default().run_streaming(&grid, &moe_fleet, |index, record| {
        moe_rows.push(Value::Array(vec![
            Value::Number(index as f64),
            Value::String(CacheKey::digest_hex(CacheKey::from_value(record).digest())),
        ]));
        Ok(())
    })?;
    let moe_total = moe_rows.len();

    let mut anchors = Vec::new();
    for (_, design) in planned.designs.iter().take(3) {
        anchors.push(Anchor {
            name: format!("ttft_s {}", design.name),
            value: design.ttft_s,
            tolerance: Tolerance::Exact,
        });
        anchors.push(Anchor {
            name: format!("tbt_s {}", design.name),
            value: design.tbt_s,
            tolerance: Tolerance::Exact,
        });
    }

    Ok(Snapshot {
        scenarios: vec![
            scenario_from_report("planned_table3_fig6_faulted_512", &planned)?,
            scenario_from_report("factored_table3_fig6_faulted_512", &factored)?,
            Scenario {
                name: "planned_mixed_dtype_48".to_owned(),
                total: mixed_ok,
                ok: mixed_ok,
                failed: 0,
                digest: fold_digest(mixed_rows),
            },
            Scenario {
                name: "whatif_rule_grid_64".to_owned(),
                total: whatif_total,
                ok: whatif_total,
                failed: 0,
                digest: fold_digest(whatif_rows),
            },
            Scenario {
                name: "whatif_moe_grid_64".to_owned(),
                total: moe_total,
                ok: moe_total,
                failed: 0,
                digest: fold_digest(moe_rows),
            },
        ],
        anchors,
    })
}

fn tolerance_to_text(t: Tolerance) -> String {
    match t {
        Tolerance::Exact => "exact".to_owned(),
        Tolerance::Ulps(n) => format!("ulps:{n}"),
        Tolerance::Relative(eps) => format!("relative:{eps:e}"),
    }
}

fn tolerance_from_text(s: &str) -> Result<Tolerance, AcsError> {
    let bad = || AcsError::Json { reason: format!("unknown tolerance class {s:?}") };
    if s == "exact" {
        return Ok(Tolerance::Exact);
    }
    if let Some(n) = s.strip_prefix("ulps:") {
        return n.parse().map(Tolerance::Ulps).map_err(|_| bad());
    }
    if let Some(eps) = s.strip_prefix("relative:") {
        return eps.parse().map(Tolerance::Relative).map_err(|_| bad());
    }
    Err(bad())
}

/// Serialize a snapshot to the corpus JSON document.
#[must_use]
pub fn snapshot_to_json(snapshot: &Snapshot) -> String {
    let scenarios = snapshot
        .scenarios
        .iter()
        .map(|s| {
            object(vec![
                ("name", Value::String(s.name.clone())),
                ("total", Value::Number(s.total as f64)),
                ("ok", Value::Number(s.ok as f64)),
                ("failed", Value::Number(s.failed as f64)),
                ("digest", Value::String(CacheKey::digest_hex(s.digest))),
            ])
        })
        .collect();
    let anchors = snapshot
        .anchors
        .iter()
        .map(|a| {
            object(vec![
                ("name", Value::String(a.name.clone())),
                // The canonical codec prints shortest-round-trip floats,
                // so `value` alone carries the exact bit pattern; `bits`
                // is a redundant integrity check against file edits.
                ("value", Value::Number(a.value)),
                ("bits", Value::String(format!("{:#018x}", a.value.to_bits()))),
                ("tolerance", Value::String(tolerance_to_text(a.tolerance))),
            ])
        })
        .collect();
    object(vec![
        ("version", Value::Number(1.0)),
        ("scenarios", Value::Array(scenarios)),
        ("anchors", Value::Array(anchors)),
    ])
    .to_json()
}

/// Parse a corpus JSON document.
///
/// # Errors
///
/// [`AcsError::Json`] on malformed documents or bit/value disagreement
/// (a hand-edited file).
pub fn snapshot_from_json(text: &str) -> Result<Snapshot, AcsError> {
    let doc = parse(text)?;
    let version = doc.require_u64("version")?;
    if version != 1 {
        return Err(AcsError::Json { reason: format!("unsupported corpus version {version}") });
    }
    let arr = |key: &str| -> Result<&[Value], AcsError> {
        doc.require(key)?
            .as_array()
            .ok_or_else(|| AcsError::Json { reason: format!("{key} must be an array") })
    };
    let mut scenarios = Vec::new();
    for s in arr("scenarios")? {
        let digest_hex = s.require_str("digest")?;
        let digest = u64::from_str_radix(digest_hex.trim_start_matches("0x"), 16)
            .map_err(|_| AcsError::Json { reason: format!("bad digest {digest_hex:?}") })?;
        scenarios.push(Scenario {
            name: s.require_str("name")?.to_owned(),
            total: s.require_u64("total")? as usize,
            ok: s.require_u64("ok")? as usize,
            failed: s.require_u64("failed")? as usize,
            digest,
        });
    }
    let mut anchors = Vec::new();
    for a in arr("anchors")? {
        let value = a.require_f64("value")?;
        let bits_hex = a.require_str("bits")?;
        let bits = u64::from_str_radix(bits_hex.trim_start_matches("0x"), 16)
            .map_err(|_| AcsError::Json { reason: format!("bad bits {bits_hex:?}") })?;
        if value.to_bits() != bits {
            return Err(AcsError::Json {
                reason: format!(
                    "anchor {:?}: decimal value and bit pattern disagree (file edited by hand?)",
                    a.require_str("name")?
                ),
            });
        }
        anchors.push(Anchor {
            name: a.require_str("name")?.to_owned(),
            value,
            tolerance: tolerance_from_text(a.require_str("tolerance")?)?,
        });
    }
    Ok(Snapshot { scenarios, anchors })
}

/// Diff a freshly computed snapshot against the blessed one. Returns a
/// human-readable line per divergence; empty means the corpus holds.
#[must_use]
pub fn diff_snapshots(golden: &Snapshot, current: &Snapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for g in &golden.scenarios {
        match current.scenarios.iter().find(|c| c.name == g.name) {
            None => lines.push(format!("scenario {} missing from current run", g.name)),
            Some(c) => {
                if (c.total, c.ok, c.failed) != (g.total, g.ok, g.failed) {
                    lines.push(format!(
                        "scenario {}: shape {}ok/{}failed/{}total vs blessed {}ok/{}failed/{}total",
                        g.name, c.ok, c.failed, c.total, g.ok, g.failed, g.total
                    ));
                } else if c.digest != g.digest {
                    lines.push(format!(
                        "scenario {}: digest {} vs blessed {}",
                        g.name,
                        CacheKey::digest_hex(c.digest),
                        CacheKey::digest_hex(g.digest)
                    ));
                }
            }
        }
    }
    for c in &current.scenarios {
        if !golden.scenarios.iter().any(|g| g.name == c.name) {
            lines.push(format!("scenario {} not blessed (run --bless)", c.name));
        }
    }
    for g in &golden.anchors {
        match current.anchors.iter().find(|c| c.name == g.name) {
            None => lines.push(format!("anchor {:?} missing from current run", g.name)),
            Some(c) => {
                if !g.tolerance.accepts(g.value, c.value) {
                    lines.push(format!(
                        "anchor {:?}: {} vs blessed {} exceeds {} tolerance",
                        g.name, c.value, g.value, g.tolerance
                    ));
                }
            }
        }
    }
    lines
}

/// Recompute the snapshot and diff it against the blessed file.
///
/// # Errors
///
/// [`AcsError::Io`] when the corpus file is unreadable (bless it first)
/// and [`AcsError::Json`] when it is malformed.
pub fn check_corpus(path: &Path) -> Result<Vec<String>, AcsError> {
    let text = std::fs::read_to_string(path).map_err(|e| AcsError::Io {
        path: path.display().to_string(),
        reason: format!("{e} (regenerate with `acs-verify corpus --bless`)"),
    })?;
    let golden = snapshot_from_json(&text)?;
    let current = compute_snapshot()?;
    Ok(diff_snapshots(&golden, &current))
}

/// Recompute the snapshot and write it as the new blessed corpus.
///
/// # Errors
///
/// [`AcsError::Io`] when the file cannot be written.
pub fn bless_corpus(path: &Path) -> Result<Snapshot, AcsError> {
    let snapshot = compute_snapshot()?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| AcsError::Io {
            path: parent.display().to_string(),
            reason: e.to_string(),
        })?;
    }
    std::fs::write(path, snapshot_to_json(&snapshot) + "\n").map_err(|e| AcsError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    })?;
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let snapshot = Snapshot {
            scenarios: vec![Scenario {
                name: "s".to_owned(),
                total: 10,
                ok: 8,
                failed: 2,
                digest: 0xdead_beef_cafe_f00d,
            }],
            anchors: vec![
                Anchor { name: "a".to_owned(), value: 1.25e-3, tolerance: Tolerance::Exact },
                Anchor { name: "b".to_owned(), value: -0.0, tolerance: Tolerance::Ulps(2) },
                Anchor {
                    name: "c".to_owned(),
                    value: 3.0e8,
                    tolerance: Tolerance::Relative(1e-9),
                },
            ],
        };
        let text = snapshot_to_json(&snapshot);
        let back = snapshot_from_json(&text).expect("round trip parses");
        assert_eq!(back, snapshot);
        assert_eq!(back.anchors[1].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn tampered_bits_are_rejected() {
        let snapshot = Snapshot {
            scenarios: vec![],
            anchors: vec![Anchor {
                name: "a".to_owned(),
                value: 2.0,
                tolerance: Tolerance::Exact,
            }],
        };
        let text = snapshot_to_json(&snapshot).replace("\"value\":2", "\"value\":3");
        assert!(snapshot_from_json(&text).is_err(), "bit/value disagreement must be caught");
    }

    #[test]
    fn diff_reports_shape_digest_and_anchor_drift() {
        let golden = Snapshot {
            scenarios: vec![Scenario {
                name: "s".to_owned(),
                total: 4,
                ok: 4,
                failed: 0,
                digest: 1,
            }],
            anchors: vec![Anchor {
                name: "a".to_owned(),
                value: 1.0,
                tolerance: Tolerance::Exact,
            }],
        };
        let mut current = golden.clone();
        assert!(diff_snapshots(&golden, &current).is_empty());
        current.scenarios[0].digest = 2;
        current.anchors[0].value = 1.0 + f64::EPSILON;
        let lines = diff_snapshots(&golden, &current);
        assert_eq!(lines.len(), 2, "{lines:?}");
    }
}
