//! `acs-verify`: the trust-but-verify harness.
//!
//! The reproduction carries three coexisting evaluation paths (legacy,
//! planned, factored) and a network-facing query tier; every refactor
//! so far bought its safety with a bespoke golden test. This crate
//! replaces that with four reusable instruments:
//!
//! - [`differential`] — a generic runner that evaluates any two
//!   (path, transform) arms over a sweep and diffs digests, per-point
//!   values, and failure ledgers under a [`tolerance`] class. The
//!   built-in metamorphic transforms (candidate permutation, unit
//!   rescaling, cache on/off, thread-count pinning) turn "this refactor
//!   moved nothing" into one declarative [`differential::DiffCase`];
//!   [`differential::whatif_grid_diff`] extends the same discipline to
//!   the what-if subsystem, diffing batch rule-grid screening against a
//!   naive one-rule-at-a-time loop.
//! - [`corpus`] — a blessed snapshot of sweep digests and anchor values
//!   (`crates/verify/corpus/golden.json`) every PR is diffed against,
//!   regenerated with `acs-verify corpus --bless`.
//! - [`fuzz`] — a SplitMix64-seeded structured fuzzer for the HTTP
//!   surface and the JSON/CSV codecs: no-panic, round-trip, and
//!   no-worker-death invariants, with findings hex-encoded for the
//!   [`regressions`] corpus.
//! - [`chaos`] — socket-fault rounds against a live server (torn reads,
//!   partial writes, stalls, disconnects on both ends of the wire),
//!   asserting the service stays healthy after the storm.
//! - [`serve_diff`] — the serve-tier differential: the epoll event loop
//!   and the legacy worker pool replay one request corpus and must
//!   produce byte-equal responses (chunked streams compared after
//!   reassembly, `/v1/metrics` on status only).
//!
//! The `acs-verify` binary drives all four; `scripts/ci.sh` runs the
//! corpus diff, a fixed-seed fuzz smoke, and one chaos round on every
//! build.

pub mod chaos;
pub mod corpus;
pub mod differential;
pub mod fuzz;
pub mod regressions;
pub mod serve_diff;
pub mod tolerance;

pub use chaos::{run_chaos, ChaosConfig, ChaosRound};
pub use corpus::{
    bless_corpus, check_corpus, compute_snapshot, default_corpus_path, regressions_dir, Snapshot,
};
pub use differential::{
    dense_vs_degenerate_moe_diff, design_digest, lattice_screen_front_diff, random_sweep_spec,
    standard_suite, whatif_grid_64, whatif_grid_diff, Arm, DiffCase, DiffReport, Differential,
    EvalPath, Transform,
};
pub use fuzz::{run_fuzz, FuzzReport, FuzzTarget};
pub use regressions::replay_dir;
pub use serve_diff::{event_loop_vs_pool, ServeDiffReport};
pub use tolerance::{ulps_apart, Tolerance};
