//! SplitMix64-seeded structured fuzzing of the parse boundaries: the
//! acs-serve HTTP surface, the hand-rolled JSON codec, and the device
//! CSV codec.
//!
//! Each iteration takes a valid base input, applies a seeded stack of
//! structural mutations (byte flips, truncation, slice duplication,
//! percent-encoding abuse, header and Content-Length tampering, what-if
//! rule-grid axis bombs, scenario-axis bombs against `/v1/screen`), and
//! drives the target under `catch_unwind`.
//! The invariants are:
//!
//! - **no panic, ever** — a parse boundary answers hostile bytes with a
//!   typed error, never an unwind (and never a stack overflow, which
//!   `catch_unwind` cannot contain — the JSON depth guard exists
//!   because this fuzzer's nesting mutation found its absence);
//! - **round-trip** — anything that *does* parse must re-serialize and
//!   re-parse to the same value (JSON `Value`s, `DeviceRecord`s);
//! - **no worker death** — HTTP inputs that parse are additionally run
//!   through the real request handler against live [`AppState`].
//!
//! Every finding carries its input hex-encoded so it can be checked
//! into `crates/verify/corpus/regressions/` and replayed forever.

use acs_devices::{DeviceRecord, GpuDatabase};
use acs_errors::json::parse;
use acs_llm::rng::SplitMix64;
use acs_serve::handlers::{self, AppState};
use acs_serve::http::read_request;
use std::fmt;
use std::io::{BufReader, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which parse boundary an input targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// `read_request` + the request handler.
    Http,
    /// `acs_errors::json::parse` + `to_json` round-trip.
    Json,
    /// `DeviceRecord::from_csv_line` + `to_csv_line` round-trip.
    Csv,
}

impl FuzzTarget {
    /// Stable lowercase tag (used in regression files).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FuzzTarget::Http => "http",
            FuzzTarget::Json => "json",
            FuzzTarget::Csv => "csv",
        }
    }

    /// Parse the stable tag.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "http" => Some(FuzzTarget::Http),
            "json" => Some(FuzzTarget::Json),
            "csv" => Some(FuzzTarget::Csv),
            _ => None,
        }
    }
}

impl fmt::Display for FuzzTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// What one input did at its parse boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetOutcome {
    /// Parsed and honoured every invariant.
    Accepted,
    /// Rejected with a typed error (the normal fate of mutated input).
    Rejected,
    /// Panicked, or parsed but broke a round-trip invariant — a bug.
    Violated(String),
}

/// A violated invariant, with the offending input preserved.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which boundary broke.
    pub target: FuzzTarget,
    /// The input, hex-encoded (inputs are arbitrary bytes).
    pub input_hex: String,
    /// The panic message or broken invariant.
    pub message: String,
}

/// Aggregate results of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// Inputs that parsed and honoured all invariants.
    pub accepted: u64,
    /// Inputs rejected with typed errors.
    pub rejected: u64,
    /// Invariant violations (must be empty for a passing run).
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Whether the run found nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Hex-encode bytes for regression storage.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode regression hex. `None` on odd length or non-hex digits.
#[must_use]
pub fn from_hex(hex: &str) -> Option<Vec<u8>> {
    if hex.len() % 2 != 0 {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

/// A reader that hands out tiny, seed-sized chunks — the in-process
/// analogue of a peer splitting its writes at arbitrary byte
/// boundaries, which exercises every incremental-parse path in
/// `read_request`.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    rng: SplitMix64,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        #[allow(clippy::cast_possible_truncation)]
        let chunk = (1 + (self.rng.next_u64() % 5) as usize)
            .min(buf.len())
            .min(self.data.len() - self.pos);
        buf[..chunk].copy_from_slice(&self.data[self.pos..self.pos + chunk]);
        self.pos += chunk;
        Ok(chunk)
    }
}

/// Drive one input through its target's full invariant check. Used both
/// by the fuzz loop and by regression replay. When `chunk_seed` is set,
/// HTTP inputs are delivered through a chunk-splitting reader.
#[must_use]
pub fn run_target(
    target: FuzzTarget,
    input: &[u8],
    state: &AppState,
    chunk_seed: Option<u64>,
) -> TargetOutcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| match target {
        FuzzTarget::Http => {
            let parsed = match chunk_seed {
                Some(seed) => {
                    let reader = ChunkedReader { data: input, pos: 0, rng: SplitMix64::new(seed) };
                    // A deliberately tiny buffer forces refills mid-token.
                    read_request(&mut BufReader::with_capacity(8, reader))
                }
                None => read_request(&mut BufReader::new(input)),
            };
            // Parser equivalence: the event loop's incremental
            // `parse_request_bytes` and the pool's blocking
            // `read_request` must agree on every input — same framing
            // accepted, same request produced. (A blocking-parse error
            // may map to `NeedMore`: truncation is EOF on a stream but
            // "wait for more bytes" on a buffer.)
            let incremental = acs_serve::http::parse_request_bytes(input);
            match (&parsed, &incremental) {
                (Ok((req, ka)), acs_serve::http::Parsed::Complete { request, keep_alive, .. }) => {
                    if req != request || ka != keep_alive {
                        return TargetOutcome::Violated(
                            "incremental and blocking parsers framed the request differently"
                                .to_owned(),
                        );
                    }
                }
                (Ok(_), _) => {
                    return TargetOutcome::Violated(
                        "blocking parser accepted what the incremental parser did not".to_owned(),
                    );
                }
                (Err(_), acs_serve::http::Parsed::Complete { .. }) => {
                    return TargetOutcome::Violated(
                        "incremental parser accepted what the blocking parser rejected".to_owned(),
                    );
                }
                (Err(_), _) => {}
            }
            match parsed {
                Err(_) => TargetOutcome::Rejected,
                Ok((request, _keep_alive)) => {
                    let (status, body) = handlers::handle(state, &request);
                    if !matches!(status, 200 | 400 | 404 | 405 | 422 | 500 | 503) {
                        return TargetOutcome::Violated(format!(
                            "handler produced unknown status {status}"
                        ));
                    }
                    if parse(&body).is_err() {
                        return TargetOutcome::Violated(format!(
                            "handler body for status {status} is not valid JSON"
                        ));
                    }
                    TargetOutcome::Accepted
                }
            }
        }
        FuzzTarget::Json => {
            let text = String::from_utf8_lossy(input);
            match parse(&text) {
                Err(_) => TargetOutcome::Rejected,
                Ok(value) => match parse(&value.to_json()) {
                    Ok(again) if again == value => TargetOutcome::Accepted,
                    Ok(_) => TargetOutcome::Violated(
                        "JSON round-trip produced a different value".to_owned(),
                    ),
                    Err(e) => TargetOutcome::Violated(format!(
                        "emitted JSON does not re-parse: {e}"
                    )),
                },
            }
        }
        FuzzTarget::Csv => {
            let text = String::from_utf8_lossy(input);
            match DeviceRecord::from_csv_line(&text, "fuzz") {
                Err(_) => TargetOutcome::Rejected,
                Ok(record) => {
                    match DeviceRecord::from_csv_line(&record.to_csv_line(), "fuzz-roundtrip") {
                        Ok(again) if again == record => TargetOutcome::Accepted,
                        Ok(_) => TargetOutcome::Violated(
                            "CSV round-trip produced a different record".to_owned(),
                        ),
                        Err(e) => TargetOutcome::Violated(format!(
                            "emitted CSV does not re-parse: {e}"
                        )),
                    }
                }
            }
        }
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            TargetOutcome::Violated(format!("panicked: {message}"))
        }
    }
}

fn http_bases() -> Vec<Vec<u8>> {
    let post = |path: &str, body: &str| {
        format!(
            "POST {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    };
    let get = |path: &str| {
        format!("GET {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: 0\r\n\r\n").into_bytes()
    };
    vec![
        get("/v1/devices"),
        get("/v1/devices/H100%20SXM"),
        get("/v1/metrics"),
        post("/v1/screen", "{\"device\":\"H100 SXM\"}"),
        post("/v1/screen", "{\"tpp\":4500,\"device_bw_gb_s\":600,\"die_area_mm2\":814}"),
        // Scenario-axis grids: a registered name and an inline MoE spec.
        // Tiny hardware grids keep each accepted iteration to a few
        // factored points while the mutation stack attacks the scenario
        // member (unknown names, expert bombs, zero-stage pipelines —
        // all of which must come back as typed 400s, never panics).
        post(
            "/v1/screen",
            "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[2],\
             \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[2.0],\
             \"device_bw_gb_s\":[600.0],\
             \"scenario\":[\"moe-mixtral-fp16-tp4-ep4\"]}}",
        ),
        post(
            "/v1/screen",
            "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[2],\
             \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[2.0],\
             \"device_bw_gb_s\":[600.0],\
             \"scenario\":[{\"model\":\"mixtral_8x7b\",\"expert\":4}]}}",
        ),
        post("/v1/simulate", "{\"model\":\"llama3-8b\",\"trace\":{\"duration_s\":1}}"),
        // The what-if surface: baseline, single-rule, and rule-grid
        // request shapes (all at the default TPP target, so the synthetic
        // fleet is priced once per fuzz state and reused from leg tables).
        post("/v1/whatif", "{}"),
        post("/v1/whatif", "{\"rule\":{\"tpp_license\":2400,\"mem_bw_license\":800}}"),
        post(
            "/v1/whatif",
            "{\"grid\":{\"tpp_license\":[2400,4800],\"mem_bw_license\":[0,800]}}",
        ),
    ]
}

fn json_bases() -> Vec<Vec<u8>> {
    vec![
        b"{}".to_vec(),
        b"[1,2.5,-3e-4,\"s\",true,null]".to_vec(),
        b"{\"device\":\"H100 SXM\",\"nested\":{\"a\":[1,2],\"b\":\"\\u00e9\"}}".to_vec(),
        b"{\"tpp\":4800.0,\"mem\":[{\"gib\":80,\"bw\":3350.0}]}".to_vec(),
    ]
}

fn csv_bases() -> Vec<Vec<u8>> {
    // Real records from the curated database keep the mutation space
    // anchored to inputs that actually parse.
    let db = GpuDatabase::curated_65();
    db.iter().take(4).map(|r| r.to_csv_line().into_bytes()).collect()
}

/// Apply one seeded structural mutation in place.
fn mutate(input: &mut Vec<u8>, rng: &mut SplitMix64) {
    if input.is_empty() {
        input.push((rng.next_u64() & 0xff) as u8);
        return;
    }
    #[allow(clippy::cast_possible_truncation)]
    let at = (rng.next_u64() % input.len() as u64) as usize;
    match rng.next_u64() % 9 {
        // Flip one byte.
        0 => input[at] ^= (1 << (rng.next_u64() % 8)) as u8,
        // Truncate.
        1 => input.truncate(at),
        // Insert a random byte (often a delimiter the grammar cares about).
        2 => {
            let meaningful = [b'%', b'\r', b'\n', b',', b'"', b'{', b'[', b':', b' ', 0xff, 0x00];
            #[allow(clippy::cast_possible_truncation)]
            let b = meaningful[(rng.next_u64() % meaningful.len() as u64) as usize];
            input.insert(at, b);
        }
        // Duplicate a slice (repeated headers, repeated JSON members).
        3 => {
            #[allow(clippy::cast_possible_truncation)]
            let len = (1 + rng.next_u64() % 16) as usize;
            let end = (at + len).min(input.len());
            let slice = input[at..end].to_vec();
            input.splice(at..at, slice);
        }
        // Percent-encoding abuse: dangling '%', bad hex, multibyte tails.
        4 => {
            let abuses: [&[u8]; 4] = [b"%", b"%zz", b"%a\xc3\xa9", b"%25%"];
            #[allow(clippy::cast_possible_truncation)]
            let abuse = abuses[(rng.next_u64() % abuses.len() as u64) as usize];
            input.splice(at..at, abuse.iter().copied());
        }
        // Numeric tampering: splice in a huge or hostile number.
        5 => {
            let numbers: [&[u8]; 4] = [b"99999999999999999999", b"-0", b"1e999", b"NaN"];
            #[allow(clippy::cast_possible_truncation)]
            let n = numbers[(rng.next_u64() % numbers.len() as u64) as usize];
            input.splice(at..at, n.iter().copied());
        }
        // Nesting bomb: a run of open brackets (the JSON depth guard's
        // reason to exist — bounded here so a missing guard shows up as
        // a finding, not a harness abort).
        6 => {
            let run = vec![b'['; 300];
            input.splice(at..at, run);
        }
        // Rule-grid axis bombs: splice in what-if grid members —
        // duplicated axes, negative thresholds, and a wide axis whose
        // cartesian product must trip the variant ceiling, never an
        // allocation storm.
        7 => {
            let wide = format!("\"tpp_nac\":[{}],", vec!["1"; 96].join(","));
            let bombs: [&[u8]; 7] = [
                wide.as_bytes(),
                b"\"grid\":{\"tpp_license\":[0]},",
                b"\"mem_bw_license\":[-1,1e99],",
                b"\"tpp_target\":1e308,",
                // Scenario-axis bombs: unknown names, expert-count bombs,
                // and zero-stage pipelines must all die as typed 400s.
                b"\"scenario\":[\"no-such-scenario\"],",
                b"\"scenario\":[{\"model\":\"llama3_8b\",\"experts\":99999999,\"top_k\":1}],",
                b"\"scenario\":[{\"model\":\"mixtral_8x7b\",\"pipeline_stages\":0}],",
            ];
            #[allow(clippy::cast_possible_truncation)]
            let bomb = bombs[(rng.next_u64() % bombs.len() as u64) as usize];
            input.splice(at..at, bomb.iter().copied());
        }
        // Byte noise: overwrite a few bytes with raw randomness.
        _ => {
            for offset in 0..4 {
                if let Some(b) = input.get_mut(at + offset) {
                    *b = (rng.next_u64() & 0xff) as u8;
                }
            }
        }
    }
}

/// Run `iters` seeded mutations across all three targets.
///
/// Deterministic in `seed`: the same seed replays the same inputs, so a
/// CI failure reproduces locally from its seed alone.
#[must_use]
pub fn run_fuzz(seed: u64, iters: u64) -> FuzzReport {
    let mut rng = SplitMix64::new(seed);
    // One shared state: the fuzzer doubles as a soak test of handler
    // statefulness (caches, counters) under hostile traffic.
    let state = AppState::new(256);
    let bases = [http_bases(), json_bases(), csv_bases()];
    let mut report = FuzzReport::default();
    for _ in 0..iters {
        let target = match rng.next_u64() % 3 {
            0 => FuzzTarget::Http,
            1 => FuzzTarget::Json,
            _ => FuzzTarget::Csv,
        };
        let pool = &bases[match target {
            FuzzTarget::Http => 0,
            FuzzTarget::Json => 1,
            FuzzTarget::Csv => 2,
        }];
        #[allow(clippy::cast_possible_truncation)]
        let mut input = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
        // 0–3 stacked mutations; zero keeps pristine inputs in the mix,
        // asserting the bases themselves stay accepted.
        for _ in 0..rng.next_u64() % 4 {
            mutate(&mut input, &mut rng);
        }
        let chunk_seed = (rng.next_u64() % 2 == 0).then(|| rng.next_u64());
        match run_target(target, &input, &state, chunk_seed) {
            TargetOutcome::Accepted => report.accepted += 1,
            TargetOutcome::Rejected => report.rejected += 1,
            TargetOutcome::Violated(message) => {
                report.findings.push(Finding { target, input_hex: to_hex(&input), message });
            }
        }
        report.iters += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_arbitrary_bytes() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("0"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn pristine_bases_are_accepted() {
        let state = AppState::new(64);
        for base in http_bases() {
            assert_eq!(run_target(FuzzTarget::Http, &base, &state, None), TargetOutcome::Accepted);
            assert_eq!(
                run_target(FuzzTarget::Http, &base, &state, Some(3)),
                TargetOutcome::Accepted,
                "chunked delivery must not change the parse"
            );
        }
        for base in json_bases() {
            assert_eq!(run_target(FuzzTarget::Json, &base, &state, None), TargetOutcome::Accepted);
        }
        for base in csv_bases() {
            assert_eq!(run_target(FuzzTarget::Csv, &base, &state, None), TargetOutcome::Accepted);
        }
    }

    #[test]
    fn a_thousand_seeded_mutations_find_nothing() {
        let report = run_fuzz(0xF0CC, 1000);
        assert_eq!(report.iters, 1000);
        assert!(report.rejected > 0, "mutations should break some inputs");
        assert!(report.accepted > 0, "pristine inputs should survive");
        assert!(
            report.is_clean(),
            "findings: {:?}",
            report.findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fuzz_runs_replay_from_their_seed() {
        let (a, b) = (run_fuzz(42, 200), run_fuzz(42, 200));
        assert_eq!((a.accepted, a.rejected), (b.accepted, b.rejected));
        let c = run_fuzz(43, 200);
        assert_ne!((a.accepted, a.rejected), (c.accepted, c.rejected));
    }
}
