//! Replay of fuzzer-found regression inputs.
//!
//! Every input that ever violated (or nearly violated) a parse-boundary
//! invariant is checked into `crates/verify/corpus/regressions/` as a
//! small JSON file — target tag, hex-encoded bytes (inputs are
//! arbitrary, often non-UTF-8), expected disposition, and a note on
//! what it once broke. [`replay_dir`] runs each one back through
//! [`crate::fuzz::run_target`]; the crate's test suite and `acs-verify
//! fuzz` both call it, so a past crash can never quietly return.

use crate::fuzz::{from_hex, run_target, FuzzTarget, TargetOutcome};
use acs_errors::json::parse;
use acs_errors::AcsError;
use acs_serve::AppState;
use std::path::Path;

/// What a regression input is expected to do today (after its fix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Must parse and honour every invariant.
    Accept,
    /// Must be rejected with a typed error.
    Reject,
    /// Either is fine — only "no invariant violation" is asserted.
    Any,
}

impl Expectation {
    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "accept" => Some(Expectation::Accept),
            "reject" => Some(Expectation::Reject),
            "any" => Some(Expectation::Any),
            _ => None,
        }
    }
}

/// One checked-in regression input.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Source file name (for failure messages).
    pub file: String,
    /// Which parse boundary it targets.
    pub target: FuzzTarget,
    /// The raw input bytes.
    pub input: Vec<u8>,
    /// Expected disposition.
    pub expect: Expectation,
    /// What this input once broke.
    pub note: String,
}

fn malformed(file: &Path, reason: impl Into<String>) -> AcsError {
    AcsError::MalformedRecord { record: file.display().to_string(), reason: reason.into() }
}

/// Load every `*.json` regression file in `dir` (sorted by name, so
/// replay order — and any failure output — is deterministic).
///
/// # Errors
///
/// [`AcsError::Io`] when the directory is unreadable and
/// [`AcsError::MalformedRecord`] for a file that does not follow the
/// regression schema.
pub fn load_dir(dir: &Path) -> Result<Vec<Regression>, AcsError> {
    let entries = std::fs::read_dir(dir).map_err(|e| AcsError::Io {
        path: dir.display().to_string(),
        reason: e.to_string(),
    })?;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut regressions = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|e| AcsError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        let doc = parse(&text).map_err(|e| malformed(&path, format!("not JSON: {e}")))?;
        let target = FuzzTarget::from_tag(doc.require_str("target")?)
            .ok_or_else(|| malformed(&path, "unknown target tag"))?;
        let input = from_hex(doc.require_str("hex")?)
            .ok_or_else(|| malformed(&path, "hex field is not valid hex"))?;
        let expect = Expectation::from_tag(doc.require_str("expect")?)
            .ok_or_else(|| malformed(&path, "expect must be accept|reject|any"))?;
        regressions.push(Regression {
            file: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            target,
            input,
            expect,
            note: doc.require_str("note")?.to_owned(),
        });
    }
    Ok(regressions)
}

/// Replay every regression in `dir`. Returns one line per failure;
/// empty means every past crash stays fixed.
///
/// # Errors
///
/// Propagates [`load_dir`] errors — an unreadable or malformed corpus
/// is itself a failure, not a skip.
pub fn replay_dir(dir: &Path) -> Result<Vec<String>, AcsError> {
    let regressions = load_dir(dir)?;
    if regressions.is_empty() {
        return Err(malformed(dir, "regression corpus is empty — nothing was replayed"));
    }
    let state = AppState::new(64);
    let mut failures = Vec::new();
    for r in &regressions {
        let outcome = run_target(r.target, &r.input, &state, None);
        let verdict = match (&outcome, r.expect) {
            (TargetOutcome::Violated(message), _) => {
                Some(format!("violated an invariant again: {message}"))
            }
            (TargetOutcome::Accepted, Expectation::Reject) => {
                Some("was accepted but must be rejected".to_owned())
            }
            (TargetOutcome::Rejected, Expectation::Accept) => {
                Some("was rejected but must be accepted".to_owned())
            }
            _ => None,
        };
        if let Some(verdict) = verdict {
            failures.push(format!("{} [{}] ({}): {verdict}", r.file, r.target, r.note));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::regressions_dir;

    /// The satellite's acceptance test: every checked-in fuzzer-found
    /// input replays clean against today's code.
    #[test]
    fn checked_in_regressions_stay_fixed() {
        let failures = replay_dir(&regressions_dir()).expect("regression corpus loads");
        assert!(failures.is_empty(), "regressions resurfaced:\n{}", failures.join("\n"));
    }
}
