//! The verification CLI: golden-corpus diffing, seeded fuzzing with
//! regression replay, and socket-chaos rounds.
//!
//! ```text
//! acs-verify corpus [--bless] [--path FILE]   diff (or regenerate) the golden corpus
//! acs-verify fuzz [--iters N] [--seed S]      seeded fuzz smoke + regression replay
//! acs-verify chaos [--rounds N] [--seed S] [--requests N]
//!                                             socket-fault rounds against a live server
//! acs-verify diff                             run the standard differential suite
//! ```
//!
//! Exit status is nonzero on any finding, mismatch, or unhealthy round,
//! so `scripts/ci.sh` can gate on it directly.

use acs_verify::{
    check_corpus, default_corpus_path, event_loop_vs_pool, lattice_screen_front_diff,
    random_sweep_spec, regressions_dir, replay_dir, run_chaos, run_fuzz, standard_suite,
    whatif_grid_64, whatif_grid_diff, ChaosConfig, DiffCase, Differential, EvalPath,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: acs-verify corpus [--bless] [--path FILE]\n\
         \x20      acs-verify fuzz [--iters N] [--seed S]\n\
         \x20      acs-verify chaos [--rounds N] [--seed S] [--requests N]\n\
         \x20      acs-verify diff"
    );
    ExitCode::from(2)
}

/// Pull `--flag VALUE` out of the argument list, parsed as `T`.
fn take_value<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(at + 1);
    args.remove(at);
    raw.parse().map(Some).map_err(|_| format!("{flag} value {raw:?} did not parse"))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(at);
    true
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args.remove(0);
    let outcome = match command.as_str() {
        "corpus" => cmd_corpus(&mut args),
        "fuzz" => cmd_fuzz(&mut args),
        "chaos" => cmd_chaos(&mut args),
        "diff" => cmd_diff(&args),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("acs-verify {command}: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_corpus(args: &mut Vec<String>) -> Result<(), String> {
    let path: PathBuf =
        take_value::<PathBuf>(args, "--path")?.unwrap_or_else(default_corpus_path);
    if take_flag(args, "--bless") {
        let snapshot = acs_verify::bless_corpus(&path).map_err(|e| e.to_string())?;
        println!(
            "blessed {} scenario(s), {} anchor(s) -> {}",
            snapshot.scenarios.len(),
            snapshot.anchors.len(),
            path.display()
        );
        return Ok(());
    }
    let lines = check_corpus(&path).map_err(|e| e.to_string())?;
    if lines.is_empty() {
        println!("corpus holds: {}", path.display());
        Ok(())
    } else {
        Err(format!(
            "{} divergence(s) from the blessed corpus:\n{}\n\
             (if intentional, regenerate with `acs-verify corpus --bless`)",
            lines.len(),
            lines.join("\n")
        ))
    }
}

fn cmd_fuzz(args: &mut Vec<String>) -> Result<(), String> {
    let iters = take_value(args, "--iters")?.unwrap_or(10_000u64);
    let seed = take_value(args, "--seed")?.unwrap_or(1u64);
    let report = run_fuzz(seed, iters);
    println!(
        "fuzz seed={seed}: {} iters, {} accepted, {} rejected, {} finding(s)",
        report.iters,
        report.accepted,
        report.rejected,
        report.findings.len()
    );
    let replay_failures =
        replay_dir(&regressions_dir()).map_err(|e| format!("regression replay: {e}"))?;
    println!("regressions: replayed corpus at {}", regressions_dir().display());
    if report.is_clean() && replay_failures.is_empty() {
        return Ok(());
    }
    let mut lines = Vec::new();
    for f in &report.findings {
        lines.push(format!("[{}] {} input-hex={}", f.target, f.message, f.input_hex));
    }
    lines.extend(replay_failures);
    Err(lines.join("\n"))
}

fn cmd_chaos(args: &mut Vec<String>) -> Result<(), String> {
    let config = ChaosConfig {
        seed: take_value(args, "--seed")?.unwrap_or(1),
        rounds: take_value(args, "--rounds")?.unwrap_or(1),
        requests: take_value(args, "--requests")?.unwrap_or(60),
    };
    let rounds = run_chaos(&config).map_err(|e| e.to_string())?;
    for round in &rounds {
        println!(
            "chaos seed={}: {}/{} requests ok, {} server-injected fault(s), healthy after",
            round.seed, round.ok, round.requests, round.server_faults
        );
    }
    Ok(())
}

fn cmd_diff(_args: &[String]) -> Result<(), String> {
    // A compact sweep keeps the CLI suite interactive; the full golden
    // sweeps run in the repo's test tier.
    let candidates = acs_dse_candidates();
    let harness = Differential::paper_default();
    let mut dirty = Vec::new();
    let mut reports: Vec<acs_verify::DiffReport> =
        standard_suite().iter().map(|case| harness.run(&candidates, case)).collect();
    // The what-if case rides the same suite: batch rule-grid screening
    // against the naive one-rule-at-a-time loop, over the curated DB.
    let devices: Vec<acs_policy::DeviceMetrics> =
        acs_devices::GpuDatabase::curated_65().iter().map(|r| r.to_metrics()).collect();
    reports.push(whatif_grid_diff(&whatif_grid_64(), &devices));
    // Seeded property cases: random sweeps (odd seeds faulted) through
    // lattice-vs-factored, plus the pruned-screen front equivalence.
    for seed in 0..4_u64 {
        let spec = random_sweep_spec(seed);
        let mut candidates = spec.candidates(4800.0);
        if seed % 2 == 1 {
            acs_dse::inject_faults(&mut candidates, seed as usize);
        }
        let case = DiffCase::paths(
            &format!("lattice-vs-factored-seed{seed}"),
            EvalPath::Lattice,
            EvalPath::Factored,
        );
        reports.push(harness.run(&candidates, &case));
        reports.push(lattice_screen_front_diff(&spec, 4800.0));
    }
    for report in &reports {
        println!(
            "diff {}: {} points ({} ok, {} failed) -> {}",
            report.label,
            report.points,
            report.ok,
            report.failed,
            if report.is_clean() { "clean" } else { "MISMATCH" }
        );
        if !report.is_clean() {
            for m in &report.mismatches {
                dirty.push(format!("{}: {m}", report.label));
            }
        }
    }
    // The serve-tier arm: the epoll event loop and the legacy worker
    // pool must be indistinguishable over one replayed corpus.
    let serve = event_loop_vs_pool().map_err(|e| e.to_string())?;
    println!(
        "diff {}: {} requests ({} ok) -> {}",
        serve.label,
        serve.requests,
        serve.ok,
        if serve.is_clean() { "clean" } else { "MISMATCH" }
    );
    for m in &serve.mismatches {
        dirty.push(format!("{}: {m}", serve.label));
    }
    if dirty.is_empty() {
        Ok(())
    } else {
        Err(dirty.join("\n"))
    }
}

fn acs_dse_candidates() -> Vec<acs_dse::CandidateParams> {
    let mut candidates = acs_dse::SweepSpec {
        systolic_dims: vec![16, 32],
        lanes_per_core: vec![2, 8],
        l1_kib: vec![192, 512],
        l2_mib: vec![48],
        hbm_tb_s: vec![2.4, 3.2],
        device_bw_gb_s: vec![600.0],
    }
    .candidates(4800.0);
    acs_dse::inject_faults(&mut candidates, 5);
    candidates
}
