//! Tolerance classes for comparing floating-point results.
//!
//! Three disciplines, ordered from strictest to loosest:
//!
//! - [`Tolerance::Exact`]: the two values must share a bit pattern
//!   (`to_bits` equality, so `-0.0 != 0.0` and NaN payloads matter).
//!   This is the contract between the legacy, planned, and factored
//!   evaluation paths — pure scheduling/caching refactors move nothing.
//! - [`Tolerance::Ulps`]: the values may differ by at most N units in
//!   the last place. The right class for algebraic identities that are
//!   exact over the reals but not over `f64` — a unit conversion
//!   round-trip (`x * 1000.0 / 1000.0`) lands within an ulp or two.
//! - [`Tolerance::Relative`]: classic `|a-b| <= eps * max(|a|,|b|)`.
//!   For comparisons against externally recorded anchors (paper values,
//!   blessed corpus numbers serialized through decimal JSON).

use std::fmt;

/// How close two `f64` values must be to count as equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bit-exact: `a.to_bits() == b.to_bits()`.
    Exact,
    /// At most this many units in the last place apart.
    Ulps(u32),
    /// `|a - b| <= eps * max(|a|, |b|)` (and exact equality for zeros).
    Relative(f64),
}

impl Tolerance {
    /// Whether `a` and `b` are equal under this tolerance. Two NaNs are
    /// equal only under [`Tolerance::Exact`] with identical payloads —
    /// approximate classes treat NaN as unequal to everything, so a
    /// poisoned value can never hide inside a loose comparison.
    #[must_use]
    pub fn accepts(&self, a: f64, b: f64) -> bool {
        match *self {
            Tolerance::Exact => a.to_bits() == b.to_bits(),
            Tolerance::Ulps(n) => ulps_apart(a, b).is_some_and(|d| d <= u64::from(n)),
            Tolerance::Relative(eps) => {
                if !(a.is_finite() && b.is_finite()) {
                    return false;
                }
                if a.to_bits() == b.to_bits() {
                    return true;
                }
                (a - b).abs() <= eps * a.abs().max(b.abs())
            }
        }
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tolerance::Exact => write!(f, "exact"),
            Tolerance::Ulps(n) => write!(f, "{n} ulps"),
            Tolerance::Relative(eps) => write!(f, "relative {eps:e}"),
        }
    }
}

/// Distance between two finite `f64` values in units in the last place,
/// via the monotone total-order mapping of IEEE-754 bit patterns. `None`
/// when either value is NaN/infinite or the signs differ (crossing zero
/// is never "close" in ulp terms except exactly at ±0.0, which map to
/// adjacent lattice points).
#[must_use]
pub fn ulps_apart(a: f64, b: f64) -> Option<u64> {
    if !(a.is_finite() && b.is_finite()) {
        return None;
    }
    // Map the sign-magnitude float lattice onto a monotone unsigned line:
    // negatives fold below the midpoint, positives above, with -0.0 and
    // +0.0 adjacent.
    fn lattice(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }
    Some(lattice(a).abs_diff(lattice(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_bitwise() {
        assert!(Tolerance::Exact.accepts(1.5, 1.5));
        assert!(!Tolerance::Exact.accepts(0.0, -0.0));
        assert!(Tolerance::Exact.accepts(f64::NAN, f64::NAN));
        assert!(!Tolerance::Exact.accepts(1.0, 1.0 + f64::EPSILON));
    }

    #[test]
    fn ulps_counts_lattice_steps() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulps_apart(x, next), Some(1));
        assert_eq!(ulps_apart(x, x), Some(0));
        assert_eq!(ulps_apart(0.0, -0.0), Some(1));
        assert!(Tolerance::Ulps(1).accepts(x, next));
        assert!(!Tolerance::Ulps(0).accepts(x, next));
        assert_eq!(ulps_apart(f64::NAN, 1.0), None);
    }

    #[test]
    fn unit_rescale_roundtrip_sits_within_a_few_ulps() {
        for &x in &[2.0f64, 2.4, 2.8, 3.2, 500.0, 900.0, 4800.0] {
            let rt = x * 1000.0 / 1000.0;
            assert!(
                Tolerance::Ulps(2).accepts(x, rt),
                "{x} vs {rt}: {:?} ulps",
                ulps_apart(x, rt)
            );
        }
    }

    #[test]
    fn relative_scales_with_magnitude_and_rejects_nan() {
        assert!(Tolerance::Relative(1e-9).accepts(1e12, 1e12 + 100.0));
        assert!(!Tolerance::Relative(1e-9).accepts(1.0, 1.001));
        assert!(Tolerance::Relative(1e-3).accepts(1.0, 1.0005));
        assert!(!Tolerance::Relative(1.0).accepts(f64::NAN, f64::NAN));
        assert!(Tolerance::Relative(0.0).accepts(0.0, 0.0));
    }
}
