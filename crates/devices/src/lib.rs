//! Curated database of real NVIDIA/AMD GPUs (2018–2024) with the
//! specifications export-control rules reference.
//!
//! Two datasets are provided, mirroring the paper's two data sources:
//!
//! * [`fig1_devices`] — the named flagship devices of Figures 1 and 2
//!   (vendor datasheets / whitepapers).
//! * [`GpuDatabase::curated_65`] — the 65-device set behind the
//!   marketing-vs-architecture classification study of Figures 9 and 10
//!   (14 data-center-marketed, 51 consumer/workstation). Specifications
//!   are approximate public numbers; the set is curated so the paper's
//!   headline classification counts reproduce. TPP values use the
//!   highest dense `TOPS × bitwidth` product each device datasheet
//!   supports (FP16 tensor throughput for tensor-core devices, packed
//!   FP16 vector throughput otherwise).
//!
//! # Example
//!
//! ```
//! use acs_devices::GpuDatabase;
//! use acs_policy::{Acr2023, Classification};
//!
//! let db = GpuDatabase::curated_65();
//! assert_eq!(db.len(), 65);
//! let rtx4090 = db.get("RTX 4090")?;
//! let class = Acr2023::default().classify(&rtx4090.to_metrics());
//! assert_eq!(class, Classification::NacEligible);
//! # Ok::<(), acs_errors::AcsError>(())
//! ```

pub mod database;
pub mod record;

pub use database::{fig1_devices, frontier_2025, GpuDatabase};
pub use record::{DeviceRecord, Vendor};
