//! A single real-device record.

use acs_errors::AcsError;
use acs_policy::{DeviceMetrics, MarketSegment};
use std::borrow::Cow;
use std::fmt;

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA Corporation.
    Nvidia,
    /// Advanced Micro Devices.
    Amd,
}

impl Vendor {
    /// Parse the display form (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::MalformedRecord`] for an unknown vendor string.
    pub fn parse(s: &str) -> Result<Self, AcsError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "nvidia" => Ok(Vendor::Nvidia),
            "amd" => Ok(Vendor::Amd),
            _ => Err(AcsError::MalformedRecord {
                record: s.to_owned(),
                reason: "unknown vendor (expected NVIDIA or AMD)".to_owned(),
            }),
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// Public specifications of one shipped GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Product name. Curated records borrow a static string; parsed
    /// records own theirs.
    pub name: Cow<'static, str>,
    /// Vendor.
    pub vendor: Vendor,
    /// Launch year.
    pub year: u16,
    /// Marketed segment.
    pub market: MarketSegment,
    /// Total Processing Performance (max dense `TOPS × bitwidth`).
    pub tpp: f64,
    /// Aggregate bidirectional device-to-device bandwidth in GB/s
    /// (NVLink/Infinity-Fabric class, or the PCIe link otherwise).
    pub device_bw_gb_s: f64,
    /// Total die area in mm² (all dies in the package).
    pub die_area_mm2: f64,
    /// Whether the dies are non-planar (FinFET/GAA) — true for every
    /// device in this era's database, kept explicit for the PD rule.
    pub non_planar: bool,
    /// Memory capacity in GiB.
    pub mem_gib: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gb_s: f64,
}

/// CSV column order used by [`DeviceRecord::from_csv_line`] and
/// [`DeviceRecord::to_csv_line`].
pub const CSV_HEADER: &str =
    "name,vendor,year,market,tpp,device_bw_gb_s,die_area_mm2,non_planar,mem_gib,mem_bw_gb_s";

impl DeviceRecord {
    /// Convert to the policy engine's input type.
    #[must_use]
    pub fn to_metrics(&self) -> DeviceMetrics {
        DeviceMetrics::new(
            self.name.as_ref(),
            self.tpp,
            self.device_bw_gb_s,
            self.die_area_mm2,
            self.non_planar,
            self.market,
        )
        .with_memory(self.mem_gib, self.mem_bw_gb_s)
    }

    /// Performance density (TPP / die area) for non-planar devices.
    #[must_use]
    pub fn performance_density(&self) -> Option<f64> {
        self.to_metrics().performance_density().map(|p| p.0)
    }

    /// Check the record's numeric invariants: every specification must be
    /// finite and positive, the name nonempty, and the launch year
    /// plausible for the export-control era.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::MalformedRecord`] naming the first violated
    /// field.
    pub fn validate(&self) -> Result<(), AcsError> {
        let bad = |reason: String| {
            Err(AcsError::MalformedRecord { record: self.name.to_string(), reason })
        };
        if self.name.trim().is_empty() {
            return Err(AcsError::MalformedRecord {
                record: "<unnamed>".to_owned(),
                reason: "empty device name".to_owned(),
            });
        }
        if !(1990..=2100).contains(&self.year) {
            return bad(format!("implausible launch year {}", self.year));
        }
        for (field, value) in [
            ("tpp", self.tpp),
            ("device_bw_gb_s", self.device_bw_gb_s),
            ("die_area_mm2", self.die_area_mm2),
            ("mem_gib", self.mem_gib),
            ("mem_bw_gb_s", self.mem_bw_gb_s),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return bad(format!("{field} must be finite and positive, got {value}"));
            }
        }
        Ok(())
    }

    /// Emit the record as one CSV line in [`CSV_HEADER`] order. Names
    /// never contain commas in this dataset; a comma would corrupt the
    /// format, so it is rejected upstream by parsing.
    #[must_use]
    pub fn to_csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.name,
            self.vendor,
            self.year,
            self.market,
            self.tpp,
            self.device_bw_gb_s,
            self.die_area_mm2,
            self.non_planar,
            self.mem_gib,
            self.mem_bw_gb_s
        )
    }

    /// Parse one CSV line in [`CSV_HEADER`] order. `context` identifies
    /// the record in errors (typically `"line N"`).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::MalformedRecord`] for a wrong field count, an
    /// unparsable field, or a record that fails [`DeviceRecord::validate`].
    pub fn from_csv_line(line: &str, context: &str) -> Result<Self, AcsError> {
        let malformed = |reason: String| AcsError::MalformedRecord {
            record: context.to_owned(),
            reason,
        };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 10 {
            return Err(malformed(format!("expected 10 fields, found {}", fields.len())));
        }
        let f64_field = |i: usize, name: &str| -> Result<f64, AcsError> {
            fields[i]
                .parse::<f64>()
                .map_err(|_| malformed(format!("{name}: not a number: {:?}", fields[i])))
        };
        let market = match fields[3].to_ascii_lowercase().as_str() {
            "data center" | "dc" => MarketSegment::DataCenter,
            "non-data center" | "ndc" => MarketSegment::NonDataCenter,
            other => return Err(malformed(format!("unknown market segment {other:?}"))),
        };
        let non_planar = match fields[7].to_ascii_lowercase().as_str() {
            "true" => true,
            "false" => false,
            other => return Err(malformed(format!("non_planar: not a boolean: {other:?}"))),
        };
        let record = DeviceRecord {
            name: Cow::Owned(fields[0].to_owned()),
            vendor: Vendor::parse(fields[1])
                .map_err(|e| malformed(format!("vendor: {e}")))?,
            year: fields[2]
                .parse::<u16>()
                .map_err(|_| malformed(format!("year: not an integer: {:?}", fields[2])))?,
            market,
            tpp: f64_field(4, "tpp")?,
            device_bw_gb_s: f64_field(5, "device_bw_gb_s")?,
            die_area_mm2: f64_field(6, "die_area_mm2")?,
            non_planar,
            mem_gib: f64_field(8, "mem_gib")?,
            mem_bw_gb_s: f64_field(9, "mem_bw_gb_s")?,
        };
        record.validate()?;
        Ok(record)
    }
}

impl fmt::Display for DeviceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}, {}): TPP {:.0}, {:.0} GB/s dev, {:.0} mm2, {:.0} GiB @ {:.0} GB/s",
            self.vendor,
            self.name,
            self.year,
            self.market,
            self.tpp,
            self.device_bw_gb_s,
            self.die_area_mm2,
            self.mem_gib,
            self.mem_bw_gb_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceRecord {
        DeviceRecord {
            name: Cow::Borrowed("A100 80GB"),
            vendor: Vendor::Nvidia,
            year: 2020,
            market: MarketSegment::DataCenter,
            tpp: 4992.0,
            device_bw_gb_s: 600.0,
            die_area_mm2: 826.0,
            non_planar: true,
            mem_gib: 80.0,
            mem_bw_gb_s: 2039.0,
        }
    }

    #[test]
    fn metrics_round_trip_core_fields() {
        let r = sample();
        let m = r.to_metrics();
        assert_eq!(m.name(), "A100 80GB");
        assert_eq!(m.tpp().0, 4992.0);
        assert_eq!(m.mem_capacity_gib(), 80.0);
        assert_eq!(m.market(), MarketSegment::DataCenter);
    }

    #[test]
    fn a100_pd_matches_public_figure() {
        let pd = sample().performance_density().unwrap();
        assert!((pd - 6.04).abs() < 0.05);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("NVIDIA"));
        assert!(s.contains("A100"));
    }

    #[test]
    fn csv_round_trips() {
        let r = sample();
        let line = r.to_csv_line();
        let back = DeviceRecord::from_csv_line(&line, "line 1").unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let cases = [
            ("A100,NVIDIA,2020", "expected 10 fields"),
            ("A100,Intel,2020,data center,1,1,1,true,1,1", "vendor"),
            ("A100,NVIDIA,soon,data center,1,1,1,true,1,1", "year"),
            ("A100,NVIDIA,2020,cloud,1,1,1,true,1,1", "market"),
            ("A100,NVIDIA,2020,data center,fast,1,1,true,1,1", "tpp"),
            ("A100,NVIDIA,2020,data center,1,1,1,maybe,1,1", "non_planar"),
            ("A100,NVIDIA,2020,data center,-5,1,1,true,1,1", "tpp"),
            ("A100,NVIDIA,2020,data center,NaN,1,1,true,1,1", "tpp"),
            (",NVIDIA,2020,data center,1,1,1,true,1,1", "name"),
        ];
        for (line, expect) in cases {
            let err = DeviceRecord::from_csv_line(line, "line 7").unwrap_err();
            assert_eq!(err.kind(), "malformed_record", "{line}");
            assert!(
                err.to_string().to_lowercase().contains(expect),
                "{line}: {err} (wanted {expect:?})"
            );
        }
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let mut r = sample();
        r.tpp = f64::NAN;
        assert_eq!(r.validate().unwrap_err().kind(), "malformed_record");
        let mut r = sample();
        r.die_area_mm2 = 0.0;
        assert!(r.validate().is_err());
        let mut r = sample();
        r.year = 1234;
        assert!(r.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn vendor_parse_is_case_insensitive() {
        assert_eq!(Vendor::parse("nvidia").unwrap(), Vendor::Nvidia);
        assert_eq!(Vendor::parse(" AMD ").unwrap(), Vendor::Amd);
        assert_eq!(Vendor::parse("intel").unwrap_err().kind(), "malformed_record");
    }
}
