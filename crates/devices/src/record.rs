//! A single real-device record.

use acs_policy::{DeviceMetrics, MarketSegment};
use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA Corporation.
    Nvidia,
    /// Advanced Micro Devices.
    Amd,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// Public specifications of one shipped GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Product name.
    pub name: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Launch year.
    pub year: u16,
    /// Marketed segment.
    pub market: MarketSegment,
    /// Total Processing Performance (max dense `TOPS × bitwidth`).
    pub tpp: f64,
    /// Aggregate bidirectional device-to-device bandwidth in GB/s
    /// (NVLink/Infinity-Fabric class, or the PCIe link otherwise).
    pub device_bw_gb_s: f64,
    /// Total die area in mm² (all dies in the package).
    pub die_area_mm2: f64,
    /// Whether the dies are non-planar (FinFET/GAA) — true for every
    /// device in this era's database, kept explicit for the PD rule.
    pub non_planar: bool,
    /// Memory capacity in GiB.
    pub mem_gib: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gb_s: f64,
}

impl DeviceRecord {
    /// Convert to the policy engine's input type.
    #[must_use]
    pub fn to_metrics(&self) -> DeviceMetrics {
        DeviceMetrics::new(
            self.name,
            self.tpp,
            self.device_bw_gb_s,
            self.die_area_mm2,
            self.non_planar,
            self.market,
        )
        .with_memory(self.mem_gib, self.mem_bw_gb_s)
    }

    /// Performance density (TPP / die area) for non-planar devices.
    #[must_use]
    pub fn performance_density(&self) -> Option<f64> {
        self.to_metrics().performance_density().map(|p| p.0)
    }
}

impl fmt::Display for DeviceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({}, {}): TPP {:.0}, {:.0} GB/s dev, {:.0} mm2, {:.0} GiB @ {:.0} GB/s",
            self.vendor,
            self.name,
            self.year,
            self.market,
            self.tpp,
            self.device_bw_gb_s,
            self.die_area_mm2,
            self.mem_gib,
            self.mem_bw_gb_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceRecord {
        DeviceRecord {
            name: "A100 80GB",
            vendor: Vendor::Nvidia,
            year: 2020,
            market: MarketSegment::DataCenter,
            tpp: 4992.0,
            device_bw_gb_s: 600.0,
            die_area_mm2: 826.0,
            non_planar: true,
            mem_gib: 80.0,
            mem_bw_gb_s: 2039.0,
        }
    }

    #[test]
    fn metrics_round_trip_core_fields() {
        let r = sample();
        let m = r.to_metrics();
        assert_eq!(m.name(), "A100 80GB");
        assert_eq!(m.tpp().0, 4992.0);
        assert_eq!(m.mem_capacity_gib(), 80.0);
        assert_eq!(m.market(), MarketSegment::DataCenter);
    }

    #[test]
    fn a100_pd_matches_public_figure() {
        let pd = sample().performance_density().unwrap();
        assert!((pd - 6.04).abs() < 0.05);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("NVIDIA"));
        assert!(s.contains("A100"));
    }
}
