//! The curated device datasets.
//!
//! Specifications are approximate public datasheet/database numbers. The
//! 65-device set is curated so the paper's Figure 9/10 headline counts
//! reproduce; the exact roster the authors scraped is not published, so
//! minor SKU membership differs (documented in EXPERIMENTS.md).

use crate::record::{DeviceRecord, Vendor, CSV_HEADER};
use acs_errors::AcsError;
use acs_policy::MarketSegment;
use std::borrow::Cow;

use MarketSegment::{DataCenter as DC, NonDataCenter as NDC};
use Vendor::{Amd, Nvidia};

/// Terse record constructor for the tables below.
#[allow(clippy::too_many_arguments)]
const fn rec(
    name: &'static str,
    vendor: Vendor,
    year: u16,
    market: MarketSegment,
    tpp: f64,
    device_bw_gb_s: f64,
    die_area_mm2: f64,
    mem_gib: f64,
    mem_bw_gb_s: f64,
) -> DeviceRecord {
    DeviceRecord {
        name: Cow::Borrowed(name),
        vendor,
        year,
        market,
        tpp,
        device_bw_gb_s,
        die_area_mm2,
        non_planar: true,
        mem_gib,
        mem_bw_gb_s,
    }
}

/// The named flagship devices of Figures 1 and 2 (vendor datasheets).
#[must_use]
pub fn fig1_devices() -> Vec<DeviceRecord> {
    vec![
        rec("A100 80GB", Nvidia, 2020, DC, 4992.0, 600.0, 826.0, 80.0, 2039.0),
        rec("A800 80GB", Nvidia, 2022, DC, 4992.0, 400.0, 826.0, 80.0, 2039.0),
        rec("A30", Nvidia, 2021, DC, 2640.0, 400.0, 826.0, 24.0, 933.0),
        rec("H100 SXM", Nvidia, 2023, DC, 15824.0, 900.0, 814.0, 80.0, 3350.0),
        rec("H800", Nvidia, 2023, DC, 15824.0, 400.0, 814.0, 80.0, 3350.0),
        rec("H20", Nvidia, 2023, DC, 2368.0, 900.0, 814.0, 96.0, 4000.0),
        rec("L40", Nvidia, 2022, DC, 2896.0, 32.0, 608.5, 48.0, 864.0),
        rec("L20", Nvidia, 2023, DC, 1912.0, 32.0, 608.5, 48.0, 864.0),
        rec("L4", Nvidia, 2023, DC, 1936.0, 32.0, 294.5, 24.0, 300.0),
        rec("L2", Nvidia, 2023, DC, 1624.0, 32.0, 294.5, 24.0, 300.0),
        rec("MI210", Amd, 2021, DC, 2896.0, 300.0, 724.0, 64.0, 1638.0),
        rec("MI250X", Amd, 2021, DC, 6128.0, 800.0, 1448.0, 128.0, 3277.0),
        rec("MI300X", Amd, 2023, DC, 20918.0, 1024.0, 3100.0, 192.0, 5300.0),
    ]
}

/// Post-paper frontier devices (2024–2025), for forward-looking studies:
/// how the October 2023 thresholds treat the Blackwell/RDNA4 generation.
/// Specs are approximate public numbers; several were announced after the
/// paper's data cut.
#[must_use]
pub fn frontier_2025() -> Vec<DeviceRecord> {
    vec![
        // H200: H100 silicon with 141 GiB HBM3e — classification identical
        // to the H100.
        rec("H200", Nvidia, 2024, DC, 15824.0, 900.0, 814.0, 141.0, 4800.0),
        // B200: dual ~800 mm² dies, ~2250 dense FP16 TFLOPS aggregate.
        rec("B200", Nvidia, 2024, DC, 36000.0, 1800.0, 1600.0, 192.0, 8000.0),
        // GB300-class single-package accelerator (projected figures).
        rec("B300", Nvidia, 2025, DC, 45000.0, 1800.0, 1660.0, 288.0, 8000.0),
        // RTX 5090: GB202, ~419 dense FP16 tensor TFLOPS.
        rec("RTX 5090", Nvidia, 2025, NDC, 6704.0, 64.0, 750.0, 32.0, 1792.0),
        // RTX 5090D: the China-market variant sized under the NAC floor.
        rec("RTX 5090D", Nvidia, 2025, NDC, 4699.0, 64.0, 750.0, 32.0, 1792.0),
        // RTX 5080.
        rec("RTX 5080", Nvidia, 2025, NDC, 3596.0, 64.0, 378.0, 16.0, 960.0),
        // AMD MI355X-class CDNA4 part (projected figures).
        rec("MI355X", Amd, 2025, DC, 40000.0, 1024.0, 3200.0, 288.0, 8000.0),
        // RX 9070 XT: RDNA4 flagship.
        rec("RX 9070 XT", Amd, 2025, NDC, 3133.0, 64.0, 357.0, 16.0, 640.0),
    ]
}

/// A queryable set of device records.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDatabase {
    records: Vec<DeviceRecord>,
}

impl GpuDatabase {
    /// Build a database from arbitrary records.
    #[must_use]
    pub fn new(records: Vec<DeviceRecord>) -> Self {
        GpuDatabase { records }
    }

    /// The 65-device 2018–2024 set of the paper's §5.2 study:
    /// 14 data-center-marketed and 51 consumer/workstation devices.
    #[must_use]
    pub fn curated_65() -> Self {
        let records = vec![
            // --- data center (14) ---
            rec("A100 40GB", Nvidia, 2020, DC, 4992.0, 600.0, 826.0, 40.0, 1555.0),
            rec("A100 80GB", Nvidia, 2020, DC, 4992.0, 600.0, 826.0, 80.0, 2039.0),
            rec("A800 80GB", Nvidia, 2022, DC, 4992.0, 400.0, 826.0, 80.0, 2039.0),
            rec("A40", Nvidia, 2020, DC, 2395.0, 112.5, 628.0, 48.0, 696.0),
            rec("H100 SXM", Nvidia, 2023, DC, 15824.0, 900.0, 814.0, 80.0, 3350.0),
            rec("H800", Nvidia, 2023, DC, 15824.0, 400.0, 814.0, 80.0, 3350.0),
            rec("H20", Nvidia, 2023, DC, 2368.0, 900.0, 814.0, 96.0, 4000.0),
            rec("L40", Nvidia, 2022, DC, 2896.0, 32.0, 608.5, 48.0, 864.0),
            rec("L20", Nvidia, 2023, DC, 1912.0, 32.0, 608.5, 48.0, 864.0),
            rec("L4", Nvidia, 2023, DC, 1936.0, 32.0, 294.5, 24.0, 300.0),
            rec("L2", Nvidia, 2023, DC, 1624.0, 32.0, 294.5, 24.0, 300.0),
            rec("MI250X", Amd, 2021, DC, 6128.0, 800.0, 1448.0, 128.0, 3277.0),
            rec("MI300X", Amd, 2023, DC, 20918.0, 1024.0, 3100.0, 192.0, 5300.0),
            rec("MI325X", Amd, 2024, DC, 20918.0, 1024.0, 3100.0, 256.0, 6000.0),
            // --- GeForce Turing (8) ---
            rec("RTX 2060", Nvidia, 2019, NDC, 826.0, 16.0, 445.0, 6.0, 336.0),
            rec("RTX 2060 Super", Nvidia, 2019, NDC, 918.0, 16.0, 445.0, 8.0, 448.0),
            rec("RTX 2070", Nvidia, 2018, NDC, 955.0, 16.0, 445.0, 8.0, 448.0),
            rec("RTX 2070 Super", Nvidia, 2019, NDC, 1161.0, 16.0, 545.0, 8.0, 448.0),
            rec("RTX 2080", Nvidia, 2018, NDC, 1288.0, 16.0, 545.0, 8.0, 448.0),
            rec("RTX 2080 Super", Nvidia, 2019, NDC, 1427.0, 16.0, 545.0, 8.0, 496.0),
            rec("RTX 2080 Ti", Nvidia, 2018, NDC, 1722.0, 16.0, 754.0, 11.0, 616.0),
            rec("Titan RTX", Nvidia, 2018, NDC, 2088.0, 16.0, 754.0, 24.0, 672.0),
            // --- GTX 16 series, no tensor cores (5) ---
            rec("GTX 1660", Nvidia, 2019, NDC, 160.0, 16.0, 284.0, 6.0, 192.0),
            rec("GTX 1660 Super", Nvidia, 2019, NDC, 161.0, 16.0, 284.0, 6.0, 336.0),
            rec("GTX 1660 Ti", Nvidia, 2019, NDC, 176.0, 16.0, 284.0, 6.0, 288.0),
            rec("GTX 1650", Nvidia, 2019, NDC, 95.0, 16.0, 200.0, 4.0, 128.0),
            rec("GTX 1650 Super", Nvidia, 2019, NDC, 142.0, 16.0, 284.0, 4.0, 192.0),
            // --- GeForce Ampere (10) ---
            rec("RTX 3050", Nvidia, 2022, NDC, 291.0, 32.0, 276.0, 8.0, 224.0),
            rec("RTX 3060", Nvidia, 2021, NDC, 406.0, 32.0, 276.0, 12.0, 360.0),
            rec("RTX 3060 Ti", Nvidia, 2020, NDC, 518.0, 32.0, 392.0, 8.0, 448.0),
            rec("RTX 3070", Nvidia, 2020, NDC, 650.0, 32.0, 392.0, 8.0, 448.0),
            rec("RTX 3070 Ti", Nvidia, 2021, NDC, 696.0, 32.0, 392.0, 8.0, 608.0),
            rec("RTX 3080", Nvidia, 2020, NDC, 952.0, 32.0, 628.0, 10.0, 760.0),
            rec("RTX 3080 12GB", Nvidia, 2022, NDC, 979.0, 32.0, 628.0, 12.0, 912.0),
            rec("RTX 3080 Ti", Nvidia, 2021, NDC, 1091.0, 32.0, 628.0, 12.0, 912.0),
            rec("RTX 3090", Nvidia, 2020, NDC, 1136.0, 32.0, 628.0, 24.0, 936.0),
            rec("RTX 3090 Ti", Nvidia, 2022, NDC, 1280.0, 32.0, 628.0, 24.0, 1008.0),
            // --- GeForce Ada (8) ---
            rec("RTX 4060", Nvidia, 2023, NDC, 968.0, 32.0, 159.0, 8.0, 272.0),
            rec("RTX 4060 Ti", Nvidia, 2023, NDC, 1413.0, 32.0, 188.0, 8.0, 288.0),
            rec("RTX 4070", Nvidia, 2023, NDC, 1866.0, 32.0, 294.5, 12.0, 504.0),
            rec("RTX 4070 Ti", Nvidia, 2023, NDC, 2566.0, 32.0, 294.5, 12.0, 504.0),
            rec("RTX 4080", Nvidia, 2022, NDC, 3118.0, 32.0, 379.0, 16.0, 717.0),
            rec("RTX 4080 Super", Nvidia, 2024, NDC, 3342.0, 32.0, 379.0, 16.0, 736.0),
            rec("RTX 4090", Nvidia, 2022, NDC, 5285.0, 32.0, 608.5, 24.0, 1008.0),
            rec("RTX 4090D", Nvidia, 2023, NDC, 4708.0, 32.0, 608.5, 24.0, 1008.0),
            // --- workstation (10) ---
            rec("Quadro GV100", Nvidia, 2018, NDC, 1894.0, 16.0, 815.0, 32.0, 870.0),
            rec("Quadro RTX 4000", Nvidia, 2018, NDC, 912.0, 16.0, 545.0, 8.0, 416.0),
            rec("Quadro RTX 5000", Nvidia, 2018, NDC, 1427.0, 16.0, 545.0, 16.0, 448.0),
            rec("Quadro RTX 6000", Nvidia, 2018, NDC, 2088.0, 16.0, 754.0, 24.0, 672.0),
            rec("RTX A2000", Nvidia, 2021, NDC, 256.0, 32.0, 276.0, 6.0, 288.0),
            rec("RTX A4000", Nvidia, 2021, NDC, 614.0, 32.0, 392.0, 16.0, 448.0),
            rec("RTX A4500", Nvidia, 2021, NDC, 758.0, 32.0, 628.0, 20.0, 640.0),
            rec("RTX A5000", Nvidia, 2021, NDC, 890.0, 32.0, 628.0, 24.0, 768.0),
            rec("RTX 4000 SFF Ada", Nvidia, 2023, NDC, 1229.0, 32.0, 294.5, 20.0, 280.0),
            rec("RTX 2000 Ada", Nvidia, 2024, NDC, 768.0, 32.0, 159.0, 16.0, 224.0),
            // --- AMD consumer (9) ---
            rec("Radeon VII", Amd, 2019, NDC, 430.0, 16.0, 331.0, 16.0, 1024.0),
            rec("RX 5700 XT", Amd, 2019, NDC, 312.0, 32.0, 251.0, 8.0, 448.0),
            rec("RX 6600 XT", Amd, 2021, NDC, 339.0, 32.0, 237.0, 8.0, 256.0),
            rec("RX 6700 XT", Amd, 2021, NDC, 422.0, 32.0, 336.0, 12.0, 384.0),
            rec("RX 6800 XT", Amd, 2020, NDC, 664.0, 32.0, 520.0, 16.0, 512.0),
            rec("RX 6900 XT", Amd, 2020, NDC, 738.0, 32.0, 520.0, 16.0, 512.0),
            rec("RX 6950 XT", Amd, 2022, NDC, 757.0, 32.0, 520.0, 16.0, 576.0),
            rec("RX 7600", Amd, 2023, NDC, 344.0, 32.0, 204.0, 8.0, 288.0),
            rec("RX 7900 XT", Amd, 2022, NDC, 1654.0, 32.0, 487.5, 20.0, 800.0),
            rec("RX 7900 XTX", Amd, 2022, NDC, 1965.0, 32.0, 525.0, 24.0, 960.0),
        ];
        GpuDatabase { records }
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over all records.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceRecord> {
        self.records.iter()
    }

    /// Find a device by case-insensitive substring.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&DeviceRecord> {
        let needle = name.to_ascii_lowercase();
        self.records.iter().find(|r| r.name.to_ascii_lowercase().contains(&needle))
    }

    /// [`GpuDatabase::find`] with a typed error: lookups in pipelines
    /// surface a failed query as [`AcsError::UnknownDevice`] instead of
    /// an unwrap site.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::UnknownDevice`] carrying the query when no
    /// record matches.
    pub fn get(&self, name: &str) -> Result<&DeviceRecord, AcsError> {
        self.find(name).ok_or_else(|| AcsError::UnknownDevice { query: name.to_owned() })
    }

    /// Emit the database as CSV (header + one line per record, in
    /// [`CSV_HEADER`] order).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            out.push_str(&r.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// Parse a CSV document produced by [`GpuDatabase::to_csv`] (or
    /// hand-written in the same column order). A leading header line is
    /// skipped; blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::MalformedRecord`] identifying the offending
    /// line (1-based) for any unparsable or invalid record.
    pub fn from_csv(text: &str) -> Result<Self, AcsError> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || (i == 0 && trimmed == CSV_HEADER) {
                continue;
            }
            records.push(DeviceRecord::from_csv_line(trimmed, &format!("line {}", i + 1))?);
        }
        Ok(GpuDatabase { records })
    }

    /// Devices in a market segment.
    #[must_use]
    pub fn by_market(&self, market: MarketSegment) -> Vec<&DeviceRecord> {
        self.records.iter().filter(|r| r.market == market).collect()
    }

    /// Devices from a vendor.
    #[must_use]
    pub fn by_vendor(&self, vendor: Vendor) -> Vec<&DeviceRecord> {
        self.records.iter().filter(|r| r.vendor == vendor).collect()
    }
}

impl<'a> IntoIterator for &'a GpuDatabase {
    type Item = &'a DeviceRecord;
    type IntoIter = std::slice::Iter<'a, DeviceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_policy::{Acr2022, Acr2023, Classification};

    #[test]
    fn curated_set_has_paper_composition() {
        // §5.2: "65 GPUs released by AMD and NVIDIA between 2018 and 2024;
        // 14 devices are marketed as data center devices, and 51 are
        // marketed as consumer or workstation devices."
        let db = GpuDatabase::curated_65();
        assert_eq!(db.len(), 65);
        assert_eq!(db.by_market(DC).len(), 14);
        assert_eq!(db.by_market(NDC).len(), 51);
        for r in &db {
            assert!((2018..=2024).contains(&r.year), "{}: {}", r.name, r.year);
        }
    }

    #[test]
    fn names_are_unique() {
        let db = GpuDatabase::curated_65();
        let mut names: Vec<&str> = db.iter().map(|r| r.name.as_ref()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 65);
    }

    #[test]
    fn get_returns_typed_unknown_device() {
        let db = GpuDatabase::curated_65();
        assert_eq!(db.get("rtx 4090").unwrap().name, "RTX 4090");
        let err = db.get("B9000 Ultra").unwrap_err();
        assert_eq!(err.kind(), "unknown_device");
        assert!(err.to_string().contains("B9000 Ultra"));
    }

    #[test]
    fn csv_round_trips_the_curated_set() {
        let db = GpuDatabase::curated_65();
        let csv = db.to_csv();
        let back = GpuDatabase::from_csv(&csv).unwrap();
        assert_eq!(back, db);
        // Round-trip is byte-stable.
        assert_eq!(back.to_csv(), csv);
    }

    #[test]
    fn from_csv_reports_the_offending_line() {
        let db = GpuDatabase::curated_65();
        let mut csv = db.to_csv();
        csv.push_str("Bogus GPU,NVIDIA,2022,data center,not-a-number,32,600,true,24,1008\n");
        let err = GpuDatabase::from_csv(&csv).unwrap_err();
        assert_eq!(err.kind(), "malformed_record");
        // Header + 65 records + the bad line.
        assert!(err.to_string().contains("line 67"), "{err}");
    }

    #[test]
    fn every_curated_record_validates() {
        for r in GpuDatabase::curated_65().iter().chain(fig1_devices().iter()) {
            r.validate().unwrap_or_else(|e| panic!("{}: {e}", r.name));
        }
        for r in &frontier_2025() {
            r.validate().unwrap_or_else(|e| panic!("{}: {e}", r.name));
        }
    }

    #[test]
    fn find_is_case_insensitive_substring() {
        let db = GpuDatabase::curated_65();
        assert_eq!(db.find("rtx 4090").unwrap().name, "RTX 4090");
        assert!(db.find("no such device").is_none());
    }

    #[test]
    fn fig1_roster_matches_figure() {
        let named = fig1_devices();
        assert_eq!(named.len(), 13);
        for expected in
            ["A100", "A800", "A30", "H100", "H800", "H20", "L40", "L20", "L4", "L2", "MI210", "MI250X", "MI300X"]
        {
            assert!(
                named.iter().any(|r| r.name.contains(expected)),
                "missing {expected}"
            );
        }
    }

    #[test]
    fn fig1a_classifications_match_paper() {
        let rule = Acr2022::default();
        let named = fig1_devices();
        let class = |n: &str| {
            let rec = named
                .iter()
                .find(|r| r.name == n)
                .or_else(|| named.iter().find(|r| r.name.contains(n)))
                .unwrap();
            rule.classify(&rec.to_metrics())
        };
        for licensed in ["A100", "H100 SXM", "MI250X", "MI300X"] {
            assert_eq!(class(licensed), Classification::LicenseRequired, "{licensed}");
        }
        for free in ["A800", "H800", "A30", "H20", "MI210", "L40"] {
            assert_eq!(class(free), Classification::NotApplicable, "{free}");
        }
    }

    #[test]
    fn fig1b_classifications_match_paper() {
        let rule = Acr2023::default();
        let named = fig1_devices();
        let class = |n: &str| {
            let rec = named
                .iter()
                .find(|r| r.name == n)
                .or_else(|| named.iter().find(|r| r.name.contains(n)))
                .unwrap();
            rule.classify(&rec.to_metrics())
        };
        for licensed in ["A100", "A800", "H100 SXM", "H800", "MI250X", "MI300X", "L4"] {
            assert_eq!(class(licensed), Classification::LicenseRequired, "{licensed}");
        }
        for nac in ["A30", "MI210", "L40", "L2"] {
            assert_eq!(class(nac), Classification::NacEligible, "{nac}");
        }
        // The China-specific H20 and L20 escape the October 2023 rule.
        for free in ["H20", "L20"] {
            assert_eq!(class(free), Classification::NotApplicable, "{free}");
        }
    }

    #[test]
    fn all_records_have_positive_specs() {
        for r in &GpuDatabase::curated_65() {
            assert!(r.tpp > 0.0, "{}", r.name);
            assert!(r.die_area_mm2 > 0.0, "{}", r.name);
            assert!(r.mem_gib > 0.0, "{}", r.name);
            assert!(r.mem_bw_gb_s > 0.0, "{}", r.name);
            assert!(r.device_bw_gb_s > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn rtx_4090_matches_paper_quoted_specs() {
        // §2.2: "RTX 4090 gaming GPU (5285 TPP, 32 GB/s, 8.68 PD)".
        let db = GpuDatabase::curated_65();
        let r = db.find("RTX 4090").unwrap();
        assert_eq!(r.tpp, 5285.0);
        assert_eq!(r.device_bw_gb_s, 32.0);
        let pd = r.performance_density().unwrap();
        assert!((pd - 8.68).abs() < 0.05, "pd = {pd}");
    }

    #[test]
    fn frontier_2025_classifications_are_forward_consistent() {
        let rule = Acr2023::default();
        let frontier = frontier_2025();
        let class = |n: &str| {
            let rec = frontier
                .iter()
                .find(|r| r.name == n)
                .unwrap_or_else(|| panic!("missing {n}"));
            rule.classify(&rec.to_metrics())
        };
        // Every Blackwell-class data-center part is far over 4800 TPP.
        for licensed in ["H200", "B200", "B300", "MI355X"] {
            assert_eq!(class(licensed), Classification::LicenseRequired, "{licensed}");
        }
        // The 5090 repeats the 4090's story: consumer NAC…
        assert_eq!(class("RTX 5090"), Classification::NacEligible);
        // …and its D variant is again sized just under the floor.
        assert_eq!(class("RTX 5090D"), Classification::NotApplicable);
        assert_eq!(class("RTX 5080"), Classification::NotApplicable);
        assert_eq!(class("RX 9070 XT"), Classification::NotApplicable);
    }

    #[test]
    fn frontier_records_are_well_formed() {
        for r in frontier_2025() {
            assert!(r.tpp > 0.0 && r.die_area_mm2 > 0.0 && r.mem_bw_gb_s > 0.0, "{}", r.name);
            assert!((2024..=2025).contains(&r.year), "{}", r.name);
        }
    }

    #[test]
    fn a800_pd_matches_paper() {
        // §2.2: A800 PD 6.04; H800 PD 19.45.
        let db = GpuDatabase::curated_65();
        let a800 = db.find("A800").unwrap().performance_density().unwrap();
        assert!((a800 - 6.04).abs() < 0.05);
        let h800 = db.find("H800").unwrap().performance_density().unwrap();
        assert!((h800 - 19.45).abs() < 0.1);
    }
}
