//! Output helpers shared by the experiments.

use std::error::Error;
use std::fs;
use std::path::PathBuf;

/// Resolve the results directory (`ACS_RESULTS_DIR` or `./results`),
/// creating it if needed.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn results_dir() -> Result<PathBuf, Box<dyn Error>> {
    let dir = std::env::var_os("ACS_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Write a CSV file into the results directory and report its path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> Result<(), Box<dyn Error>> {
    let path = results_dir()?.join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "row width mismatch in {name}");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    println!("  [csv] {}", path.display());
    Ok(())
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Format seconds as milliseconds with 3 decimals.
#[must_use]
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Format a fraction as a signed percentage.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.2629), "262.900");
        assert_eq!(pct(0.27), "+27.0%");
        assert_eq!(pct(-0.012), "-1.2%");
    }

    #[test]
    fn write_csv_creates_file() {
        std::env::set_var("ACS_RESULTS_DIR", std::env::temp_dir().join("acs-test-results"));
        write_csv("t.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content =
            std::fs::read_to_string(std::env::temp_dir().join("acs-test-results/t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::env::remove_var("ACS_RESULTS_DIR");
    }
}
