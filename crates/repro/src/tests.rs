//! Harness-level tests: experiment registry integrity and a smoke run of
//! the cheap experiments into a temporary results directory.

use crate::{run, EXPERIMENTS, EXTENSIONS};

#[test]
fn unknown_experiment_is_an_error() {
    let err = run("not-an-experiment").unwrap_err();
    assert!(err.to_string().contains("unknown experiment"));
}

#[test]
fn registry_names_are_unique_and_kebab_case() {
    let mut all: Vec<&str> = EXPERIMENTS.iter().chain(EXTENSIONS.iter()).copied().collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "duplicate experiment names");
    for name in all {
        assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "bad name: {name}"
        );
    }
}

#[test]
fn cheap_experiments_run_to_completion() {
    let dir = std::env::temp_dir().join("acs-repro-test-results");
    std::env::set_var("ACS_RESULTS_DIR", &dir);
    for exp in
        ["table1", "table2", "fig1a", "fig1b", "fig2", "fig9", "fig10", "ext-legacy", "ext-scenarios"]
    {
        run(exp).unwrap_or_else(|e| panic!("{exp} failed: {e}"));
    }
    // CSVs landed where directed.
    assert!(dir.join("fig1a.csv").exists());
    assert!(dir.join("fig9.csv").exists());
    assert!(dir.join("ext_scenarios.csv").exists());
    std::env::remove_var("ACS_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fig1a_csv_has_one_row_per_named_device() {
    let dir = std::env::temp_dir().join("acs-repro-test-results-fig1a");
    std::env::set_var("ACS_RESULTS_DIR", &dir);
    run("fig1a").unwrap();
    let content = std::fs::read_to_string(dir.join("fig1a.csv")).unwrap();
    // Header + 13 named devices.
    assert_eq!(content.lines().count(), 14);
    assert!(content.lines().next().unwrap().starts_with("device,"));
    std::env::remove_var("ACS_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(dir);
}
