//! `acs-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! acs-repro <experiment>    one of: table1, fig1a, fig1b, fig2, table2,
//!                           fig5, fig6, fig7, table4, fig8, fig9, fig10,
//!                           fig11, fig12, all
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = match args.as_slice() {
        [name] if name != "--help" && name != "-h" => name.clone(),
        _ => {
            eprintln!("usage: acs-repro <experiment>");
            eprintln!("experiments: {} all", acs_repro::EXPERIMENTS.join(" "));
            eprintln!("extensions:  {} ext", acs_repro::EXTENSIONS.join(" "));
            return if args.first().map(String::as_str) == Some("--help")
                || args.first().map(String::as_str) == Some("-h")
            {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match acs_repro::run(&name) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
