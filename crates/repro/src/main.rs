//! `acs-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! acs-repro <experiment> [--profile]
//!                           one of: table1, fig1a, fig1b, fig2, table2,
//!                           fig5, fig6, fig7, table4, fig8, fig9, fig10,
//!                           fig11, fig12, all
//! ```
//!
//! `--profile` enables the telemetry registry for the run, writes a
//! deterministic JSONL trace to `results/trace_<experiment>.jsonl`
//! (honouring `ACS_RESULTS_DIR`), and prints the per-stage summary table
//! (DESIGN.md §11).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile = args.iter().any(|a| a == "--profile");
    args.retain(|a| a != "--profile");
    let name = match args.as_slice() {
        [name] if name != "--help" && name != "-h" => name.clone(),
        _ => {
            eprintln!("usage: acs-repro <experiment> [--profile]");
            eprintln!("experiments: {} all", acs_repro::EXPERIMENTS.join(" "));
            eprintln!("extensions:  {} ext", acs_repro::EXTENSIONS.join(" "));
            return if args.first().map(String::as_str) == Some("--help")
                || args.first().map(String::as_str) == Some("-h")
            {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    if profile {
        acs_telemetry::global().enable();
    }
    match acs_repro::run(&name) {
        Ok(()) => {
            if profile {
                match acs_repro::write_profile(&name) {
                    Ok(path) => println!("trace written to {}", path.display()),
                    Err(e) => {
                        eprintln!("error: cannot write trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                println!();
                print!("{}", acs_telemetry::summary_table(acs_telemetry::global()));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
