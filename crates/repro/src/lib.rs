//! Reproduction harness for every table and figure of *Chip Architectures
//! Under Advanced Computing Sanctions* (ISCA '25).
//!
//! Each experiment prints the paper-style rows to stdout and writes the
//! underlying series as CSV into the results directory (`./results` by
//! default, override with the `ACS_RESULTS_DIR` environment variable).
//!
//! Run via the `acs-repro` binary:
//!
//! ```text
//! acs-repro fig6        # October 2022 DSE (Figure 6 + §4.2 headlines)
//! acs-repro all         # everything, in paper order
//! ```

pub mod experiments;
pub mod plot;
#[cfg(test)]
mod tests;
pub mod util;

use std::error::Error;

/// All paper-artefact experiment names, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "fig1a", "fig1b", "fig2", "table2", "fig5", "fig6", "fig7", "table4", "fig8",
    "fig9", "fig10", "fig11", "fig12",
];

/// Extension studies beyond the paper's artefacts (chiplets, power,
/// binning, legacy metrics, MoE, model sweep, simulator ablation).
pub const EXTENSIONS: &[&str] = &[
    "ext-chiplet",
    "ext-power",
    "ext-binning",
    "ext-legacy",
    "ext-moe",
    "ext-models",
    "ext-serving",
    "ext-parallelism",
    "ext-policy",
    "ext-disagg",
    "ext-process",
    "ext-context",
    "ext-chiplet-dse",
    "ext-hbm",
    "ext-fleet",
    "ext-ablation",
    "ext-scenarios",
];

/// Run one experiment by name (or `"all"`).
///
/// # Errors
///
/// Returns an error for unknown experiment names or I/O failures while
/// writing result files.
pub fn run(name: &str) -> Result<(), Box<dyn Error>> {
    // Under `--profile` every experiment gets a span; `all`/`ext` recurse
    // through here, so their children nest automatically.
    let _span = acs_telemetry::span(&format!("repro.{name}"));
    match name {
        "table1" => experiments::table1::run()?,
        "fig1a" => experiments::fig1::run_1a()?,
        "fig1b" => experiments::fig1::run_1b()?,
        "fig2" => experiments::fig1::run_fig2()?,
        "table2" => experiments::table2::run()?,
        "fig5" => experiments::fig5::run()?,
        "fig6" => experiments::fig6::run()?,
        "fig7" => experiments::fig7::run()?,
        "table4" => experiments::table4::run()?,
        "fig8" => experiments::fig8::run()?,
        "fig9" => experiments::fig9::run()?,
        "fig10" => experiments::fig10::run()?,
        "fig11" => experiments::fig11::run()?,
        "fig12" => experiments::fig12::run()?,
        "ext-chiplet" => experiments::ext_chiplet::run()?,
        "ext-power" => experiments::ext_power::run()?,
        "ext-binning" => experiments::ext_binning::run()?,
        "ext-legacy" => experiments::ext_legacy::run()?,
        "ext-moe" => experiments::ext_moe::run()?,
        "ext-models" => experiments::ext_models::run()?,
        "ext-serving" => experiments::ext_serving::run()?,
        "ext-parallelism" => experiments::ext_parallelism::run()?,
        "ext-policy" => experiments::ext_policy::run()?,
        "ext-disagg" => experiments::ext_disagg::run()?,
        "ext-process" => experiments::ext_process::run()?,
        "ext-context" => experiments::ext_context::run()?,
        "ext-chiplet-dse" => experiments::ext_chiplet_dse::run()?,
        "ext-hbm" => experiments::ext_hbm::run()?,
        "ext-fleet" => experiments::ext_fleet::run()?,
        "ext-ablation" => experiments::ext_ablation::run()?,
        "ext-scenarios" => experiments::ext_scenarios::run()?,
        "all" => {
            for exp in EXPERIMENTS {
                run(exp)?;
            }
        }
        "ext" => {
            for exp in EXTENSIONS {
                run(exp)?;
            }
        }
        other => return Err(format!("unknown experiment: {other}").into()),
    }
    Ok(())
}

/// Export the global telemetry registry for a profiled `--profile` run:
/// writes `trace_<name>.jsonl` into the results directory and returns its
/// path. The trace structure (span IDs, ordering, instrument names) is
/// deterministic for a given experiment; only timing fields vary between
/// runs (DESIGN.md §11).
///
/// # Errors
///
/// Propagates results-directory resolution and file-write failures.
pub fn write_profile(name: &str) -> Result<std::path::PathBuf, Box<dyn Error>> {
    let path = util::results_dir()?.join(format!("trace_{name}.jsonl"));
    acs_telemetry::write_trace(acs_telemetry::global(), &path)?;
    Ok(path)
}
