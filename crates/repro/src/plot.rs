//! Terminal scatter plots.
//!
//! The paper's figures are scatter plots; the harness writes their series
//! as CSV, and this module renders a quick ASCII look directly in the
//! terminal so `acs-repro figN` is visually self-contained.

/// One scatter point with a single-character class marker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotPoint {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Marker drawn for this point.
    pub marker: char,
}

/// Render points into a `width × height` character grid with axis labels.
/// Later points overwrite earlier ones in a shared cell. Returns an empty
/// string when no finite point exists.
#[must_use]
pub fn ascii_scatter(
    points: &[PlotPoint],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let finite: Vec<&PlotPoint> =
        points.iter().filter(|p| p.x.is_finite() && p.y.is_finite()).collect();
    if finite.is_empty() || width < 8 || height < 4 {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &finite {
        x_min = x_min.min(p.x);
        x_max = x_max.max(p.x);
        y_min = y_min.min(p.y);
        y_max = y_max.max(p.y);
    }
    // Degenerate ranges plot in the grid centre.
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for p in &finite {
        let col = (((p.x - x_min) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((p.y - y_min) / y_span) * (height - 1) as f64).round() as usize;
        // Row 0 is the top of the plot (max y).
        grid[height - 1 - row][col.min(width - 1)] = p.marker;
    }

    let mut out = String::new();
    out.push_str(&format!("{y_label} ({y_min:.3} .. {y_max:.3})\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" {x_label} ({x_min:.1} .. {x_max:.1})\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, marker: char) -> PlotPoint {
        PlotPoint { x, y, marker }
    }

    #[test]
    fn corners_land_in_corners() {
        let plot = ascii_scatter(
            &[pt(0.0, 0.0, 'a'), pt(10.0, 10.0, 'b')],
            20,
            6,
            "x",
            "y",
        );
        let lines: Vec<&str> = plot.lines().collect();
        // First grid line (top) holds the max-y point at the right edge.
        assert!(lines[1].ends_with('b'), "{plot}");
        // Last grid line holds the min-y point at the left edge.
        assert!(lines[6].starts_with("|a"), "{plot}");
        assert!(plot.contains("x (0.0 .. 10.0)"));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let plot = ascii_scatter(
            &[pt(f64::NAN, 1.0, '#'), pt(1.0, 2.0, 'o'), pt(2.0, 3.0, 'o')],
            16,
            5,
            "x",
            "y",
        );
        assert!(plot.contains('o'));
        assert!(!plot.contains('#'), "NaN point must not be drawn:\n{plot}");
    }

    #[test]
    fn empty_or_tiny_requests_return_empty() {
        assert!(ascii_scatter(&[], 20, 6, "x", "y").is_empty());
        assert!(ascii_scatter(&[pt(1.0, 1.0, 'o')], 2, 2, "x", "y").is_empty());
    }

    #[test]
    fn single_point_plots_without_panicking() {
        let plot = ascii_scatter(&[pt(5.0, 5.0, '*')], 12, 4, "x", "y");
        assert!(plot.contains('*'));
    }
}
