//! Extension: multi-chip-module escape designs and chiplet economics
//! (§2.3/§2.5).
//!
//! The October 2023 rule's PD floor means a 4759-TPP device escapes only
//! with ~3000 mm² of silicon — impossible monolithically. This experiment
//! builds such a device as a chiplet package, checks manufacturability and
//! package-level classification, and quantifies the chiplet-vs-monolith
//! cost trade-off across die counts.

use crate::util::{banner, write_csv};
use acs_hw::chiplet::{cheapest_partition, ChipletPackage, PackagingModel};
use acs_hw::{AreaModel, CostModel, DeviceConfig, SystolicDims, RETICLE_LIMIT_MM2};
use acs_policy::{Acr2023, DeviceMetrics, MarketSegment};
use std::error::Error;

/// Run the chiplet study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: chiplet packaging and rule escape by die area");
    let am = AreaModel::n7();
    let cm = CostModel::n7();
    let rule = Acr2023::published();

    // A 4758-TPP logical device with silicon deliberately spent on SRAM to
    // push total area past the PD floor (TPP/1.6 ≈ 2974 mm²).
    let escape = DeviceConfig::builder()
        .name("escape-4758")
        .core_count(412)
        .lanes_per_core(1)
        .systolic(SystolicDims::square(16))
        .l1_kib_per_core(1536)
        .l2_mib(512)
        .hbm_bandwidth_tb_s(3.2)
        .device_bandwidth_gb_s(900.0)
        .build()?;

    let mut rows = Vec::new();
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>12} {:>20}",
        "chiplets", "die mm2", "package mm2", "PD", "cost $", "Oct-2023 (DC)"
    );
    for n in [1u32, 2, 4] {
        let pkg = ChipletPackage::new(escape.clone(), n, PackagingModel::advanced())?;
        let die = pkg.chiplet_area_mm2(&am);
        let total = pkg.package_area_mm2(&am);
        let tpp = pkg.package_tpp().0;
        let pd = tpp / total;
        let metrics = DeviceMetrics::new(
            format!("escape-{n}x"),
            tpp,
            900.0,
            total,
            true,
            MarketSegment::DataCenter,
        );
        let class = rule.classify(&metrics);
        let manufacturable = pkg.manufacturable(&am);
        let cost = pkg.package_cost_usd(&am, &cm);
        println!(
            "{:>8} {:>11.0}{} {:>14.0} {:>8.2} {:>12.0} {:>20}",
            n,
            die,
            if manufacturable { "  " } else { " !" },
            total,
            pd,
            cost,
            class.to_string()
        );
        rows.push(vec![
            n.to_string(),
            format!("{die:.1}"),
            format!("{total:.1}"),
            format!("{tpp:.0}"),
            format!("{pd:.3}"),
            format!("{cost:.0}"),
            (manufacturable as u8).to_string(),
            class.to_string(),
        ]);
    }
    println!("(! = chiplet exceeds the {RETICLE_LIMIT_MM2} mm2 reticle)");
    println!(
        "\nescape at ~4758 TPP requires PD < 1.6, i.e. > {:.0} mm2 of package silicon:",
        4758.0 / 1.6
    );
    let best = cheapest_partition(&escape, &[1, 2, 3, 4, 6, 8], &am, &cm, PackagingModel::advanced());
    match best {
        Some(pkg) => println!(
            "cheapest manufacturable partition: {} chiplets at ${:.0}/package",
            pkg.chiplets(),
            pkg.package_cost_usd(&am, &cm)
        ),
        None => println!("no manufacturable partition found"),
    }

    // Chiplet-vs-monolith crossover for an A100-class device.
    println!("\nA100-class device, cost by chiplet count:");
    let a100 = DeviceConfig::a100_like();
    for n in [1u32, 2, 4] {
        if !a100.core_count().is_multiple_of(n) {
            continue;
        }
        let pkg = ChipletPackage::new(a100.clone(), n, PackagingModel::advanced())?;
        println!(
            "  {n} chiplet(s): {:>6.0} mm2/die, ${:>5.0}/package",
            pkg.chiplet_area_mm2(&am),
            pkg.package_cost_usd(&am, &cm)
        );
    }

    write_csv(
        "ext_chiplet.csv",
        &[
            "chiplets",
            "die_mm2",
            "package_mm2",
            "tpp",
            "perf_density",
            "package_cost_usd",
            "manufacturable",
            "classification",
        ],
        &rows,
    )
}
