//! Extension: does capping the interconnect actually throttle anything?
//!
//! The October 2022 rule's second knob was device bandwidth. Tensor
//! parallelism touches it lightly (§4.1: 0.27 % on TBT); pipeline
//! parallelism barely touches it at all. This experiment prices both
//! mappings across interconnect levels, including ones far below any
//! published threshold.

use crate::util::{banner, write_csv};
use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{mapping_latency, Parallelism, SimParams};
use std::error::Error;

/// Run the parallelism study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: tensor vs pipeline parallelism under interconnect caps");
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    let mut rows = Vec::new();
    println!(
        "{:>10} {:<10} {:>12} {:>12} {:>12}",
        "dev GB/s", "mapping", "TTFT s", "TBT ms", "tokens/s"
    );
    for bw in [600.0, 300.0, 100.0] {
        let device =
            DeviceConfig::a100_like().to_builder().device_bandwidth_gb_s(bw).build()?;
        let system = SystemConfig::quad(device)?;
        for p in [Parallelism::Tensor, Parallelism::Pipeline] {
            let m = mapping_latency(&system, SimParams::calibrated(), &model, &work, p);
            println!(
                "{:>10.0} {:<10} {:>12.2} {:>12.2} {:>12.0}",
                bw,
                format!("{p:?}"),
                m.ttft_s,
                m.tbt_s * 1e3,
                m.throughput_tokens_per_s
            );
            rows.push(vec![
                format!("{bw:.0}"),
                format!("{p:?}"),
                format!("{:.4}", m.ttft_s),
                format!("{:.4}", m.tbt_s * 1e3),
                format!("{:.1}", m.throughput_tokens_per_s),
            ]);
        }
    }
    println!("\nreading: cutting the interconnect 6x costs tensor parallelism a few percent");
    println!("and pipeline parallelism essentially nothing — a determined operator routes");
    println!("around a device-bandwidth cap by trading decode latency for throughput,");
    println!("which is why the October 2023 update dropped that knob.");
    write_csv(
        "ext_parallelism.csv",
        &["device_bw_gb_s", "mapping", "ttft_s", "tbt_ms", "tokens_per_s"],
        &rows,
    )
}
