//! Extension: thirty years of export-control metrics (§6.1).
//!
//! Ranks the 65-device database under the 1991 CTP, 2006 APP, and 2022
//! TPP metrics and shows how each metric's bitwidth treatment reshuffles
//! which devices look "most powerful" to a regulator.

use crate::util::{banner, write_csv};
use acs_devices::GpuDatabase;
use acs_policy::legacy::{app_wt, ctp_mtops, AppProcessorKind};
use std::error::Error;

/// Run the legacy-metric comparison.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: CTP (1991) vs APP (2006) vs TPP (2022)");
    let db = GpuDatabase::curated_65();

    // Reconstruct each metric from the device's peak tensor rate. The
    // stored TPP is TOPS × 16 for these FP16-tensor devices, so
    // TOPS = TPP / 16; 64-bit FLOPS ≈ TOPS / 16 for a vector fallback.
    let mut rows: Vec<(String, f64, f64, f64)> = db
        .iter()
        .map(|r| {
            let tops16 = r.tpp / 16.0;
            let ctp = ctp_mtops(tops16, 16);
            let app = app_wt(tops16 / 16.0, AppProcessorKind::Vector);
            (r.name.to_string(), ctp, app, r.tpp)
        })
        .collect();

    rows.sort_by(|a, b| b.3.total_cmp(&a.3));
    let top: Vec<&str> = rows.iter().take(5).map(|r| r.0.as_str()).collect();
    println!("top-5 by TPP: {top:?} (CTP/APP agree at uniform FP16 bitwidth)");

    // Where the metrics genuinely diverge: operand bitwidth. CTP's
    // word-length factor (0.3 + 0.7·L/64) discounts narrow math far less
    // than TPP's linear bitwidth, and APP only sees 64-bit FLOPs.
    println!("\nbitwidth sensitivity — A100 (312 FP16 TOPS) vs an INT8 inference ASIC (600 TOPS):");
    let a100_ctp = ctp_mtops(312.0, 16);
    let asic_ctp = ctp_mtops(600.0, 8);
    let a100_tpp = 312.0 * 16.0;
    let asic_tpp = 600.0 * 8.0;
    println!(
        "  CTP: A100 {a100_ctp:.2e} vs ASIC {asic_ctp:.2e} MTOPS -> ASIC ranks {}",
        if asic_ctp > a100_ctp { "HIGHER" } else { "lower" }
    );
    println!(
        "  TPP: A100 {a100_tpp:.0} vs ASIC {asic_tpp:.0} -> ASIC ranks {}",
        if asic_tpp > a100_tpp { "higher" } else { "LOWER" }
    );
    println!("  the 1991 metric would police INT8 inference silicon more harshly than TPP does.");

    // The policy-relevant observation: per unit of FP16 tensor compute,
    // CTP's word-length factor (0.3 + 0.7·16/64 = 0.475) discounts less
    // than TPP's linear bitwidth (16/64 = 0.25), so CTP-era thresholds
    // would bite low-precision AI accelerators *sooner* at equal nominal
    // rates — while APP's 64-bit focus misses them entirely.
    let a100_tops = 312.0;
    println!(
        "\nA100's 312 FP16 TOPS scores: CTP {:.2e} MTOPS, APP {:.1} WT, TPP {:.0}",
        ctp_mtops(a100_tops, 16),
        app_wt(a100_tops / 16.0, AppProcessorKind::Vector),
        a100_tops * 16.0
    );
    println!("APP, built for 64-bit supercomputing, barely registers AI silicon —");
    println!("the drift that motivated TPP's bitwidth scaling (§6.1).");

    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, c, a, t)| {
            vec![n.clone(), format!("{c:.1}"), format!("{a:.3}"), format!("{t:.0}")]
        })
        .collect();
    write_csv("ext_legacy.csv", &["device", "ctp_mtops", "app_wt", "tpp"], &csv)
}
