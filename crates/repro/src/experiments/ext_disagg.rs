//! Extension: disaggregated (phase-split) serving under the sanctions.
//!
//! The paper's related work (Splitwise) splits prefill and decode onto
//! separate fleets. Under the ACRs this becomes a compliance strategy:
//! pair a compute-leaning compliant design for prefill with a
//! bandwidth-leaning compliant design for decode — each under the TPP
//! ceiling — and recover much of what a single restricted node loses.

use crate::util::{banner, write_csv};
use acs_hw::{DeviceConfig, SystemConfig, SystolicDims};
use acs_llm::{LengthDistribution, ModelConfig, RequestTrace};
use acs_sim::{simulate_disaggregated, simulate_serving, ServingConfig, Simulator};
use std::error::Error;

/// Run the disaggregation study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: disaggregated serving with phase-specialised compliant designs");
    let model = ModelConfig::llama3_8b();
    let trace = RequestTrace::synthetic(
        10.0,
        60.0,
        LengthDistribution::chat_prompts(),
        LengthDistribution::chat_outputs(),
        11,
    )?;

    // All three designs sit under the October 2022 ceiling.
    let a100 = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like())?);
    let prefill_opt = Simulator::new(SystemConfig::quad(
        DeviceConfig::builder()
            .name("prefill-opt")
            .core_count(415)
            .lanes_per_core(1)
            .systolic(SystolicDims::square(16))
            .l1_kib_per_core(512)
            .l2_mib(64)
            .hbm_bandwidth_tb_s(2.0)
            .build()?,
    )?);
    let decode_opt = Simulator::new(SystemConfig::quad(
        DeviceConfig::builder()
            .name("decode-opt")
            .core_count(207)
            .lanes_per_core(2)
            .l2_mib(64)
            .hbm_bandwidth_tb_s(3.2)
            .build()?,
    )?);

    let mut rows = Vec::new();
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "deployment", "mean TTFT s", "p99 TTFT s", "tokens/s"
    );
    let mut emit = |label: &str, m: &acs_sim::ServingMetrics| {
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>12.0}",
            label, m.mean_ttft_s, m.p99_ttft_s, m.throughput_tokens_per_s
        );
        rows.push(vec![
            label.to_owned(),
            format!("{:.4}", m.mean_ttft_s),
            format!("{:.4}", m.p99_ttft_s),
            format!("{:.1}", m.throughput_tokens_per_s),
        ]);
    };

    let agg = simulate_serving(&a100, &model, &trace, ServingConfig::default());
    emit("aggregated A100 node", &agg);
    let disagg_same = simulate_disaggregated(&a100, &a100, &model, &trace, ServingConfig::default());
    emit("disaggregated A100 + A100", &disagg_same);
    let disagg_special = simulate_disaggregated(
        &prefill_opt,
        &decode_opt,
        &model,
        &trace,
        ServingConfig::default(),
    );
    emit("disaggregated prefill-opt + decode-opt", &disagg_special);

    println!("\nreading: phase splitting removes prefill/decode interference, and the");
    println!("compliant phase-specialised pair out-serves the restricted flagship —");
    println!("the sanctions cap single-device TPP, not system composition.");
    write_csv(
        "ext_disagg.csv",
        &["deployment", "mean_ttft_s", "p99_ttft_s", "tokens_per_s"],
        &rows,
    )
}
