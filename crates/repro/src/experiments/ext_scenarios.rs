//! Extension: scenario frontend — one MoE-serving die, every ACR regime.
//!
//! The scenario registry fixes what the sweep layers left implicit: the
//! model family (dense or MoE), the operand width, and the parallelism
//! scheme. Screening one sanctions-optimized MoE design across the
//! builtin scenarios shows why that matters for export control: Eq. 1
//! multiplies TOPS by the operand bit width, so the *same silicon*
//! classifies differently under each scenario's dtype — the fp16 reading
//! sits just under the October 2023 licence line while the int4 reading
//! escapes the rule entirely. A second section re-prices the 4096-design
//! what-if lattice under a dense and an expert-parallel scenario,
//! demonstrating that the fleet economics of `acs-whatif` now carry MoE
//! variants (expert all-to-all and all) rather than only the paper's
//! dense 4-device node.

use crate::util::{banner, ms, write_csv};
use acs_dse::SweepSpec;
use acs_hw::DeviceConfig;
use acs_policy::{Acr2022, Acr2023, DeviceMetrics, MarketSegment};
use acs_scenarios::ScenarioRegistry;
use std::error::Error;

/// Run the scenario-screening study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: scenario registry — MoE designs under the ACR generations");
    let registry = ScenarioRegistry::builtin();
    let rule_2022 = Acr2022::published();
    let rule_2023 = Acr2023::published();

    // The sanctions-optimized serving die: compute sized to read just
    // under the 4800-TPP licence line at fp16, the silicon budget spent
    // on memory bandwidth instead — the shape the paper's DSE converges
    // on, here hosting MoE expert grids rather than a dense node.
    let design = DeviceConfig::builder()
        .name("moe-compliant-3.2TBs")
        .core_count(207)
        .lanes_per_core(2)
        .l2_mib(64)
        .hbm_bandwidth_tb_s(3.2)
        .build()?;

    println!(
        "{:<30} {:>6} {:>12} {:>8} {:>7} {:>7} {:>18} {:>18}",
        "scenario", "dtype", "parallelism", "devices", "TPP", "PD", "Oct-2022", "Oct-2023"
    );
    let mut rows = Vec::new();
    for scenario in registry.iter() {
        // Same die, retyped to the scenario's operand width: what the
        // datasheet (and hence the rule) sees for this deployment.
        let retyped = scenario.retype(&design)?;
        let metrics = DeviceMetrics::from_config_with_model(&retyped, MarketSegment::DataCenter);
        let c2022 = rule_2022.classify(&metrics);
        let c2023 = rule_2023.classify(&metrics);
        let pd = metrics.performance_density().map_or(0.0, |p| p.0);
        println!(
            "{:<30} {:>6} {:>12} {:>8} {:>7.0} {:>7.2} {:>18} {:>18}",
            scenario.name(),
            scenario.dtype(),
            scenario.parallelism().to_string(),
            scenario.parallelism().devices(),
            metrics.tpp().0,
            pd,
            c2022.to_string(),
            c2023.to_string(),
        );
        rows.push(vec![
            scenario.name().to_owned(),
            scenario.dtype().to_string(),
            scenario.parallelism().to_string(),
            scenario.parallelism().devices().to_string(),
            format!("{:.0}", metrics.tpp().0),
            format!("{:.2}", pd),
            c2022.to_string(),
            c2023.to_string(),
        ]);
    }
    println!("\nreading: one die, three screening outcomes. The fp16 scenarios read the");
    println!("silicon at full width; the fp8 and int4 scenarios shed TPP at constant");
    println!("compute, walking the same design down and out of the October 2023 rule.");

    banner("MoE variants on the 4096-design what-if lattice");
    println!(
        "{:<30} {:>9} {:>7} {:>10}  {:<40} {:>10}",
        "scenario", "evaluated", "failed", "compliant", "best design", "TTFT (ms)"
    );
    // Price the lattice at the 2400-TPP tier — the compliance boundary
    // §4.4 quotes — where low-density points escape the 2023 DC rule.
    for name in ["dense-llama3-fp16-tp4", "moe-mixtral-fp16-tp4-ep4"] {
        let scenario = registry.get(name)?;
        let report = scenario.runner().run_factored(&SweepSpec::synthetic_fleet(), 2400.0);
        let compliant: Vec<_> =
            report.successes().filter(|d| d.valid_2023()).collect();
        let best = compliant
            .iter()
            .min_by(|a, b| a.tbt_cost_product().total_cmp(&b.tbt_cost_product()))
            .expect("the synthetic lattice always contains compliant designs");
        println!(
            "{:<30} {:>9} {:>7} {:>10}  {:<40} {:>10}",
            name,
            report.designs.len(),
            report.failures.len(),
            compliant.len(),
            best.name,
            ms(best.ttft_s),
        );
    }
    println!("\nreading: the same hardware lattice prices under both workloads; the MoE");
    println!("scenario adds the expert all-to-all leg to every point's collective cost,");
    println!("so fleet planning can now trade sparsity against interconnect exposure.");

    write_csv(
        "ext_scenarios.csv",
        &[
            "scenario",
            "dtype",
            "parallelism",
            "devices",
            "tpp",
            "perf_density",
            "acr_oct2022",
            "acr_oct2023",
        ],
        &rows,
    )
}
