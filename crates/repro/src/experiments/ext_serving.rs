//! Extension: serving-level comparison of restricted vs compliant
//! hardware under a request trace.
//!
//! Per-kernel latencies (§4) understate the system effect: serving mixes
//! prefill and decode under queueing. This experiment drives a synthetic
//! chat trace through a continuous-batching scheduler on the modeled A100
//! and on an October-2022-compliant bandwidth-maxed design, across load
//! levels, and reports the operator-facing metrics.

use crate::util::{banner, write_csv};
use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::{LengthDistribution, ModelConfig, RequestTrace};
use acs_sim::{simulate_serving, ServingConfig, Simulator};
use std::error::Error;

/// Run the serving study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: serving under load (continuous batching)");
    let model = ModelConfig::llama3_8b();
    let a100 = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like())?);
    let compliant_dev = DeviceConfig::builder()
        .name("compliant-3.2TBs")
        .core_count(207)
        .lanes_per_core(2)
        .l2_mib(64)
        .hbm_bandwidth_tb_s(3.2)
        .build()?;
    let compliant = Simulator::new(SystemConfig::quad(compliant_dev)?);

    let mut rows = Vec::new();
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "device", "req/s", "completed", "mean TTFT s", "p99 TTFT s", "tokens/s"
    );
    for rate in [2.0, 8.0, 16.0] {
        let trace = RequestTrace::synthetic(
            rate,
            60.0,
            LengthDistribution::chat_prompts(),
            LengthDistribution::chat_outputs(),
            42,
        )?;
        for (name, sim) in [("modeled-A100", &a100), ("compliant-3.2TBs", &compliant)] {
            let m = simulate_serving(sim, &model, &trace, ServingConfig::default());
            println!(
                "{:<18} {:>8.1} {:>10} {:>12.3} {:>12.3} {:>12.0}",
                name, rate, m.completed, m.mean_ttft_s, m.p99_ttft_s, m.throughput_tokens_per_s
            );
            rows.push(vec![
                name.to_owned(),
                format!("{rate}"),
                m.completed.to_string(),
                format!("{:.4}", m.mean_ttft_s),
                format!("{:.4}", m.p99_ttft_s),
                format!("{:.1}", m.throughput_tokens_per_s),
                format!("{:.5}", m.mean_tbt_s),
            ]);
        }
    }
    println!("\nthe compliant design holds serving throughput at every load level while");
    println!("its prefill deficit shows up only in the TTFT tail — the §4 asymmetry,");
    println!("measured where operators measure it.");
    write_csv(
        "ext_serving.csv",
        &["device", "rate_rps", "completed", "mean_ttft_s", "p99_ttft_s", "tokens_per_s", "mean_tbt_s"],
        &rows,
    )
}
