//! Table 1: the Advanced Computing Rule definitions, exercised on probe
//! points so the encoded thresholds are visible.

use crate::util::banner;
use acs_policy::{Acr2022, Acr2023, Classification, DeviceMetrics, MarketSegment};
use std::error::Error;

/// Print both rule generations and a probe-point truth table.
///
/// # Errors
///
/// Never fails; the `Result` matches the harness interface.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Table 1a: October 2022 definitions");
    let r22 = Acr2022::published();
    println!(
        "License required: TPP >= {} AND bidirectional device BW >= {} GB/s",
        r22.tpp_threshold, r22.device_bw_threshold_gb_s
    );

    banner("Table 1b: October 2023 definitions");
    let r23 = Acr2023::published();
    println!(
        "Data center    - License: TPP >= {} OR (TPP >= {} AND PD >= {})",
        r23.tpp_license, r23.tpp_floor, r23.pd_license
    );
    println!(
        "Data center    - NAC: ({} > TPP >= {} AND {} > PD >= {}) OR (TPP >= {} AND {} > PD >= {})",
        r23.tpp_license, r23.tpp_nac, r23.pd_license, r23.pd_nac_low, r23.tpp_floor,
        r23.pd_license, r23.pd_nac_high
    );
    println!("Non-data center - NAC: TPP >= {}", r23.tpp_license);

    banner("Probe points");
    println!("{:<28} {:>10} {:>8} {:>22} {:>22}", "probe", "TPP", "PD", "Oct-2022", "Oct-2023 (DC)");
    for (tpp, bw, area) in [
        (4992.0, 600.0, 826.0),
        (4992.0, 400.0, 826.0),
        (2400.0, 600.0, 826.0),
        (2399.0, 600.0, 760.0),
        (1600.0, 300.0, 280.0),
        (1599.0, 300.0, 100.0),
    ] {
        let m = DeviceMetrics::new(
            format!("tpp={tpp} bw={bw} area={area}"),
            tpp,
            bw,
            area,
            true,
            MarketSegment::DataCenter,
        );
        let c22 = r22.classify(&m);
        let c23 = r23.classify(&m);
        println!(
            "{:<28} {:>10.0} {:>8.2} {:>22} {:>22}",
            m.name(),
            tpp,
            m.performance_density().map_or(0.0, |p| p.0),
            c22.to_string(),
            c23.to_string()
        );
        // The probes are chosen to exercise every outcome at least once.
        let _ = Classification::NotApplicable;
    }
    Ok(())
}
