//! Table 4 (§4.4): the cost of performance-density compliance — the
//! fastest-TTFT PD-compliant vs non-compliant 2400-TPP GPT-3 designs.

use crate::util::{banner, ms, write_csv};
use acs_core::{optimize_oct2023, ComplianceOverhead};
use acs_dse::EvaluatedDesign;
use acs_llm::ModelConfig;
use std::error::Error;

/// Find the fastest-TTFT designs on each side of the PD boundary and
/// print the Table-4 rows.
///
/// # Errors
///
/// Propagates result-file I/O failures; fails if either side of the
/// boundary is empty (it never is for the Table-3 sweep).
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Table 4: PD-compliant vs non-compliant optimal 2400-TPP designs (GPT-3)");
    let report = optimize_oct2023(&ModelConfig::gpt3_175b(), &super::workload(), 2400.0);
    let compliant = report
        .best_ttft()
        .ok_or("no PD-compliant design found")?
        .clone();
    let non_compliant: &EvaluatedDesign = report
        .designs
        .iter()
        .filter(|d| d.within_reticle && !d.pd_unregulated_2023)
        .min_by(|a, b| a.ttft_s.total_cmp(&b.ttft_s))
        .ok_or("no non-compliant design found")?;

    let print_pair = |label: &str, c: String, n: String| {
        println!("{label:<28} {c:>14} {n:>14}");
    };
    println!("{:<28} {:>14} {:>14}", "Parameter", "PD Compliant", "Non-Compliant");
    print_pair(
        "Die Area (mm2)",
        format!("{:.0}", compliant.die_area_mm2),
        format!("{:.0}", non_compliant.die_area_mm2),
    );
    print_pair(
        "PD",
        format!("{:.2}", compliant.perf_density),
        format!("{:.2}", non_compliant.perf_density),
    );
    print_pair("TTFT (ms)", ms(compliant.ttft_s), ms(non_compliant.ttft_s));
    print_pair("TBT (ms)", ms(compliant.tbt_s), ms(non_compliant.tbt_s));
    print_pair(
        "Silicon Die Cost (7nm)",
        format!("${:.0}", compliant.die_cost_usd),
        format!("${:.0}", non_compliant.die_cost_usd),
    );
    print_pair(
        "1M Good Dies Cost (7nm)",
        format!("${:.0}M", compliant.good_die_cost_usd),
        format!("${:.0}M", non_compliant.good_die_cost_usd),
    );
    println!("\npaper: 753 vs 523 mm2; PD 3.18 vs 4.59; TTFT 465 vs 470 ms;");
    println!("       $134 vs $88 per die; $350M vs $177M per 1M good dies");

    let overhead = ComplianceOverhead::between(&compliant, non_compliant);
    println!(
        "\ncompliance overhead: area x{:.2}, die cost x{:.2}, good-die cost x{:.2} (paper: x1.44, x1.52, ~x2)",
        overhead.area_ratio, overhead.die_cost_ratio, overhead.good_die_cost_ratio
    );

    let row = |d: &EvaluatedDesign, tag: &str| {
        vec![
            tag.to_owned(),
            format!("{:.1}", d.die_area_mm2),
            format!("{:.3}", d.perf_density),
            ms(d.ttft_s),
            ms(d.tbt_s),
            format!("{:.2}", d.die_cost_usd),
            format!("{:.2}", d.good_die_cost_usd),
            d.params.l1_kib.to_string(),
            d.params.l2_mib.to_string(),
            d.params.lanes_per_core.to_string(),
        ]
    };
    write_csv(
        "table4.csv",
        &[
            "design",
            "die_area_mm2",
            "perf_density",
            "ttft_ms",
            "tbt_ms",
            "die_cost_usd",
            "good_die_cost_usd",
            "l1_kib",
            "l2_mib",
            "lanes",
        ],
        &[row(&compliant, "pd_compliant"), row(non_compliant, "non_compliant")],
    )
}
