//! Figure 9 (§5.2): marketing-based classification and its "false"
//! devices over the 65-GPU database.

use crate::util::{banner, write_csv};
use acs_core::marketing_consistency;
use acs_devices::GpuDatabase;
use acs_policy::Acr2023;
use std::error::Error;

/// Run the marketing-consistency study and print the §5.2 counts.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 9: marketing-based device classification (65 GPUs)");
    let db = GpuDatabase::curated_65();
    let rule = Acr2023::published();
    let report = marketing_consistency(&db, &rule);
    println!("consistent data center:     {:>3}", report.consistent_dc.len());
    println!("false data center:          {:>3}  {:?}", report.false_dc.len(), report.false_dc);
    println!("consistent non-data center: {:>3}", report.consistent_ndc.len());
    println!("false non-data center:      {:>3}  {:?}", report.false_ndc.len(), report.false_ndc);
    println!("paper: 4 false data center, 7 false non-data center devices");

    let category = |name: &str| -> &'static str {
        if report.false_dc.iter().any(|n| n == name) {
            "false_dc"
        } else if report.false_ndc.iter().any(|n| n == name) {
            "false_ndc"
        } else if report.consistent_dc.iter().any(|n| n == name) {
            "consistent_dc"
        } else {
            "consistent_ndc"
        }
    };
    let rows: Vec<Vec<String>> = db
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.market.to_string(),
                format!("{:.0}", r.tpp),
                format!("{:.2}", r.performance_density().unwrap_or(0.0)),
                category(&r.name).to_owned(),
            ]
        })
        .collect();
    write_csv(
        "fig9.csv",
        &["device", "market", "tpp", "perf_density", "category"],
        &rows,
    )
}
