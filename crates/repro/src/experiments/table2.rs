//! Table 2: the evaluated model architectures.

use crate::util::banner;
use std::error::Error;

/// Print the model architecture table.
///
/// # Errors
///
/// Never fails; the `Result` matches the harness interface.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Table 2: model architectures");
    let models = super::models();
    println!("{:<22} {:>14} {:>14}", "Parameter", models[0].name(), models[1].name());
    let row = |label: &str, f: &dyn Fn(&acs_llm::ModelConfig) -> String| {
        println!("{:<22} {:>14} {:>14}", label, f(&models[0]), f(&models[1]));
    };
    row("Number of Layers", &|m| m.num_layers().to_string());
    row("Model Dimension", &|m| m.d_model().to_string());
    row("FFN Dimension", &|m| m.d_ffn().to_string());
    row("Attention Heads", &|m| m.num_heads().to_string());
    row("K/V Heads", &|m| m.num_kv_heads().to_string());
    row("Activation Function", &|m| m.activation().to_string());
    println!();
    println!("Workload: {}", super::workload());
    Ok(())
}
