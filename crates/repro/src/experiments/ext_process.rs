//! Extension: process scaling tightens the performance-density rule.
//!
//! PD divides TPP by *die area*, and die area shrinks with every process
//! node. A design that is NAC-eligible on 7 nm can become licence-required
//! on 5 nm *with no architectural change* — the rule effectively ratchets
//! with Moore's law. This experiment ports fixed logical designs across
//! nodes and tracks their classification.

use crate::util::{banner, write_csv};
use acs_hw::{AreaModel, DeviceConfig, ProcessNode, SystolicDims};
use acs_policy::{Acr2023, DeviceMetrics, MarketSegment};
use std::error::Error;

/// Run the process-scaling study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: the PD rule ratchets with process scaling");
    let rule = Acr2023::published();
    let am = AreaModel::n7();

    // Two representative compliant-on-7nm designs.
    let designs = [
        // A 2379-TPP design sitting just under the PD 3.2 NAC boundary.
        DeviceConfig::builder()
            .name("2400-class")
            .core_count(103)
            .lanes_per_core(2)
            .systolic(SystolicDims::square(16))
            .l1_kib_per_core(512)
            .l2_mib(48)
            .hbm_bandwidth_tb_s(2.4)
            .build()?,
        // A 1600-class design comfortably unregulated on 7 nm.
        DeviceConfig::builder()
            .name("1600-class")
            .core_count(69)
            .lanes_per_core(2)
            .systolic(SystolicDims::square(16))
            .l1_kib_per_core(256)
            .l2_mib(40)
            .hbm_bandwidth_tb_s(2.0)
            .build()?,
    ];

    let mut rows = Vec::new();
    println!(
        "{:<14} {:>6} {:>8} {:>10} {:>8} {:>20}",
        "design", "node", "TPP", "area mm2", "PD", "Oct-2023 (DC)"
    );
    for base in &designs {
        for node in [ProcessNode::N7, ProcessNode::N5] {
            let d = base.to_builder().process(node).build()?;
            let area = am.die_area(&d).total_mm2();
            let tpp = d.tpp().0;
            let metrics =
                DeviceMetrics::from_config(&d, area, MarketSegment::DataCenter);
            let class = rule.classify(&metrics);
            println!(
                "{:<14} {:>6} {:>8.0} {:>10.0} {:>8.2} {:>20}",
                base.name(),
                node.to_string(),
                tpp,
                area,
                tpp / area,
                class.to_string()
            );
            rows.push(vec![
                base.name().to_owned(),
                node.to_string(),
                format!("{tpp:.0}"),
                format!("{area:.1}"),
                format!("{:.3}", tpp / area),
                class.to_string(),
            ]);
        }
    }
    println!("\nreading: a straight die shrink raises PD ~1.8x and can flip a design's");
    println!("classification with zero architectural change. Compliance-minded vendors");
    println!("must *waste* the area gains of new nodes (or pad with dark silicon) —");
    println!("an externality of density-based thresholds the paper's §4.4 cost story");
    println!("extends to future processes.");
    write_csv(
        "ext_process.csv",
        &["design", "node", "tpp", "area_mm2", "perf_density", "classification"],
        &rows,
    )
}
