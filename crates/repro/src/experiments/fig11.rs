//! Figure 11 (§5.3): latency distributions of the 4800-TPP,
//! reticle-fitting designs from the Figure-7 DSE, grouped by one fixed
//! architectural parameter per column.

use crate::util::{banner, write_csv};
use acs_core::{indicator_report, FixedParam, LatencyMetric};
use acs_dse::{DseRunner, EvaluatedDesign, SweepSpec};
use acs_llm::ModelConfig;
use std::error::Error;

pub(crate) fn column_rows(
    model: &ModelConfig,
    designs: &[EvaluatedDesign],
    columns: &[FixedParam],
) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for metric in [LatencyMetric::Ttft, LatencyMetric::Tbt] {
        println!("\n{} {} distributions (ms):", model.name(), metric);
        println!(
            "{:<18} {:>6} {:>9} {:>9} {:>9} {:>11}",
            "column", "n", "min", "median", "max", "narrowing"
        );
        for col in indicator_report(designs, metric, columns) {
            let d = col.distribution;
            println!(
                "{:<18} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>10.1}x",
                col.label,
                d.count,
                d.min * 1e3,
                d.median * 1e3,
                d.max * 1e3,
                col.narrowing
            );
            rows.push(vec![
                model.name().to_owned(),
                metric.to_string(),
                col.label.clone(),
                d.count.to_string(),
                format!("{:.6}", d.min * 1e3),
                format!("{:.6}", d.q1 * 1e3),
                format!("{:.6}", d.median * 1e3),
                format!("{:.6}", d.q3 * 1e3),
                format!("{:.6}", d.max * 1e3),
                format!("{:.3}", col.narrowing),
            ]);
        }
    }
    rows
}

pub(crate) const COLUMN_HEADER: [&str; 10] = [
    "model",
    "metric",
    "column",
    "count",
    "min_ms",
    "q1_ms",
    "median_ms",
    "q3_ms",
    "max_ms",
    "narrowing",
];

/// Build the Figure-11 columns for both models.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 11: 4800-TPP latency distributions by fixed parameter");
    let work = super::workload();
    let columns = FixedParam::fig11_columns();
    let mut rows = Vec::new();
    for model in super::models() {
        let designs: Vec<EvaluatedDesign> = DseRunner::new(model.clone(), work)
            .run(&SweepSpec::table3_fig7(), 4800.0)
            .into_iter()
            .filter(|d| d.within_reticle)
            .collect();
        rows.extend(column_rows(&model, &designs, &columns));
    }
    println!("\npaper anchors: 1-lane TTFT 5x (GPT-3) / 3.3x (Llama) narrower;");
    println!("               2.8 TB/s TBT 20.6x / 10.7x narrower;");
    println!("               500 GB/s device BW only ~5.7% / 15.2% narrower TTFT");
    write_csv("fig11.csv", &COLUMN_HEADER, &rows)
}
