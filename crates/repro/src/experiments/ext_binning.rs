//! Extension: binning economics behind regulation-specific SKUs (§2.3).
//!
//! The A800 uses the same GA100 die as the A100 with the NVLink rate cut;
//! partially defective dies can serve the export SKU. This experiment
//! quantifies the salvage: bin split of a 128-core GA100-class die into
//! full / A100-grade / A30-grade products, and the effective cost per
//! sellable device with and without the export bins.

use crate::util::{banner, write_csv};
use acs_hw::binning::{Bin, BinningModel};
use acs_hw::{AreaModel, CostModel, DeviceConfig};
use std::error::Error;

/// Run the binning study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: die binning and regulation-specific SKUs");
    let physical = DeviceConfig::builder()
        .name("GA100-class die")
        .core_count(128)
        .l2_mib(48)
        .hbm_bandwidth_tb_s(2.4)
        .build()?;
    let am = AreaModel::n7();
    // Flagship dies ship on young nodes (§2.3): model an early process
    // ramp with ~2.3x the mature defect density.
    let cm = CostModel { defect_density_per_cm2: 0.30, ..CostModel::n7() };
    let area = am.die_area(&physical);
    let model = BinningModel::for_device(&physical, &area);

    println!(
        "physical die: {} cores, {:.0} mm2, {:.2} expected fatal defects/die",
        model.physical_cores,
        model.die_area_mm2,
        model.defects_per_die(&cm)
    );

    let bins = [
        Bin::new("full (128 cores)", 128),
        Bin::new("flagship bin (124 cores)", 124),
        Bin::new("A100-grade (108 cores)", 108),
    ];
    let split = model.bin_split(&cm, &bins);
    let mut rows = Vec::new();
    println!("\n{:<26} {:>12} {:>16}", "bin", "share", "cumulative yield");
    let mut cumulative = 0.0;
    for (bin, share) in bins.iter().zip(&split) {
        cumulative += share;
        println!("{:<26} {:>11.1}% {:>15.1}%", bin.name, share * 100.0, cumulative * 100.0);
        rows.push(vec![
            bin.name.clone(),
            bin.min_good_cores.to_string(),
            format!("{:.4}", share),
            format!("{:.4}", cumulative),
        ]);
    }
    println!("{:<26} {:>11.1}%", "scrap", split[3] * 100.0);
    rows.push(vec!["scrap".to_owned(), "0".to_owned(), format!("{:.4}", split[3]), "1.0".to_owned()]);


    // Cost per sellable device.
    let raw = cm.die_cost_usd(model.die_area_mm2);
    let perfect_only = raw / model.bin_yield(&cm, 128);
    let with_flagship = raw / model.bin_yield(&cm, 124);
    let with_a100 = raw / model.bin_yield(&cm, 108);
    println!("\ncost per sellable die:");
    println!("  perfect dies only:        ${perfect_only:>7.0}");
    println!("  disabling to 124 cores:   ${with_flagship:>7.0}");
    println!("  disabling to 108 cores:   ${with_a100:>7.0}");
    println!(
        "salvage multiplies sellable output by {:.2}x — why export SKUs reuse flagship dies",
        model.salvage_gain(&cm, &bins)
    );

    write_csv(
        "ext_binning.csv",
        &["bin", "min_good_cores", "share", "cumulative_yield"],
        &rows,
    )
}
