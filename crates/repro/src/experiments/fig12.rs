//! Figure 12 (§5.3): the restriction study — Table 5's down-scaled sweep
//! at 4800 TPP, with distributions grouped by restricting parameters and
//! median slowdowns measured against the modeled A100.

use crate::experiments::fig11::{column_rows, COLUMN_HEADER};
use crate::util::{banner, pct, write_csv};
use acs_core::{indicator_report, A100Baseline, FixedParam, LatencyMetric};
use acs_dse::{DseRunner, EvaluatedDesign, SweepSpec};
use std::error::Error;

/// Build the Figure-12 columns and print the §5.3 restriction headlines.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 12: Table-5 restricted DSE distributions (TPP 4800)");
    let work = super::workload();
    let columns = FixedParam::fig12_columns();
    let mut rows = Vec::new();
    for model in super::models() {
        let baseline = A100Baseline::simulate(&model, &work);
        let designs: Vec<EvaluatedDesign> = DseRunner::new(model.clone(), work)
            .run(&SweepSpec::table5(), 4800.0)
            .into_iter()
            .filter(|d| d.within_reticle)
            .collect();
        println!(
            "\n{}: {} of {} Table-5 designs fit the reticle",
            model.name(),
            designs.len(),
            SweepSpec::table5().cardinality()
        );
        rows.extend(column_rows(&model, &designs, &columns));

        // §5.3 headlines: median slowdown vs the A100 for the two
        // strongest restrictors.
        for (metric, col, paper) in [
            (LatencyMetric::Ttft, FixedParam::L1Kib(32), "paper: +58.7% (GPT-3) / +52.6% (Llama)"),
            (LatencyMetric::Tbt, FixedParam::HbmTbS(0.8), "paper: +110% (GPT-3) / +58.7% (Llama)"),
        ] {
            let cols = indicator_report(&designs, metric, &[col]);
            if let Some(c) = cols.get(1) {
                let base = match metric {
                    LatencyMetric::Ttft => baseline.ttft_s,
                    LatencyMetric::Tbt => baseline.tbt_s,
                };
                println!(
                    "{} with {}: median {} vs A100 ({}), {:.1}x narrower",
                    metric,
                    c.label,
                    pct(c.distribution.median / base - 1.0),
                    paper,
                    c.narrowing
                );
            }
        }
    }
    println!("\npaper anchors: 32KB-L1 TTFT 1.59x/1.43x narrower; 0.8TB/s TBT 41.8x/42.4x narrower");
    write_csv("fig12.csv", &COLUMN_HEADER, &rows)
}
