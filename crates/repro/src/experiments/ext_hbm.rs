//! Extension: the December 2024 HBM rule against the DSE's memory systems.
//!
//! Device-level rules leave memory bandwidth uncapped (§4's decoding
//! loophole); the December 2024 rule instead controls the *commodity HBM
//! packages* a design would buy. This experiment derives each DSE memory
//! configuration's stack composition and classifies the stacks — showing
//! the memory-side door closing on exactly the bandwidth-maxed designs
//! the device rules allow.

use crate::util::{banner, write_csv};
use acs_policy::{HbmClassification, HbmPackage, HbmRule2024};
use std::error::Error;

/// HBM generations a design can source.
const STACKS: &[(&str, f64, f64)] = &[
    // (name, GB/s per stack, package area mm²)
    ("HBM2e", 460.0, 110.0),
    ("HBM3", 665.0, 110.0),
    ("HBM3e", 1229.0, 110.0),
];

/// Run the HBM-rule study.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: December 2024 HBM rule vs the DSE memory systems");
    let rule = HbmRule2024::published();
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>12} {:>8} {:>12} {:>26}",
        "stack", "GB/s/stack", "mm2", "GB/s/mm2", "Dec-2024 classification"
    );
    for &(name, bw, area) in STACKS {
        let pkg = HbmPackage::new(name, bw, area);
        let class = rule.classify(&pkg);
        println!(
            "{:<8} {:>12.0} {:>8.0} {:>12.2} {:>26}",
            name,
            bw,
            area,
            pkg.bandwidth_density(),
            class.to_string()
        );
        rows.push(vec![
            name.to_owned(),
            format!("{bw:.0}"),
            format!("{area:.0}"),
            format!("{:.3}", pkg.bandwidth_density()),
            class.to_string(),
        ]);
    }

    println!("\nDSE memory systems (Table 3) and the stacks they need:");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "device BW", "HBM2e", "HBM3", "HBM3e"
    );
    for device_tb_s in [2.0, 2.4, 2.8, 3.2] {
        let counts: Vec<String> = STACKS
            .iter()
            .map(|&(_, bw, _)| format!("{}", (device_tb_s * 1000.0 / bw).ceil() as u32))
            .collect();
        println!(
            "{:<12} {:>10} {:>10} {:>10}",
            format!("{device_tb_s} TB/s"),
            counts[0],
            counts[1],
            counts[2]
        );
    }
    let controlled = STACKS
        .iter()
        .filter(|&&(_, bw, area)| {
            rule.classify(&HbmPackage::new("probe", bw, area)) == HbmClassification::Controlled
        })
        .count();
    println!(
        "\nreading: every modern stack ({controlled}/{} generations) is controlled as a \
         commodity, so the",
        STACKS.len()
    );
    println!("bandwidth-maxed compliant designs of §4.2 can only be built by vendors who");
    println!("integrate HBM *before* export — the 2024 rule patches the decode loophole");
    println!("at the supply-chain layer rather than the device layer.");
    write_csv(
        "ext_hbm.csv",
        &["stack", "gb_s", "area_mm2", "density", "classification"],
        &rows,
    )
}
