//! Figure 8 (§4.4): latency–die-cost products over the October 2023 DSE.

use crate::experiments::fig7::TPP_TIERS;
use crate::util::{banner, write_csv};
use acs_core::optimize_oct2023;
use std::error::Error;

/// Compute latency-cost products per tier; print the compliant vs
/// non-compliant minimum-product ratios §4.4 quotes.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 8: TTFT/TBT x die-cost products (October 2023 DSE)");
    let work = super::workload();
    let mut rows = Vec::new();
    for model in super::models() {
        println!("\n### {} ###", model.name());
        for tier in TPP_TIERS {
            let report = optimize_oct2023(&model, &work, tier);
            for d in &report.designs {
                rows.push(vec![
                    model.name().to_owned(),
                    format!("{tier}"),
                    format!("{:.1}", d.die_area_mm2),
                    format!("{:.2}", d.ttft_cost_product()),
                    format!("{:.4}", d.tbt_cost_product()),
                    (d.valid_2023() as u8).to_string(),
                ]);
            }
            // Minimum products on each side of the compliance boundary.
            let min_of = |compliant: bool, f: fn(&acs_dse::EvaluatedDesign) -> f64| {
                report
                    .designs
                    .iter()
                    .filter(|d| d.within_reticle && d.pd_unregulated_2023 == compliant)
                    .map(f)
                    .fold(f64::INFINITY, f64::min)
            };
            let c_ttft = min_of(true, |d| d.ttft_cost_product());
            let n_ttft = min_of(false, |d| d.ttft_cost_product());
            let c_tbt = min_of(true, |d| d.tbt_cost_product());
            let n_tbt = min_of(false, |d| d.tbt_cost_product());
            print!(
                "{tier} TPP: min TTFT-cost {:.0} (compliant) vs {:.0} (non-compliant) ms*$",
                c_ttft, n_ttft
            );
            if c_ttft.is_finite() && n_ttft.is_finite() {
                print!("  -> x{:.2}", c_ttft / n_ttft);
            }
            println!();
            if c_tbt.is_finite() && n_tbt.is_finite() {
                println!(
                    "          min TBT-cost  {:.2} vs {:.2} ms*$  -> x{:.2}",
                    c_tbt,
                    n_tbt,
                    c_tbt / n_tbt
                );
            }
        }
    }
    println!("\npaper (2400 TPP): GPT-3 compliant min products x2.72 (TTFT), x2.64 (TBT);");
    println!("                  Llama 3 x2.58 (TTFT), x2.91 (TBT) vs non-compliant");
    write_csv(
        "fig8.csv",
        &["model", "tpp_tier", "die_area_mm2", "ttft_cost_ms_usd", "tbt_cost_ms_usd", "valid_2023"],
        &rows,
    )
}
