//! Figure 6 (§4.2): the October 2022 design space exploration — 512
//! designs at TPP ≈ 4800 / 600 GB/s for GPT-3 175B and Llama 3 8B.

use crate::plot::{ascii_scatter, PlotPoint};
use crate::util::{banner, ms, pct, write_csv};
use acs_core::optimize_oct2022;
use acs_dse::EvaluatedDesign;
use std::error::Error;

pub(crate) fn design_rows(designs: &[EvaluatedDesign], model: &str) -> Vec<Vec<String>> {
    designs
        .iter()
        .map(|d| {
            vec![
                model.to_owned(),
                d.params.systolic_dim.to_string(),
                d.params.lanes_per_core.to_string(),
                d.params.core_count.to_string(),
                d.params.l1_kib.to_string(),
                d.params.l2_mib.to_string(),
                format!("{:.1}", d.params.hbm_tb_s),
                format!("{:.0}", d.params.device_bw_gb_s),
                format!("{:.0}", d.tpp),
                format!("{:.1}", d.die_area_mm2),
                format!("{:.3}", d.perf_density),
                ms(d.ttft_s),
                ms(d.tbt_s),
                format!("{:.2}", d.die_cost_usd),
                (d.within_reticle as u8).to_string(),
                (d.pd_unregulated_2023 as u8).to_string(),
            ]
        })
        .collect()
}

pub(crate) const DESIGN_HEADER: [&str; 16] = [
    "model",
    "systolic_dim",
    "lanes",
    "cores",
    "l1_kib",
    "l2_mib",
    "hbm_tb_s",
    "device_bw_gb_s",
    "tpp",
    "die_area_mm2",
    "perf_density",
    "ttft_ms",
    "tbt_ms",
    "die_cost_usd",
    "within_reticle",
    "pd_unregulated_2023",
];

/// Run the Figure 6 DSE for both models and print the §4.2 headlines.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 6: October 2022 DSE (TPP<4800, 600 GB/s device BW)");
    let work = super::workload();
    let mut rows = Vec::new();
    for model in super::models() {
        let report = optimize_oct2022(&model, &work);
        let reticle_ok = report.designs.len() - report.reticle_violations;
        println!(
            "\n{}: {} designs, {} within the {}mm2 reticle",
            model.name(),
            report.designs.len(),
            reticle_ok,
            acs_hw::RETICLE_LIMIT_MM2
        );
        println!(
            "modeled A100 baseline: TTFT {} ms, TBT {} ms",
            ms(report.baseline.ttft_s),
            ms(report.baseline.tbt_s)
        );
        let paper = if model.name().contains("GPT") {
            "(paper: TTFT -1.2%, TBT -27%)"
        } else {
            "(paper: TTFT -4%, TBT -14.2%)"
        };
        if let (Some(bt), Some(bd)) = (report.best_ttft(), report.best_tbt()) {
            println!(
                "best TTFT design: {} ms ({} vs A100), {:.0} mm2 [{}l, L1 {}K, L2 {}M, {} TB/s]",
                ms(bt.ttft_s),
                pct(bt.ttft_s / report.baseline.ttft_s - 1.0),
                bt.die_area_mm2,
                bt.params.lanes_per_core,
                bt.params.l1_kib,
                bt.params.l2_mib,
                bt.params.hbm_tb_s,
            );
            println!(
                "best TBT design:  {} ms ({} vs A100), {:.0} mm2 [{}l, L1 {}K, L2 {}M, {} TB/s]",
                ms(bd.tbt_s),
                pct(bd.tbt_s / report.baseline.tbt_s - 1.0),
                bd.die_area_mm2,
                bd.params.lanes_per_core,
                bd.params.l1_kib,
                bd.params.l2_mib,
                bd.params.hbm_tb_s,
            );
            println!("{paper}");
        }
        if model.name().contains("GPT") {
            // Figure 6c in ASCII: prefill vs decoding ('.' manufacturable,
            // 'x' over-reticle, 'A' the modeled A100).
            let mut points: Vec<PlotPoint> = report
                .designs
                .iter()
                .map(|d| PlotPoint {
                    x: d.ttft_s * 1e3,
                    y: d.tbt_s * 1e3,
                    marker: if d.within_reticle { '.' } else { 'x' },
                })
                .collect();
            points.push(PlotPoint {
                x: report.baseline.ttft_s * 1e3,
                y: report.baseline.tbt_s * 1e3,
                marker: 'A',
            });
            println!("\n{}", ascii_scatter(&points, 64, 16, "TTFT ms", "TBT ms"));
        }
        rows.extend(design_rows(&report.designs, model.name()));
    }
    write_csv("fig6.csv", &DESIGN_HEADER, &rows)
}
