//! Extension: model-size sweep on restricted vs flagship hardware.
//!
//! Runs every model preset on the modeled A100 baseline and an
//! H20-inspired design (compute-capped, bandwidth-rich) to show how the
//! October 2023 compromise hardware behaves across the model spectrum:
//! competitive on decoding everywhere, far behind on prefill.

use crate::util::{banner, ms, write_csv};
use acs_hw::{DeviceConfig, SystemConfig, SystolicDims};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{decode_throughput_tokens_per_s, request_latency_s, Simulator};
use std::error::Error;

fn h20_like() -> DeviceConfig {
    // Compute sized just under the NAC floor (TPP ≈ 2368-class),
    // memory maxed: the China-market compromise design.
    DeviceConfig::builder()
        .name("modeled-H20")
        .core_count(51)
        .lanes_per_core(4)
        .systolic(SystolicDims::square(16))
        .l1_kib_per_core(256)
        .l2_mib(60)
        .hbm_bandwidth_tb_s(4.0)
        .device_bandwidth_gb_s(900.0)
        .build()
        .expect("valid")
}

/// Run the model sweep.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: model spectrum on flagship vs compromise hardware");
    let work = WorkloadConfig::paper_default();
    let models = [
        ModelConfig::llama3_8b(),
        ModelConfig::gpt3_13b(),
        ModelConfig::llama3_70b(),
        ModelConfig::gpt3_175b(),
        ModelConfig::mixtral_8x7b(),
    ];
    let devices = [DeviceConfig::a100_like(), h20_like()];
    let mut rows = Vec::new();
    println!(
        "{:<14} {:<14} {:>10} {:>10} {:>12} {:>12}",
        "model", "device", "TTFT ms", "TBT ms", "tokens/s", "request s"
    );
    for model in &models {
        for device in &devices {
            let sim = Simulator::new(SystemConfig::quad(device.clone())?);
            let ttft = sim.ttft_s(model, &work);
            let tbt = sim.tbt_s(model, &work);
            let thpt = decode_throughput_tokens_per_s(&sim, model, &work);
            let req = request_latency_s(&sim, model, &work);
            println!(
                "{:<14} {:<14} {:>10} {:>10} {:>12.0} {:>12.1}",
                model.name(),
                device.name(),
                ms(ttft),
                ms(tbt),
                thpt,
                req
            );
            rows.push(vec![
                model.name().to_owned(),
                device.name().to_owned(),
                ms(ttft),
                ms(tbt),
                format!("{thpt:.1}"),
                format!("{req:.2}"),
            ]);
        }
    }
    println!("\nthe compromise device trails ~2x on prefill yet matches or beats the");
    println!("flagship on decode throughput — the asymmetry §4 quantifies, across scales.");
    write_csv(
        "ext_models.csv",
        &["model", "device", "ttft_ms", "tbt_ms", "tokens_per_s", "request_s"],
        &rows,
    )
}
