//! Extension: context-length scaling on restricted vs compromise hardware.
//!
//! The paper fixes a 2048-token context; serving trends run far longer.
//! KV-cache traffic grows linearly with context, shifting even more of
//! the decode bottleneck onto memory bandwidth — strengthening §5.3's
//! case that bandwidth, not TPP, is the decode lever.

use crate::util::{banner, ms, write_csv};
use acs_hw::{DeviceConfig, SystemConfig, SystolicDims};
use acs_llm::{InferencePhase, ModelConfig, WorkloadConfig};
use acs_sim::Simulator;
use std::error::Error;

/// Run the context-length sweep.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: context-length scaling (GPT-3 175B)");
    let model = ModelConfig::gpt3_175b();
    let a100 = Simulator::new(SystemConfig::quad(DeviceConfig::a100_like())?);
    // H20-like: compute sized near the 2368-TPP point, 4 TB/s of HBM.
    let h20 = Simulator::new(SystemConfig::quad(
        DeviceConfig::builder()
            .name("modeled-H20")
            .core_count(51)
            .lanes_per_core(4)
            .systolic(SystolicDims::square(16))
            .l2_mib(60)
            .hbm_bandwidth_tb_s(4.0)
            .device_bandwidth_gb_s(900.0)
            .build()?,
    )?);

    let mut rows = Vec::new();
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "context", "A100 TTFT ms", "A100 TBT ms", "H20 TTFT ms", "H20 TBT ms"
    );
    for context in [1024u64, 2048, 4096, 8192, 16384, 32768] {
        let work = WorkloadConfig::new(32, context, 1024);
        let a_ttft = a100.ttft_s(&model, &work);
        let a_tbt = a100
            .simulate_layer(&model, &work, InferencePhase::Decode { context_len: context })
            .total_s();
        let h_ttft = h20.ttft_s(&model, &work);
        let h_tbt = h20
            .simulate_layer(&model, &work, InferencePhase::Decode { context_len: context })
            .total_s();
        println!(
            "{:>9} {:>14} {:>14} {:>14} {:>14}",
            context,
            ms(a_ttft),
            ms(a_tbt),
            ms(h_ttft),
            ms(h_tbt)
        );
        rows.push(vec![
            context.to_string(),
            ms(a_ttft),
            ms(a_tbt),
            ms(h_ttft),
            ms(h_tbt),
        ]);
    }
    println!("\nreading: the compute-capped, bandwidth-rich design falls further behind on");
    println!("prefill as context grows but extends its decode lead — KV traffic scales");
    println!("with context and rides the memory system the rules leave uncapped.");
    write_csv(
        "ext_context.csv",
        &["context", "a100_ttft_ms", "a100_tbt_ms", "h20_ttft_ms", "h20_tbt_ms"],
        &rows,
    )
}
