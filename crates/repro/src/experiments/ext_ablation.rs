//! Extension: simulator mechanism ablation.
//!
//! DESIGN.md calls out four modelled mechanisms — per-operator launch
//! overhead, finite DRAM efficiency, the L2 (forwarding + blocking), and
//! the L1 fill/drain tiling. This ablation idealises each in turn and
//! reports how the A100 anchors move, showing which mechanism carries
//! which phase of the paper's story.

use crate::util::{banner, ms, write_csv};
use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{SimParams, Simulator};
use std::error::Error;

/// Run the ablation.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: simulator mechanism ablation (modeled A100)");
    let work = WorkloadConfig::paper_default();
    let base = SimParams::calibrated();

    let variants: Vec<(&str, SimParams)> = vec![
        ("calibrated", base),
        ("no launch overhead", SimParams { op_overhead_s: 0.0, ..base }),
        (
            "ideal DRAM",
            SimParams { dram_efficiency: 1.0, dram_latency_s: 0.0, ..base },
        ),
        ("no L2 (forwarding off)", SimParams { l2_usable_fraction: 1e-9, ..base }),
        ("full L1 usable", SimParams { l1_usable_fraction: 1.0, ..base }),
        ("ideal everything", SimParams::ideal()),
    ];

    let mut rows = Vec::new();
    for model in [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()] {
        println!("\n{}:", model.name());
        println!("{:<24} {:>12} {:>12}", "variant", "TTFT ms", "TBT ms");
        for (label, params) in &variants {
            let sim = Simulator::with_params(
                SystemConfig::quad(DeviceConfig::a100_like())?,
                *params,
            );
            let ttft = sim.ttft_s(&model, &work);
            let tbt = sim.tbt_s(&model, &work);
            println!("{:<24} {:>12} {:>12}", label, ms(ttft), ms(tbt));
            rows.push(vec![
                model.name().to_owned(),
                (*label).to_owned(),
                ms(ttft),
                ms(tbt),
            ]);
        }
    }
    println!("\nreading: launch overhead dominates decode at small models; DRAM");
    println!("efficiency sets the decode floor; removing the L2 wrecks both phases;");
    println!("L1 capacity moves prefill (the §5.3 indicator) and not decode.");
    write_csv("ext_ablation.csv", &["model", "variant", "ttft_ms", "tbt_ms"], &rows)
}
