//! Extension: mixture-of-experts inference under the sanctions.
//!
//! TPP ceilings cap *compute*; MoE models move the decode bottleneck to
//! expert weight *capacity and bandwidth*, which the October rules barely
//! touch. This experiment runs a Mixtral-class MoE against its dense twin
//! on the restricted baseline and on a compliant bandwidth-maxed design,
//! showing that the architecture-first lens (memory limits) matters even
//! more for MoE-era workloads.

use crate::util::{banner, ms, pct, write_csv};
use acs_hw::{DeviceConfig, SystemConfig, SystolicDims};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{decode_throughput_tokens_per_s, Simulator};
use std::error::Error;

/// Run the MoE study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: MoE inference under compute-capped rules");
    let work = WorkloadConfig::paper_default();
    let dense = ModelConfig::llama3_8b();
    let moe = ModelConfig::mixtral_8x7b();

    // Restricted baseline vs a 2022-compliant decode-optimised design
    // (TPP < 4800 but 3.2 TB/s memory).
    let a100 = DeviceConfig::a100_like();
    let compliant = DeviceConfig::builder()
        .name("compliant-3.2TBs")
        .core_count(207)
        .lanes_per_core(2)
        .systolic(SystolicDims::square(16))
        .l2_mib(64)
        .hbm_bandwidth_tb_s(3.2)
        .build()?;

    let mut rows = Vec::new();
    println!(
        "{:<22} {:<14} {:>10} {:>10} {:>12}",
        "device", "model", "TTFT ms", "TBT ms", "tokens/s"
    );
    let mut tbt = std::collections::HashMap::new();
    for device in [&a100, &compliant] {
        let sim = Simulator::new(SystemConfig::quad(device.clone())?);
        for model in [&dense, &moe] {
            let t = sim.ttft_s(model, &work);
            let d = sim.tbt_s(model, &work);
            let thpt = decode_throughput_tokens_per_s(&sim, model, &work);
            println!(
                "{:<22} {:<14} {:>10} {:>10} {:>12.0}",
                device.name(),
                model.name(),
                ms(t),
                ms(d),
                thpt
            );
            tbt.insert((device.name().to_owned(), model.name().to_owned()), d);
            rows.push(vec![
                device.name().to_owned(),
                model.name().to_owned(),
                ms(t),
                ms(d),
                format!("{thpt:.1}"),
            ]);
        }
    }

    let moe_penalty = tbt[&("modeled-A100".to_owned(), "Mixtral 8x7B".to_owned())]
        / tbt[&("modeled-A100".to_owned(), "Llama 3 8B".to_owned())];
    println!(
        "\nMoE decode penalty on the A100: x{moe_penalty:.2} TBT vs the dense twin \
         (expert weight streaming)"
    );
    let gain = 1.0
        - tbt[&("compliant-3.2TBs".to_owned(), "Mixtral 8x7B".to_owned())]
            / tbt[&("modeled-A100".to_owned(), "Mixtral 8x7B".to_owned())];
    println!(
        "a TPP-compliant, bandwidth-maxed design recovers {} of MoE decode latency —",
        pct(gain)
    );
    println!("compute ceilings do not bind the workload class that now dominates serving.");

    write_csv(
        "ext_moe.csv",
        &["device", "model", "ttft_ms", "tbt_ms", "tokens_per_s"],
        &rows,
    )
}
