//! Extension: automated policy design on the effectiveness/collateral
//! plane (§5.4 as an optimisation problem).

use crate::util::{banner, write_csv};
use acs_core::{design_policies, PolicyCandidate};
use acs_devices::GpuDatabase;
use acs_dse::SweepSpec;
use acs_llm::{ModelConfig, WorkloadConfig};
use std::error::Error;

/// Run the policy-design study.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: policy design — throttle AI decoding, spare gaming");
    let mut candidates = Vec::new();
    for tpp_cap in [1600.0, 2400.0, 4800.0] {
        for mem_cap in [None, Some(1.6), Some(0.8)] {
            candidates.push(PolicyCandidate { tpp_cap, mem_bw_cap_tb_s: mem_cap, l1_cap_kib: None });
        }
    }
    // Table-3 shaped sweep widened downward so memory caps leave designs
    // to evaluate.
    let sweep = SweepSpec {
        hbm_tb_s: vec![0.8, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2],
        ..SweepSpec::table3_fig6()
    };
    let (outcomes, front) = design_policies(
        &candidates,
        &ModelConfig::gpt3_175b(),
        &WorkloadConfig::paper_default(),
        &sweep,
        &GpuDatabase::curated_65(),
    );

    let mut rows = Vec::new();
    println!(
        "{:<28} {:>14} {:>15} {:>18} {:>8}",
        "policy", "decode x A100", "prefill x A100", "consumer swept %", "pareto"
    );
    for (i, o) in outcomes.iter().enumerate() {
        let on_front = front.contains(&i);
        println!(
            "{:<28} {:>14.2} {:>15.2} {:>17.1}% {:>8}",
            o.candidate.to_string(),
            o.decode_slowdown,
            o.prefill_slowdown,
            o.consumer_collateral * 100.0,
            if on_front { "*" } else { "" }
        );
        rows.push(vec![
            o.candidate.to_string(),
            format!("{:.3}", o.decode_slowdown),
            format!("{:.3}", o.prefill_slowdown),
            format!("{:.4}", o.consumer_collateral),
            o.design_count.to_string(),
            u8::from(on_front).to_string(),
        ]);
    }
    println!("\nreading: at any TPP cap, adding a 1.6 TB/s memory-bandwidth cap multiplies");
    println!("the decode throttle at zero consumer collateral — the §5.4 prescription.");
    println!("dropping the TPP cap instead mostly buys prefill throttling at the price of");
    println!("sweeping up gaming flagships (§5.1's negative externality).");
    write_csv(
        "ext_policy.csv",
        &["policy", "decode_slowdown", "prefill_slowdown", "consumer_collateral", "designs", "pareto"],
        &rows,
    )
}
