//! Figure 5 (§4.1): TPP-vs-device-bandwidth scaling under the October
//! 2022 rule, modeling GPT-3 175B.
//!
//! Two sweeps, both October-2022-compliant:
//! * device bandwidth capped below 600 GB/s, TPP (core count) swept;
//! * TPP capped below 4800 (103 cores), device bandwidth swept.

use crate::util::{banner, ms, pct, write_csv};
use acs_core::A100Baseline;
use acs_hw::{AreaModel, DeviceConfig, SystemConfig};
use acs_llm::ModelConfig;
use acs_sim::Simulator;
use std::error::Error;

fn evaluate(cfg: &DeviceConfig, model: &ModelConfig) -> (f64, f64, f64) {
    let work = super::workload();
    let sim = Simulator::new(SystemConfig::quad(cfg.clone()).expect("quad node"));
    let area = AreaModel::n7().die_area(cfg).total_mm2();
    (sim.ttft_s(model, &work), sim.tbt_s(model, &work), area)
}

/// Run both sweeps and print the §4.1 headline deltas.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 5: TPP vs device bandwidth scaling (GPT-3 175B, Oct 2022)");
    let model = ModelConfig::gpt3_175b();
    let baseline = A100Baseline::simulate(&model, &super::workload());
    println!(
        "modeled A100: TTFT {} ms, TBT {} ms (paper anchors ~280, ~1.437)",
        ms(baseline.ttft_s),
        ms(baseline.tbt_s)
    );

    // Sweep 1: device BW capped at 500 GB/s (< 600), scale cores/TPP.
    let mut rows = Vec::new();
    let mut results = Vec::new();
    println!("\n-- BW capped at 500 GB/s, sweeping TPP --");
    println!("{:>6} {:>6} {:>10} {:>10} {:>10}", "TPP", "cores", "TTFT ms", "TBT ms", "area mm2");
    for tpp_target in [4000.0_f64, 4500.0, 5000.0, 5500.0, 6000.0, 6500.0, 7000.0, 7500.0, 8000.0] {
        // 16x16 arrays, 4 lanes (A100 shape): 1024 MACs per core.
        let cores = (tpp_target * 500.0 / (1.41 * 16.0) / 1024.0).floor() as u32;
        let cfg = DeviceConfig::builder()
            .name(format!("tpp{tpp_target:.0}"))
            .core_count(cores)
            .device_bandwidth_gb_s(500.0)
            .build()?;
        let tpp = cfg.tpp().0;
        let (ttft, tbt, area) = evaluate(&cfg, &model);
        println!("{:>6.0} {:>6} {:>10} {:>10} {:>10.1}", tpp, cores, ms(ttft), ms(tbt), area);
        results.push((tpp_target, ttft, tbt, area));
        rows.push(vec![
            "tpp_sweep".to_owned(),
            format!("{tpp:.0}"),
            "500".to_owned(),
            ms(ttft),
            ms(tbt),
            format!("{area:.1}"),
        ]);
    }
    let ttft_at = |t: f64| results.iter().find(|r| r.0 == t).map(|r| r.1).unwrap();
    let area_at = |t: f64| results.iter().find(|r| r.0 == t).map(|r| r.3).unwrap();
    println!(
        "TPP 4000 -> 5000: TTFT {} (paper: -16.2%)",
        pct(ttft_at(5000.0) / ttft_at(4000.0) - 1.0)
    );
    println!(
        "TPP 4000 -> 7000: TTFT {} (paper: -34.1%), die area {} (paper: +48.3%)",
        pct(ttft_at(7000.0) / ttft_at(4000.0) - 1.0),
        pct(area_at(7000.0) / area_at(4000.0) - 1.0)
    );

    // Sweep 2: TPP capped at 4759 (103 cores), scale device bandwidth.
    println!("\n-- TPP capped at 4759 (103 cores), sweeping device BW --");
    println!("{:>8} {:>10} {:>10}", "BW GB/s", "TTFT ms", "TBT ms");
    let mut bw_results = Vec::new();
    for bw in [500.0, 600.0, 700.0, 800.0, 900.0, 1000.0] {
        let cfg = DeviceConfig::builder()
            .name(format!("bw{bw:.0}"))
            .core_count(103)
            .device_bandwidth_gb_s(bw)
            .build()?;
        let (ttft, tbt, area) = evaluate(&cfg, &model);
        println!("{:>8.0} {:>10} {:>10}", bw, ms(ttft), ms(tbt));
        bw_results.push((bw, ttft, tbt));
        rows.push(vec![
            "bw_sweep".to_owned(),
            "4759".to_owned(),
            format!("{bw:.0}"),
            ms(ttft),
            ms(tbt),
            format!("{area:.1}"),
        ]);
    }
    let tbt_at = |b: f64| bw_results.iter().find(|r| r.0 == b).map(|r| r.2).unwrap();
    println!(
        "BW 600 -> 1000 GB/s: TBT {} (paper: -0.27%)",
        pct(tbt_at(1000.0) / tbt_at(600.0) - 1.0)
    );

    write_csv(
        "fig5.csv",
        &["sweep", "tpp", "device_bw_gb_s", "ttft_ms", "tbt_ms", "die_area_mm2"],
        &rows,
    )
}
