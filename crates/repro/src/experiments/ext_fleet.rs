//! Extension: TPP-denominated quotas barely cap serving capacity.
//!
//! The January 2025 framework meters exports in cumulative TPP. Decoding
//! rides memory bandwidth, so a buyer optimising for serving capacity
//! spends the same quota on compute-capped, bandwidth-rich nodes and ends
//! up with *more* tokens/s than an all-flagship fleet — quantifying how
//! loosely a compute-denominated quota binds the use case it targets.

use crate::util::{banner, write_csv};
use acs_core::fleet::{monoculture_capacity, plan_fleet, FleetOption};
use acs_hw::{DeviceConfig, SystemConfig, SystolicDims};
use acs_llm::ModelConfig;
use acs_policy::DiffusionQuota;
use std::error::Error;

/// Run the fleet-planning study.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: fleet planning under a TPP quota (GPT-3 175B serving)");
    let model = ModelConfig::gpt3_175b();
    let quota = DiffusionQuota::tier2_country();

    let a100 = SystemConfig::quad(DeviceConfig::a100_like())?;
    let h20 = SystemConfig::quad(
        DeviceConfig::builder()
            .name("H20-class")
            .core_count(51)
            .lanes_per_core(4)
            .systolic(SystolicDims::square(16))
            .l2_mib(60)
            .hbm_bandwidth_tb_s(4.0)
            .device_bandwidth_gb_s(900.0)
            .build()?,
    )?;
    let compliant = SystemConfig::quad(
        DeviceConfig::builder()
            .name("compliant-3.2TBs")
            .core_count(207)
            .lanes_per_core(2)
            .l2_mib(64)
            .hbm_bandwidth_tb_s(3.2)
            .build()?,
    )?;

    let options = vec![
        FleetOption::evaluate("A100 node (4x)", &a100, &model),
        FleetOption::evaluate("H20-class node (4x)", &h20, &model),
        FleetOption::evaluate("compliant-3.2TBs node (4x)", &compliant, &model),
    ];

    let mut rows = Vec::new();
    println!(
        "{:<28} {:>12} {:>12} {:>16}",
        "node type", "TPP/node", "tok/s/node", "tok/s per MTPP"
    );
    for o in &options {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>16.0}",
            o.name,
            o.tpp_per_node,
            o.tokens_per_s_per_node,
            o.throughput_per_tpp() * 1e6
        );
        rows.push(vec![
            o.name.clone(),
            format!("{:.0}", o.tpp_per_node),
            format!("{:.1}", o.tokens_per_s_per_node),
            format!("{:.2}", o.throughput_per_tpp() * 1e6),
        ]);
    }

    println!("\nspending the tier-2 allocation ({:.0}M TPP):", quota.tpp_allocation / 1e6);
    let plan = plan_fleet(&options, quota.tpp_allocation);
    for (name, nodes) in &plan.purchases {
        println!("  {nodes} x {name}");
    }
    println!(
        "optimised fleet: {:.2}M tokens/s",
        plan.total_tokens_per_s / 1e6
    );
    let mono = monoculture_capacity(&options[0], quota.tpp_allocation);
    println!("all-A100 fleet:  {:.2}M tokens/s", mono / 1e6);
    println!(
        "\nreading: the same TPP allocation buys {:.1}x the serving capacity when spent",
        plan.total_tokens_per_s / mono
    );
    println!("on compute-capped bandwidth-rich nodes — a quota denominated in the metric");
    println!("the paper shows mispredicts decoding inherits exactly that misprediction.");
    write_csv(
        "ext_fleet.csv",
        &["node", "tpp_per_node", "tokens_per_s_per_node", "tokens_per_s_per_mtpp"],
        &rows,
    )
}
