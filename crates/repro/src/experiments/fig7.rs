//! Figure 7 (§4.3): the October 2023 DSE — 1536 designs at each of the
//! 1600 / 2400 / 4800 TPP tiers, for both models.

use crate::experiments::fig6::{design_rows, DESIGN_HEADER};
use crate::plot::{ascii_scatter, PlotPoint};
use crate::util::{banner, ms, pct, write_csv};
use acs_core::{optimize_oct2023, OptimizationReport};
use std::error::Error;

/// The TPP tiers of the October 2023 rule.
pub const TPP_TIERS: [f64; 3] = [1600.0, 2400.0, 4800.0];

/// Run the tiered DSE for both models; print per-tier optima vs A100.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 7: October 2023 DSE (1600/2400/4800 TPP tiers)");
    let work = super::workload();
    let mut rows = Vec::new();
    for model in super::models() {
        println!("\n### {} ###", model.name());
        for tier in TPP_TIERS {
            let report: OptimizationReport = optimize_oct2023(&model, &work, tier);
            let valid = report.designs.iter().filter(|d| d.valid_2023()).count();
            println!(
                "{} TPP: {} designs, {} valid ({} PD violations, {} reticle violations)",
                tier,
                report.designs.len(),
                valid,
                report.pd_violations,
                report.reticle_violations
            );
            match (report.best_ttft(), report.best_tbt()) {
                (Some(bt), Some(bd)) => {
                    println!(
                        "  fastest TTFT: {} ms ({} vs A100)   fastest TBT: {} ms ({} vs A100)",
                        ms(bt.ttft_s),
                        pct(bt.ttft_s / report.baseline.ttft_s - 1.0),
                        ms(bd.tbt_s),
                        pct(bd.tbt_s / report.baseline.tbt_s - 1.0),
                    );
                }
                _ => println!("  no valid designs at this tier (paper: all 4800 TPP invalid)"),
            }
            if model.name().contains("GPT") && (tier - 2400.0).abs() < 1.0 {
                // Figure 7b in ASCII: die area vs decode latency for the
                // 2400-TPP tier ('o' = valid, 'x' = PD/reticle-violating,
                // 'A' = the modeled A100).
                let mut points: Vec<PlotPoint> = report
                    .designs
                    .iter()
                    .map(|d| PlotPoint {
                        x: d.die_area_mm2.min(1800.0),
                        y: d.tbt_s * 1e3,
                        marker: if d.valid_2023() { 'o' } else { 'x' },
                    })
                    .collect();
                points.push(PlotPoint {
                    x: report.baseline.die_area_mm2,
                    y: report.baseline.tbt_s * 1e3,
                    marker: 'A',
                });
                println!("\n{}", ascii_scatter(&points, 64, 14, "die area mm2 (clipped)", "TBT ms"));
            }
            let tier_label = format!("{}-{}", model.name(), tier);
            rows.extend(design_rows(&report.designs, &tier_label));
        }
    }
    println!("\npaper anchors: fastest compliant 2400-TPP TTFT is +78.8% (GPT-3) / +54.6% (Llama)");
    println!("               fastest TBT: -20.9%/-26.1% (GPT-3 @1600/2400), -12.0%/-12.8% (Llama)");
    write_csv("fig7.csv", &DESIGN_HEADER, &rows)
}
