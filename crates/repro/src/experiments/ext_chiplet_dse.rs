//! Extension: the October 2022 DSE with advanced packaging.
//!
//! §4.2 drops 144 of the 512 designs at the reticle; packaging recovers
//! them as multi-chip modules. This experiment re-runs Figure 6's design
//! space with each point realised as its cheapest manufacturable package
//! and asks how much of the lost performance the reticle was actually
//! protecting.

use crate::util::{banner, ms, pct, write_csv};
use acs_core::A100Baseline;
use acs_dse::{run_packaged, DseRunner, SweepSpec};
use acs_hw::chiplet::PackagingModel;
use acs_llm::{ModelConfig, WorkloadConfig};
use std::error::Error;

/// Run the packaged DSE.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: Figure-6 DSE with chiplet packaging");
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();
    let baseline = A100Baseline::simulate(&model, &work);
    let runner = DseRunner::new(model.clone(), work);
    let configs = SweepSpec::table3_fig6().configs(4800.0);
    let packaged =
        run_packaged(&runner, &configs, &[1, 2, 3, 4, 6, 8], PackagingModel::advanced());

    let mono_ok = packaged.iter().filter(|p| p.design.within_reticle).count();
    println!(
        "{} designs: {} fit the reticle monolithically; packaging realises all {}          (cost picks {} multi-chip even among reticle-fitting ones)",
        configs.len(),
        mono_ok,
        packaged.len(),
        packaged.iter().filter(|p| p.chiplets > 1).count()
    );

    let best_ttft = packaged
        .iter()
        .min_by(|a, b| a.design.ttft_s.total_cmp(&b.design.ttft_s))
        .expect("nonempty");
    let best_mono = packaged
        .iter()
        .filter(|p| p.design.within_reticle)
        .min_by(|a, b| a.design.ttft_s.total_cmp(&b.design.ttft_s))
        .expect("nonempty");
    println!(
        "\nbest packaged TTFT: {} ms ({} vs A100) as a {}-chiplet, {:.0} mm2, ${:.0} package",
        ms(best_ttft.design.ttft_s),
        pct(best_ttft.design.ttft_s / baseline.ttft_s - 1.0),
        best_ttft.chiplets,
        best_ttft.package_area_mm2,
        best_ttft.package_cost_usd
    );
    println!(
        "best reticle-fitting TTFT: {} ms ({} vs A100), ${:.0}/package",
        ms(best_mono.design.ttft_s),
        pct(best_mono.design.ttft_s / baseline.ttft_s - 1.0),
        best_mono.package_cost_usd
    );
    println!("\nreading: packaging turns the §4.2 reticle ceiling into a cost slope —");
    println!("the 2022 rule's residual bite on prefill shrinks once MCMs are priced in,");
    println!("previewing why §2.5 expects compliant designs to go multi-chip.");

    let rows: Vec<Vec<String>> = packaged
        .iter()
        .map(|p| {
            vec![
                p.design.name.clone(),
                p.chiplets.to_string(),
                format!("{:.1}", p.package_area_mm2),
                format!("{:.2}", p.package_cost_usd),
                format!("{:.4}", p.package_pd),
                ms(p.design.ttft_s),
                ms(p.design.tbt_s),
            ]
        })
        .collect();
    write_csv(
        "ext_chiplet_dse.csv",
        &["design", "chiplets", "package_mm2", "package_cost_usd", "package_pd", "ttft_ms", "tbt_ms"],
        &rows,
    )
}
