//! Extension: power and energy of PD compliance (§4.4's "increases
//! static and dynamic power" made quantitative).

use crate::util::{banner, write_csv};
use acs_hw::{DeviceConfig, PowerModel, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{energy_per_token_j, layer_energy, Simulator};
use std::error::Error;

/// Compare the Table-4 matched pair (identical architecture, caches
/// grown to cross the PD floor) on power and per-token energy.
///
/// # Errors
///
/// Propagates result-file I/O and configuration failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Extension: power cost of PD compliance (Table-4 matched pair)");
    let power = PowerModel::n7();
    let model = ModelConfig::gpt3_175b();
    let work = WorkloadConfig::paper_default();

    let non_compliant = DeviceConfig::builder()
        .name("2400tpp-lean")
        .core_count(103)
        .lanes_per_core(2)
        .l1_kib_per_core(192)
        .l2_mib(32)
        .hbm_bandwidth_tb_s(3.2)
        .build()?;
    let compliant = non_compliant
        .to_builder()
        .name("2400tpp-pd-compliant")
        .l1_kib_per_core(1024)
        .l2_mib(48)
        .build()?;

    let mut rows = Vec::new();
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "design", "SRAM MiB", "idle W", "TDP W", "decode W/dev", "J/token"
    );
    for device in [&compliant, &non_compliant] {
        let idle = power.static_w(device);
        let tdp = power.tdp_w(device);
        let sim = Simulator::new(SystemConfig::quad(device.clone())?);
        let decode =
            layer_energy(&sim, &model, &work, work.decode_phase(), &power);
        let per_token = energy_per_token_j(&sim, &model, &work, &power);
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>12.2}",
            device.name(),
            device.total_sram_mib(),
            idle,
            tdp,
            decode.avg_power_w / 4.0,
            per_token
        );
        rows.push(vec![
            device.name().to_owned(),
            format!("{:.1}", device.total_sram_mib()),
            format!("{idle:.2}"),
            format!("{tdp:.2}"),
            format!("{:.2}", decode.avg_power_w / 4.0),
            format!("{per_token:.3}"),
        ]);
    }
    let idle_ratio = power.static_w(&compliant) / power.static_w(&non_compliant);
    println!(
        "\nthe PD-compliant design idles {:.0}% hotter for identical performance",
        (idle_ratio - 1.0) * 100.0
    );
    println!("(paper §4.4: ~3x the floor-planned SRAM raises static and dynamic power)");

    write_csv(
        "ext_power.csv",
        &["design", "sram_mib", "idle_w", "tdp_w", "decode_w_per_dev", "j_per_token"],
        &rows,
    )
}
