//! One module per paper artefact.

pub mod ext_ablation;
pub mod ext_binning;
pub mod ext_chiplet;
pub mod ext_chiplet_dse;
pub mod ext_context;
pub mod ext_disagg;
pub mod ext_fleet;
pub mod ext_hbm;
pub mod ext_legacy;
pub mod ext_models;
pub mod ext_parallelism;
pub mod ext_policy;
pub mod ext_process;
pub mod ext_moe;
pub mod ext_scenarios;
pub mod ext_power;
pub mod ext_serving;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table4;

use acs_llm::{ModelConfig, WorkloadConfig};

/// The two evaluation models, in paper order.
#[must_use]
pub fn models() -> [ModelConfig; 2] {
    [ModelConfig::gpt3_175b(), ModelConfig::llama3_8b()]
}

/// The paper's workload setting.
#[must_use]
pub fn workload() -> WorkloadConfig {
    WorkloadConfig::paper_default()
}
