//! Figures 1a, 1b and 2: classification of named real devices under the
//! October 2022 and October 2023 rules.

use crate::plot::{ascii_scatter, PlotPoint};
use crate::util::{banner, write_csv};
use acs_devices::fig1_devices;
use acs_policy::thresholds::{min_area_nac_dc, min_area_unregulated_dc};
use acs_policy::{Acr2022, Acr2023};
use std::error::Error;

/// Figure 1a: TPP vs device bandwidth under the October 2022 rule.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run_1a() -> Result<(), Box<dyn Error>> {
    banner("Figure 1a: device classification, October 2022 rule");
    let rule = Acr2022::published();
    let mut rows = Vec::new();
    println!("{:<14} {:>8} {:>12} {:>18}", "device", "TPP", "devBW GB/s", "classification");
    for r in fig1_devices() {
        let class = rule.classify(&r.to_metrics());
        println!("{:<14} {:>8.0} {:>12.1} {:>18}", r.name, r.tpp, r.device_bw_gb_s, class.to_string());
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.tpp),
            format!("{:.1}", r.device_bw_gb_s),
            class.to_string(),
        ]);
    }
    write_csv("fig1a.csv", &["device", "tpp", "device_bw_gb_s", "classification"], &rows)
}

/// Figure 1b: TPP vs performance density under the October 2023 rule.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run_1b() -> Result<(), Box<dyn Error>> {
    banner("Figure 1b: device classification, October 2023 rule");
    let rule = Acr2023::published();
    let mut rows = Vec::new();
    println!("{:<14} {:>8} {:>8} {:>18}", "device", "TPP", "PD", "classification");
    for r in fig1_devices() {
        let m = r.to_metrics();
        let pd = m.performance_density().map_or(0.0, |p| p.0);
        let class = rule.classify(&m);
        println!("{:<14} {:>8.0} {:>8.2} {:>18}", r.name, r.tpp, pd, class.to_string());
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.tpp),
            format!("{:.2}", pd),
            class.to_string(),
        ]);
    }
    write_csv("fig1b.csv", &["device", "tpp", "perf_density", "classification"], &rows)
}

/// Figure 2: die area vs TPP — devices can escape the rule by growing
/// their dies. Emits both the device scatter and the area-floor curves.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run_fig2() -> Result<(), Box<dyn Error>> {
    banner("Figure 2: die area vs TPP, October 2023 rule");
    let rule = Acr2023::published();
    let mut rows = Vec::new();
    println!("{:<14} {:>8} {:>10} {:>18}", "device", "TPP", "area mm2", "classification");
    for r in fig1_devices() {
        let class = rule.classify(&r.to_metrics());
        println!(
            "{:<14} {:>8.0} {:>10.1} {:>18}",
            r.name, r.tpp, r.die_area_mm2, class.to_string()
        );
        rows.push(vec![
            r.name.to_string(),
            format!("{:.0}", r.tpp),
            format!("{:.1}", r.die_area_mm2),
            class.to_string(),
        ]);
    }
    write_csv("fig2_devices.csv", &["device", "tpp", "die_area_mm2", "classification"], &rows)?;

    // Quick terminal look (L = license, E = NAC eligible, n = unregulated).
    let points: Vec<PlotPoint> = fig1_devices()
        .iter()
        .map(|r| {
            let marker = match rule.classify(&r.to_metrics()) {
                acs_policy::Classification::LicenseRequired => 'L',
                acs_policy::Classification::NacEligible => 'E',
                acs_policy::Classification::NotApplicable => 'n',
            };
            PlotPoint { x: r.die_area_mm2, y: r.tpp.min(8000.0), marker }
        })
        .collect();
    println!("\n{}", ascii_scatter(&points, 64, 14, "die area mm2", "TPP (clipped at 8000)"));

    // The boundary curves: min die area to escape / to be NAC-eligible.
    let mut curve = Vec::new();
    let mut tpp = 200.0;
    while tpp < 4800.0 {
        curve.push(vec![
            format!("{tpp:.0}"),
            format!("{:.1}", min_area_unregulated_dc(&rule, tpp)),
            format!("{:.1}", min_area_nac_dc(&rule, tpp)),
        ]);
        tpp += 100.0;
    }
    write_csv(
        "fig2_area_floors.csv",
        &["tpp", "min_area_unregulated_mm2", "min_area_nac_mm2"],
        &curve,
    )?;
    println!("Paper anchor: 2399 TPP needs > {:.0} mm2 to escape;", min_area_unregulated_dc(&rule, 2399.0));
    println!("              4799 TPP needs > {:.0} mm2 (multi-chip only).", min_area_unregulated_dc(&rule, 4799.0));
    Ok(())
}
