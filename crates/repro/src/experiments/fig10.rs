//! Figure 10 (§5.2): architecture-based (memory capacity/bandwidth)
//! classification over the 65-GPU database.

use crate::util::{banner, write_csv};
use acs_core::{architectural_consistency, ArchClassifier};
use acs_devices::GpuDatabase;
use std::error::Error;

/// Run the memory-architecture classification study.
///
/// # Errors
///
/// Propagates result-file I/O failures.
pub fn run() -> Result<(), Box<dyn Error>> {
    banner("Figure 10: memory-architecture device classification (65 GPUs)");
    let db = GpuDatabase::curated_65();
    let classifier = ArchClassifier::paper();
    println!(
        "rule: data center iff memory > {} GiB or bandwidth > {} GB/s",
        classifier.min_capacity_gib, classifier.min_bandwidth_gb_s
    );
    let report = architectural_consistency(&db, &classifier);
    println!("consistent data center:     {:>3}", report.consistent_dc.len());
    println!("false data center:          {:>3}  {:?}", report.false_dc.len(), report.false_dc);
    println!("consistent non-data center: {:>3}", report.consistent_ndc.len());
    println!("false non-data center:      {:>3}  {:?}", report.false_ndc.len(), report.false_ndc);
    println!("paper: no false non-data center, two false data center (L2, L4)");

    let category = |name: &str| -> &'static str {
        if report.false_dc.iter().any(|n| n == name) {
            "false_dc"
        } else if report.false_ndc.iter().any(|n| n == name) {
            "false_ndc"
        } else if report.consistent_dc.iter().any(|n| n == name) {
            "consistent_dc"
        } else {
            "consistent_ndc"
        }
    };
    let rows: Vec<Vec<String>> = db
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.market.to_string(),
                format!("{:.0}", r.mem_gib),
                format!("{:.0}", r.mem_bw_gb_s),
                category(&r.name).to_owned(),
            ]
        })
        .collect();
    write_csv(
        "fig10.csv",
        &["device", "market", "mem_gib", "mem_bw_gb_s", "category"],
        &rows,
    )
}
