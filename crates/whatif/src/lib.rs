//! Policy what-if engine: screen alternative export-control regimes —
//! singly or as whole rule grids — against the curated device DB and a
//! priced synthetic design fleet, producing per-variant classification
//! deltas, performance-indicator shifts, and externality accounting.
//!
//! This is the paper's §5 "architecture-first policy design" loop as a
//! subsystem: a [`RuleSpec`] parameterizes every threshold of the
//! published 2022/2023/2024 generations (plus the hypothetical
//! memory-bandwidth rule of `acs_policy::MemBwRule`); a [`RuleGrid`]
//! sweeps those thresholds like any other lattice axis; the
//! [`WhatIfEngine`] screens each variant and emits one canonical-JSON
//! record per variant through a caller-supplied sink — which is how
//! acs-serve streams `/v1/whatif` responses over chunked
//! transfer-encoding.
//!
//! The fleet is priced by the caller (through the factored `DseRunner`
//! path, whose leg tables persist across requests), so a whole rule
//! grid re-screens the fleet at classification cost, not simulation
//! cost.
//!
//! # Example
//!
//! ```
//! use acs_whatif::{RuleGrid, WhatIfEngine};
//!
//! let engine = WhatIfEngine::paper_default();
//! let (summary, records) = engine.run(&RuleGrid::baseline(), &[]).unwrap();
//! assert_eq!(summary.variants, 1);
//! assert_eq!(summary.devices, 65);
//! // The baseline regime flips nothing relative to itself.
//! let devices = records[0].require("devices").unwrap();
//! assert!(devices.require("newly_restricted").unwrap().as_array().unwrap().is_empty());
//! ```

pub mod engine;
pub mod grid;
pub mod ledger;
pub mod rules;

pub use engine::{WhatIfConfig, WhatIfEngine, WhatIfSummary};
pub use grid::{RuleGrid, WhatIfRequest, AXES, MAX_RULE_VARIANTS};
pub use ledger::{ClassificationLedger, LedgerCounts, LedgerDelta};
pub use rules::RuleSpec;
