//! Rule grids: axis arrays over the regime thresholds, expanded in
//! deterministic row-major order — the same shape discipline as the
//! `/v1/screen` architecture grids.

use crate::rules::RuleSpec;
use acs_errors::json::Value;
use acs_errors::AcsError;

/// Hard ceiling on rule variants per request (mirrors the `/v1/screen`
/// grid-point ceiling).
pub const MAX_RULE_VARIANTS: usize = 4096;

/// The grid axis names, in expansion order (first axis slowest, last
/// axis fastest — row-major, like the sweep lattice).
pub const AXES: [&str; 11] = [
    "tpp_threshold_2022",
    "device_bw_threshold_2022",
    "tpp_license",
    "tpp_floor",
    "tpp_nac",
    "pd_license",
    "pd_nac_high",
    "pd_nac_low",
    "mem_bw_license",
    "hbm_control_density",
    "hbm_exception_density",
];

/// A grid of rule regimes: one value list per threshold. The cartesian
/// product of the lists — capped at [`MAX_RULE_VARIANTS`] — is the set
/// of [`RuleSpec`] variants screened by one request.
///
/// A `mem_bw_license` value of `0` is the "not enacted" sentinel for the
/// hypothetical memory-bandwidth rule (the published baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleGrid {
    /// October 2022 TPP thresholds.
    pub tpp_threshold_2022: Vec<f64>,
    /// October 2022 device-bandwidth thresholds in GB/s.
    pub device_bw_threshold_2022: Vec<f64>,
    /// October 2023 unconditional-licence TPP thresholds.
    pub tpp_license: Vec<f64>,
    /// October 2023 density-clause TPP floors.
    pub tpp_floor: Vec<f64>,
    /// October 2023 NAC TPP floors.
    pub tpp_nac: Vec<f64>,
    /// October 2023 licence PD thresholds.
    pub pd_license: Vec<f64>,
    /// October 2023 second-NAC-clause PD floors.
    pub pd_nac_high: Vec<f64>,
    /// October 2023 first-NAC-clause PD floors.
    pub pd_nac_low: Vec<f64>,
    /// Hypothetical memory-bandwidth licence thresholds in GB/s (0 = off).
    pub mem_bw_license: Vec<f64>,
    /// December 2024 HBM control densities in GB/s/mm².
    pub hbm_control_density: Vec<f64>,
    /// December 2024 HBM exception densities in GB/s/mm².
    pub hbm_exception_density: Vec<f64>,
}

impl RuleGrid {
    /// The single-variant grid holding the published baseline regime.
    #[must_use]
    pub fn baseline() -> Self {
        let b = RuleSpec::baseline();
        RuleGrid {
            tpp_threshold_2022: vec![b.acr_2022.tpp_threshold],
            device_bw_threshold_2022: vec![b.acr_2022.device_bw_threshold_gb_s],
            tpp_license: vec![b.acr_2023.tpp_license],
            tpp_floor: vec![b.acr_2023.tpp_floor],
            tpp_nac: vec![b.acr_2023.tpp_nac],
            pd_license: vec![b.acr_2023.pd_license],
            pd_nac_high: vec![b.acr_2023.pd_nac_high],
            pd_nac_low: vec![b.acr_2023.pd_nac_low],
            mem_bw_license: vec![0.0],
            hbm_control_density: vec![b.hbm.control_density],
            hbm_exception_density: vec![b.hbm.exception_density],
        }
    }

    fn axes(&self) -> [&[f64]; 11] {
        [
            &self.tpp_threshold_2022,
            &self.device_bw_threshold_2022,
            &self.tpp_license,
            &self.tpp_floor,
            &self.tpp_nac,
            &self.pd_license,
            &self.pd_nac_high,
            &self.pd_nac_low,
            &self.mem_bw_license,
            &self.hbm_control_density,
            &self.hbm_exception_density,
        ]
    }

    fn axis_mut(&mut self, name: &str) -> Option<&mut Vec<f64>> {
        match name {
            "tpp_threshold_2022" => Some(&mut self.tpp_threshold_2022),
            "device_bw_threshold_2022" => Some(&mut self.device_bw_threshold_2022),
            "tpp_license" => Some(&mut self.tpp_license),
            "tpp_floor" => Some(&mut self.tpp_floor),
            "tpp_nac" => Some(&mut self.tpp_nac),
            "pd_license" => Some(&mut self.pd_license),
            "pd_nac_high" => Some(&mut self.pd_nac_high),
            "pd_nac_low" => Some(&mut self.pd_nac_low),
            "mem_bw_license" => Some(&mut self.mem_bw_license),
            "hbm_control_density" => Some(&mut self.hbm_control_density),
            "hbm_exception_density" => Some(&mut self.hbm_exception_density),
            _ => None,
        }
    }

    /// Number of rule variants the grid expands to.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.axes().iter().map(|a| a.len()).product()
    }

    /// Expand the grid into its rule variants, row-major over the
    /// [`AXES`] order (last axis fastest). Deterministic; the per-variant
    /// record stream and the golden corpus rely on this order.
    #[must_use]
    pub fn variants(&self) -> Vec<RuleSpec> {
        let axes = self.axes();
        let total = self.cardinality();
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            let mut rem = i;
            let mut pick = [0.0_f64; 11];
            for (slot, axis) in pick.iter_mut().zip(axes.iter()).rev() {
                *slot = axis[rem % axis.len()];
                rem /= axis.len();
            }
            out.push(RuleSpec::from_axis_values(&pick));
        }
        out
    }

    /// Parse `{"axis": [v, ...], ...}` — every member must be a known
    /// axis name mapped to a non-empty array of thresholds; missing axes
    /// default to their single published value.
    ///
    /// # Errors
    ///
    /// [`AcsError::InvalidConfig`] on unknown members, empty or
    /// non-numeric arrays, out-of-domain thresholds, or a cartesian
    /// product beyond [`MAX_RULE_VARIANTS`].
    pub fn from_axes_json(v: &Value) -> Result<Self, AcsError> {
        let Value::Object(members) = v else {
            return Err(bad("grid", "must be a JSON object of axis arrays"));
        };
        let mut grid = Self::baseline();
        for (name, value) in members {
            let Some(axis) = grid.axis_mut(name) else {
                return Err(bad("grid", &format!("unknown axis {name:?}")));
            };
            let Some(items) = value.as_array() else {
                return Err(bad(name, "must be an array of numbers"));
            };
            if items.is_empty() {
                return Err(bad(name, "must not be empty"));
            }
            let mut parsed = Vec::with_capacity(items.len());
            for item in items {
                parsed.push(threshold(name, item)?);
            }
            *axis = parsed;
        }
        grid.check_cardinality()?;
        Ok(grid)
    }

    /// Parse `{"axis": v, ...}` — the single-variant request shape; each
    /// known axis maps to one scalar threshold.
    ///
    /// # Errors
    ///
    /// [`AcsError::InvalidConfig`] on unknown members or out-of-domain
    /// thresholds.
    pub fn from_rule_json(v: &Value) -> Result<Self, AcsError> {
        let Value::Object(members) = v else {
            return Err(bad("rule", "must be a JSON object of thresholds"));
        };
        let mut grid = Self::baseline();
        for (name, value) in members {
            let Some(axis) = grid.axis_mut(name) else {
                return Err(bad("rule", &format!("unknown threshold {name:?}")));
            };
            *axis = vec![threshold(name, value)?];
        }
        Ok(grid)
    }

    /// The grid's strict and loose corner regimes.
    ///
    /// Every device-level rule in `acs_policy` classifies with `>=`
    /// comparisons against its thresholds and a regime takes the
    /// strictest outcome across rules, so classification is monotone in
    /// each threshold: lowering any threshold never lowers a device's
    /// classification. "Lower = stricter" therefore holds on every axis
    /// except `mem_bw_license`, whose `0` sentinel disables the rule
    /// entirely (the loosest setting) — there the strictest corner is
    /// the smallest *positive* value on the axis. Consequently every
    /// variant's classification of a device is sandwiched between the
    /// two corners': `classify(loose) <= classify(v) <= classify(strict)`
    /// for all `v` in the grid. A device the corners agree on is pinned
    /// for the whole grid. The HBM axes ride along unused — they never
    /// reach device-level classification.
    #[must_use]
    pub fn corner_specs(&self) -> (RuleSpec, RuleSpec) {
        let axes = self.axes();
        let mut strict = [0.0_f64; 11];
        let mut loose = [0.0_f64; 11];
        for (i, axis) in axes.iter().enumerate() {
            if i == 8 {
                let min_enacted =
                    axis.iter().copied().filter(|&v| v > 0.0).fold(f64::INFINITY, f64::min);
                strict[i] = if min_enacted.is_finite() { min_enacted } else { 0.0 };
                loose[i] = if axis.contains(&0.0) {
                    0.0
                } else {
                    axis.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                };
            } else {
                strict[i] = axis.iter().copied().fold(f64::INFINITY, f64::min);
                loose[i] = axis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            }
        }
        (RuleSpec::from_axis_values(&strict), RuleSpec::from_axis_values(&loose))
    }

    fn check_cardinality(&self) -> Result<(), AcsError> {
        let n = self.cardinality();
        if n > MAX_RULE_VARIANTS {
            return Err(bad(
                "grid",
                &format!("expands to {n} rule variants (limit {MAX_RULE_VARIANTS})"),
            ));
        }
        Ok(())
    }
}

impl Default for RuleGrid {
    fn default() -> Self {
        Self::baseline()
    }
}

/// A parsed `/v1/whatif` request: the rule grid plus the TPP operating
/// point the synthetic fleet is solved for.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRequest {
    /// Rule variants to screen.
    pub grid: RuleGrid,
    /// TPP target the fleet's core counts are solved against.
    pub tpp_target: f64,
}

impl WhatIfRequest {
    /// Parse a request body: `{"rule": {...}}` for one variant,
    /// `{"grid": {...}}` for a batch, optional `"tpp_target"` (default
    /// 4800). An empty object screens the published baseline.
    ///
    /// # Errors
    ///
    /// [`AcsError::InvalidConfig`] on unknown members, both `rule` and
    /// `grid` present, or an out-of-domain grid / target.
    pub fn from_json(v: &Value) -> Result<Self, AcsError> {
        let Value::Object(members) = v else {
            return Err(bad("body", "must be a JSON object"));
        };
        for (name, _) in members {
            if !matches!(name.as_str(), "rule" | "grid" | "tpp_target") {
                return Err(bad("body", &format!("unknown member {name:?}")));
            }
        }
        let grid = match (v.get("rule"), v.get("grid")) {
            (Some(_), Some(_)) => {
                return Err(bad("body", "give either \"rule\" or \"grid\", not both"));
            }
            (Some(rule), None) => RuleGrid::from_rule_json(rule)?,
            (None, Some(axes)) => RuleGrid::from_axes_json(axes)?,
            (None, None) => RuleGrid::baseline(),
        };
        let tpp_target = match v.get("tpp_target") {
            None => 4800.0,
            Some(t) => {
                let Some(x) = t.as_f64() else {
                    return Err(bad("tpp_target", "must be a number"));
                };
                if !x.is_finite() || !(100.0..=100_000.0).contains(&x) {
                    return Err(bad("tpp_target", "must be in [100, 100000]"));
                }
                x
            }
        };
        Ok(WhatIfRequest { grid, tpp_target })
    }
}

fn bad(field: &str, reason: &str) -> AcsError {
    AcsError::InvalidConfig { field: field.to_owned(), reason: reason.to_owned() }
}

fn threshold(name: &str, v: &Value) -> Result<f64, AcsError> {
    let Some(x) = v.as_f64() else {
        return Err(bad(name, "threshold must be a number"));
    };
    if !x.is_finite() || x < 0.0 || x > 1.0e12 {
        return Err(bad(name, "threshold must be finite, non-negative, and at most 1e12"));
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;

    #[test]
    fn baseline_grid_is_one_published_variant() {
        let grid = RuleGrid::baseline();
        assert_eq!(grid.cardinality(), 1);
        assert_eq!(grid.variants(), vec![RuleSpec::baseline()]);
    }

    #[test]
    fn variants_expand_row_major_last_axis_fastest() {
        let mut grid = RuleGrid::baseline();
        grid.tpp_threshold_2022 = vec![1000.0, 2000.0];
        grid.hbm_exception_density = vec![3.0, 4.0];
        let specs = grid.variants();
        assert_eq!(specs.len(), 4);
        assert_eq!(
            specs.iter().map(|s| (s.acr_2022.tpp_threshold, s.hbm.exception_density)).collect::<Vec<_>>(),
            vec![(1000.0, 3.0), (1000.0, 4.0), (2000.0, 3.0), (2000.0, 4.0)]
        );
    }

    #[test]
    fn request_shapes_parse() {
        let single = parse(r#"{"rule":{"tpp_license":3000}}"#).unwrap();
        let req = WhatIfRequest::from_json(&single).unwrap();
        assert_eq!(req.grid.cardinality(), 1);
        assert_eq!(req.grid.variants()[0].acr_2023.tpp_license, 3000.0);
        assert_eq!(req.tpp_target, 4800.0);

        let batch = parse(r#"{"grid":{"tpp_license":[2400,4800]},"tpp_target":2400}"#).unwrap();
        let req = WhatIfRequest::from_json(&batch).unwrap();
        assert_eq!(req.grid.cardinality(), 2);
        assert_eq!(req.tpp_target, 2400.0);

        let empty = parse("{}").unwrap();
        assert_eq!(WhatIfRequest::from_json(&empty).unwrap().grid, RuleGrid::baseline());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for body in [
            r#"{"grid":{"bogus_axis":[1]}}"#,
            r#"{"grid":{"tpp_license":[]}}"#,
            r#"{"grid":{"tpp_license":[null]}}"#,
            r#"{"grid":{"tpp_license":[1e300,1e300]}}"#,
            r#"{"rule":{"tpp_license":-5}}"#,
            r#"{"rule":{"tpp_license":1},"grid":{"tpp_license":[1]}}"#,
            r#"{"surprise":1}"#,
            r#"{"tpp_target":0}"#,
            r#"[1,2,3]"#,
        ] {
            let v = parse(body).unwrap();
            let err = WhatIfRequest::from_json(&v).unwrap_err();
            assert_eq!(err.kind(), "invalid_config", "{body}");
        }
    }

    #[test]
    fn cartesian_bomb_is_rejected() {
        let mut grid = String::from(r#"{"grid":{"#);
        for (i, axis) in AXES.iter().enumerate() {
            if i > 0 {
                grid.push(',');
            }
            grid.push_str(&format!(r#""{axis}":[1,2,3,4,5]"#));
        }
        grid.push_str("}}");
        let v = parse(&grid).unwrap();
        let err = WhatIfRequest::from_json(&v).unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
    }
}
