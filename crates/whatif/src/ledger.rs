//! Classification ledgers: the per-device outcome of screening a
//! portfolio under one rule regime, plus deltas between regimes.

use crate::rules::RuleSpec;
use acs_errors::hash::canonical_digest;
use acs_errors::json::Value;
use acs_policy::{Classification, DeviceMetrics};

/// Per-class tallies of a ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerCounts {
    /// Devices the regime does not reach.
    pub not_applicable: usize,
    /// Devices eligible for the NAC licence exception.
    pub nac_eligible: usize,
    /// Devices requiring a regular licence.
    pub license_required: usize,
}

impl LedgerCounts {
    /// Devices facing any restriction (NAC or licence).
    #[must_use]
    pub fn restricted(&self) -> usize {
        self.nac_eligible + self.license_required
    }

    /// Total devices tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.not_applicable + self.restricted()
    }
}

/// Devices whose restriction status flipped between two regimes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LedgerDelta {
    /// Unrestricted under the baseline, restricted under the variant.
    pub newly_restricted: Vec<String>,
    /// Restricted under the baseline, unrestricted under the variant.
    pub newly_freed: Vec<String>,
}

/// The classification of every device in a portfolio under one regime,
/// in portfolio order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationLedger {
    /// `(device name, classification)` in screening order.
    pub entries: Vec<(String, Classification)>,
}

impl ClassificationLedger {
    /// Screen a portfolio with an arbitrary classifier (used by the
    /// per-generation breakdowns in `examples/policy_screening.rs`).
    pub fn screen_with<F>(devices: &[DeviceMetrics], classify: F) -> Self
    where
        F: Fn(&DeviceMetrics) -> Classification,
    {
        ClassificationLedger {
            entries: devices.iter().map(|m| (m.name().to_owned(), classify(m))).collect(),
        }
    }

    /// Screen a portfolio under a full rule regime.
    #[must_use]
    pub fn screen(spec: &RuleSpec, devices: &[DeviceMetrics]) -> Self {
        Self::screen_with(devices, |m| spec.classify(m))
    }

    /// Corner pre-screen: classify each device under a grid's strict
    /// and loose corner regimes ([`crate::RuleGrid::corner_specs`]);
    /// where the two agree, the device's classification is pinned for
    /// every regime sandwiched between them, and `Some(class)` records
    /// it. Devices the corners disagree on stay `None` and classify
    /// per-variant.
    #[must_use]
    pub fn corner_pins(
        strict: &RuleSpec,
        loose: &RuleSpec,
        devices: &[DeviceMetrics],
    ) -> Vec<Option<Classification>> {
        devices
            .iter()
            .map(|m| {
                let s = strict.classify(m);
                (s == loose.classify(m)).then_some(s)
            })
            .collect()
    }

    /// Screen a portfolio under one regime, consulting `pins` first:
    /// pinned devices skip the classifier outright. Returns the ledger
    /// — identical, entry for entry, to [`ClassificationLedger::screen`]
    /// when the pins came from a corner sandwich containing `spec` —
    /// plus the number of classify calls skipped. A `pins` slice shorter
    /// than the portfolio just stops pinning early.
    #[must_use]
    pub fn screen_pinned(
        spec: &RuleSpec,
        devices: &[DeviceMetrics],
        pins: &[Option<Classification>],
    ) -> (Self, usize) {
        let mut skipped = 0_usize;
        let entries = devices
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let class = match pins.get(i).copied().flatten() {
                    Some(pinned) => {
                        skipped += 1;
                        pinned
                    }
                    None => spec.classify(m),
                };
                (m.name().to_owned(), class)
            })
            .collect();
        (ClassificationLedger { entries }, skipped)
    }

    /// Per-class tallies.
    #[must_use]
    pub fn counts(&self) -> LedgerCounts {
        let mut c = LedgerCounts::default();
        for (_, class) in &self.entries {
            match class {
                Classification::NotApplicable => c.not_applicable += 1,
                Classification::NacEligible => c.nac_eligible += 1,
                Classification::LicenseRequired => c.license_required += 1,
            }
        }
        c
    }

    /// Look up a device's classification by name.
    #[must_use]
    pub fn classification_of(&self, name: &str) -> Option<Classification> {
        self.entries.iter().find(|(n, _)| n == name).map(|&(_, c)| c)
    }

    /// Names of every restricted device, in ledger order.
    #[must_use]
    pub fn restricted_names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, c)| c.is_restricted())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Restriction-status flips relative to a baseline ledger over the
    /// same portfolio. Devices absent from the baseline are treated as
    /// previously unrestricted.
    #[must_use]
    pub fn delta_from(&self, baseline: &Self) -> LedgerDelta {
        let mut delta = LedgerDelta::default();
        for (i, (name, class)) in self.entries.iter().enumerate() {
            // The two ledgers normally share portfolio order; fall back
            // to a name search so the delta stays correct either way.
            let base = match baseline.entries.get(i) {
                Some((n, c)) if n == name => Some(*c),
                _ => baseline.classification_of(name),
            };
            let was = base.is_some_and(Classification::is_restricted);
            match (was, class.is_restricted()) {
                (false, true) => delta.newly_restricted.push(name.clone()),
                (true, false) => delta.newly_freed.push(name.clone()),
                _ => {}
            }
        }
        delta
    }

    /// Order-sensitive canonical digest of the ledger (the
    /// batch-vs-naive differential compares these).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let rows = self
            .entries
            .iter()
            .map(|(name, class)| {
                Value::Array(vec![
                    Value::String(name.clone()),
                    Value::String(class.to_string()),
                ])
            })
            .collect();
        canonical_digest(&Value::Array(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_policy::MarketSegment;

    fn portfolio() -> Vec<DeviceMetrics> {
        vec![
            // Over every TPP line.
            DeviceMetrics::new("big", 6000.0, 900.0, 800.0, true, MarketSegment::DataCenter),
            // Under all published thresholds.
            DeviceMetrics::new("small", 300.0, 100.0, 200.0, true, MarketSegment::NonDataCenter),
        ]
    }

    #[test]
    fn counts_and_restricted_names() {
        let ledger = ClassificationLedger::screen(&RuleSpec::baseline(), &portfolio());
        let counts = ledger.counts();
        assert_eq!(counts.license_required, 1);
        assert_eq!(counts.not_applicable, 1);
        assert_eq!(counts.total(), 2);
        assert_eq!(ledger.restricted_names(), vec!["big"]);
    }

    #[test]
    fn delta_tracks_flips_both_ways() {
        let devices = portfolio();
        let base = ClassificationLedger::screen(&RuleSpec::baseline(), &devices);
        // A 100-TPP blunt rule catches everything.
        let mut strict = RuleSpec::baseline();
        strict.acr_2022.tpp_threshold = 100.0;
        strict.acr_2022.device_bw_threshold_gb_s = 0.0;
        let delta = ClassificationLedger::screen(&strict, &devices).delta_from(&base);
        assert_eq!(delta.newly_restricted, vec!["small"]);
        assert!(delta.newly_freed.is_empty());
        // And an unreachable rule frees everything.
        let mut lax = RuleSpec::baseline();
        lax.acr_2022.tpp_threshold = f64::MAX;
        lax.acr_2023.tpp_license = f64::MAX;
        lax.acr_2023.tpp_floor = f64::MAX;
        lax.acr_2023.tpp_nac = f64::MAX;
        let delta = ClassificationLedger::screen(&lax, &devices).delta_from(&base);
        assert_eq!(delta.newly_freed, vec!["big"]);
        assert!(delta.newly_restricted.is_empty());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let devices = portfolio();
        let ledger = ClassificationLedger::screen(&RuleSpec::baseline(), &devices);
        let mut reversed = ledger.clone();
        reversed.entries.reverse();
        assert_ne!(ledger.digest(), reversed.digest());
        assert_eq!(ledger.digest(), ledger.clone().digest());
    }
}
