//! Parameterized rule regimes: every threshold of the published
//! control generations plus the hypothetical variants, adjustable
//! independently so a grid of regimes can be screened in one pass.

use acs_errors::json::{object, Value};
use acs_errors::AcsError;
use acs_policy::{
    Acr2022, Acr2023, Classification, DeviceMetrics, HbmClassification, HbmPackage, HbmRule2024,
    MemBwRule,
};

/// One complete, parameterized export-control regime.
///
/// A device's classification under the regime is the *strictest* outcome
/// of the device-level rules it holds: the October 2022 TPP+bandwidth
/// rule, the October 2023 performance-density rule, and (when enabled)
/// the hypothetical memory-bandwidth rule. The December 2024 HBM rule
/// rides along for package-level screening ([`RuleSpec::classify_hbm`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleSpec {
    /// October 2022 TPP + device-bandwidth thresholds.
    pub acr_2022: Acr2022,
    /// October 2023 performance-density tiers.
    pub acr_2023: Acr2023,
    /// Hypothetical device memory-bandwidth control (`None` = not enacted).
    pub mem_bw: Option<MemBwRule>,
    /// December 2024 HBM bandwidth-density rule.
    pub hbm: HbmRule2024,
}

impl RuleSpec {
    /// The published baseline: the three enacted generations at their
    /// regulation values, hypothetical rules off. Classification deltas
    /// are reported against this regime.
    #[must_use]
    pub fn baseline() -> Self {
        RuleSpec {
            acr_2022: Acr2022::published(),
            acr_2023: Acr2023::published(),
            mem_bw: None,
            hbm: HbmRule2024::published(),
        }
    }

    /// Strictest classification of a device under the regime's
    /// device-level rules.
    #[must_use]
    pub fn classify(&self, metrics: &DeviceMetrics) -> Classification {
        let mut c = self.acr_2022.classify(metrics).max(self.acr_2023.classify(metrics));
        if let Some(mem_bw) = self.mem_bw {
            c = c.max(mem_bw.classify(metrics));
        }
        c
    }

    /// Package-level HBM classification under the regime's HBM rule.
    #[must_use]
    pub fn classify_hbm(&self, package: &HbmPackage) -> HbmClassification {
        self.hbm.classify(package)
    }

    /// Canonical-JSON emission of every threshold (the member names are
    /// the grid axis names of [`crate::RuleGrid`]; a `mem_bw_license` of
    /// `0` means the memory-bandwidth rule is not enacted).
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::NonFinite`]-rooted [`AcsError::Json`] if any
    /// threshold is non-finite (impossible for grid-parsed specs).
    pub fn to_json_value(&self) -> Result<Value, AcsError> {
        Ok(object(vec![
            ("tpp_threshold_2022", Value::from_f64(self.acr_2022.tpp_threshold)?),
            (
                "device_bw_threshold_2022",
                Value::from_f64(self.acr_2022.device_bw_threshold_gb_s)?,
            ),
            ("tpp_license", Value::from_f64(self.acr_2023.tpp_license)?),
            ("tpp_floor", Value::from_f64(self.acr_2023.tpp_floor)?),
            ("tpp_nac", Value::from_f64(self.acr_2023.tpp_nac)?),
            ("pd_license", Value::from_f64(self.acr_2023.pd_license)?),
            ("pd_nac_high", Value::from_f64(self.acr_2023.pd_nac_high)?),
            ("pd_nac_low", Value::from_f64(self.acr_2023.pd_nac_low)?),
            (
                "mem_bw_license",
                Value::from_f64(self.mem_bw.map_or(0.0, |m| m.license_threshold_gb_s))?,
            ),
            ("hbm_control_density", Value::from_f64(self.hbm.control_density)?),
            ("hbm_exception_density", Value::from_f64(self.hbm.exception_density)?),
        ]))
    }

    /// Rebuild a spec from the 11 axis values in [`crate::grid::AXES`]
    /// order (`mem_bw_license == 0` disables the memory-bandwidth rule).
    #[must_use]
    pub(crate) fn from_axis_values(v: &[f64; 11]) -> Self {
        RuleSpec {
            acr_2022: Acr2022 { tpp_threshold: v[0], device_bw_threshold_gb_s: v[1] },
            acr_2023: Acr2023 {
                tpp_license: v[2],
                tpp_floor: v[3],
                tpp_nac: v[4],
                pd_license: v[5],
                pd_nac_high: v[6],
                pd_nac_low: v[7],
            },
            mem_bw: if v[8] > 0.0 { Some(MemBwRule { license_threshold_gb_s: v[8] }) } else { None },
            hbm: HbmRule2024 { control_density: v[9], exception_density: v[10] },
        }
    }
}

impl Default for RuleSpec {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_policy::MarketSegment;

    fn a800() -> DeviceMetrics {
        DeviceMetrics::new("A800", 4992.0, 400.0, 826.0, true, MarketSegment::DataCenter)
            .with_memory(80.0, 2039.0)
    }

    #[test]
    fn baseline_takes_the_strictest_published_outcome() {
        // The A800 escapes 2022 (bw 400 < 600) but 2023 catches it.
        let spec = RuleSpec::baseline();
        assert_eq!(spec.classify(&a800()), Classification::LicenseRequired);
        assert_eq!(
            Acr2022::published().classify(&a800()),
            Classification::NotApplicable
        );
    }

    #[test]
    fn mem_bw_rule_extends_the_regime() {
        // Relax the published rules to nothing; only the hypothetical
        // memory-bandwidth rule is left, and the A800's 2 TB/s HBM trips it.
        let mut spec = RuleSpec::baseline();
        spec.acr_2022.tpp_threshold = f64::MAX;
        spec.acr_2023.tpp_license = f64::MAX;
        spec.acr_2023.tpp_floor = f64::MAX;
        spec.acr_2023.tpp_nac = f64::MAX;
        assert_eq!(spec.classify(&a800()), Classification::NotApplicable);
        spec.mem_bw = Some(MemBwRule { license_threshold_gb_s: 800.0 });
        assert_eq!(spec.classify(&a800()), Classification::LicenseRequired);
    }

    #[test]
    fn json_round_trips_through_axis_values() {
        let spec = RuleSpec::baseline();
        let v = spec.to_json_value().unwrap();
        assert_eq!(v.require_f64("tpp_threshold_2022").unwrap(), 4800.0);
        assert_eq!(v.require_f64("mem_bw_license").unwrap(), 0.0);
        let rebuilt = RuleSpec::from_axis_values(&[
            4800.0, 600.0, 4800.0, 1600.0, 2400.0, 5.92, 3.2, 1.6, 0.0, 2.0, 3.3,
        ]);
        assert_eq!(rebuilt, spec);
        assert!(rebuilt.mem_bw.is_none());
    }
}
