//! The what-if engine: screen a device portfolio and a priced design
//! fleet against every variant of a rule grid, emitting one
//! canonical-JSON record per variant as it completes.

use crate::grid::RuleGrid;
use crate::ledger::{ClassificationLedger, LedgerCounts};
use crate::rules::RuleSpec;
use acs_core::{deadweight_loss, indicator_report, ComplianceOverhead, FixedParam, LatencyMetric};
use acs_devices::GpuDatabase;
use acs_dse::{Distribution, EvaluatedDesign};
use acs_errors::json::{object, Value};
use acs_errors::AcsError;
use acs_policy::{DeviceMetrics, HbmPackage, MarketSegment};
use acs_telemetry::{GlobalCounter, GlobalHistogram};
use std::collections::HashMap;

static VARIANTS_SCREENED: GlobalCounter = GlobalCounter::new("whatif.variants");
static VARIANT_US: GlobalHistogram = GlobalHistogram::new("whatif.variant_us");
static PINNED_ENTRIES: GlobalCounter = GlobalCounter::new("whatif.prune.pinned_entries");
static CLASSIFY_SKIPPED: GlobalCounter = GlobalCounter::new("whatif.prune.classify_skipped");
static DEVICE_MEMO_HITS: GlobalCounter = GlobalCounter::new("whatif.prune.device_memo_hits");
static FLEET_MEMO_HITS: GlobalCounter = GlobalCounter::new("whatif.prune.fleet_memo_hits");

/// Per-run memo of the two expensive record blocks, each a pure
/// function of its ledger. Ledger *names* are fixed for the run
/// (portfolio order never changes), so the classification ordinals
/// alone identify a ledger — no digesting, no collision risk.
#[derive(Debug, Default)]
struct VariantMemo {
    /// `devices` block (counts + baseline delta) by device-ledger key.
    devices: HashMap<Vec<u8>, Value>,
    /// `(fleet, externality)` blocks by fleet-ledger key.
    fleet: HashMap<Vec<u8>, (Value, Value)>,
}

fn class_key(ledger: &ClassificationLedger) -> Vec<u8> {
    ledger.entries.iter().map(|&(_, c)| c as u8).collect()
}

/// Reference economics and reporting knobs for the externality block of
/// each record.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfConfig {
    /// Annual accelerator market quantity (units) for deadweight loss.
    pub market_quantity: f64,
    /// Market-clearing unit price in USD.
    pub market_price_usd: f64,
    /// Demand elasticity (negative).
    pub demand_elasticity: f64,
    /// Supply elasticity (positive).
    pub supply_elasticity: f64,
    /// Fixed-parameter columns for the indicator-distribution block.
    pub indicator_columns: Vec<FixedParam>,
}

impl WhatIfConfig {
    /// The paper's §5 reference economy (the `what_if_rules` values) and
    /// the restricting-value indicator columns of the synthetic fleet.
    #[must_use]
    pub fn paper_default() -> Self {
        WhatIfConfig {
            market_quantity: 1.0e6,
            market_price_usd: 20_000.0,
            demand_elasticity: -0.8,
            supply_elasticity: 1.2,
            indicator_columns: vec![
                FixedParam::Lanes(8),
                FixedParam::L1Kib(64),
                FixedParam::HbmTbS(0.8),
                FixedParam::DeviceBwGbS(400.0),
            ],
        }
    }
}

impl Default for WhatIfConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Totals of one engine run (the stream's trailer metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIfSummary {
    /// Rule variants screened (records emitted).
    pub variants: usize,
    /// Devices in the screened portfolio.
    pub devices: usize,
    /// Designs in the screened fleet.
    pub fleet_designs: usize,
}

/// The engine: a device portfolio, the reference HBM packages, and the
/// externality economics, reusable across requests. The priced fleet is
/// an argument to [`WhatIfEngine::run_streaming`] so callers keep
/// pricing (and its leg-table reuse) outside the screening loop.
#[derive(Debug, Clone)]
pub struct WhatIfEngine {
    devices: Vec<DeviceMetrics>,
    hbm_packages: Vec<HbmPackage>,
    config: WhatIfConfig,
}

impl WhatIfEngine {
    /// Engine over an explicit portfolio.
    #[must_use]
    pub fn new(devices: Vec<DeviceMetrics>, hbm_packages: Vec<HbmPackage>, config: WhatIfConfig) -> Self {
        WhatIfEngine { devices, hbm_packages, config }
    }

    /// Engine over the curated 65-device DB, the reference HBM stacks,
    /// and the paper's reference economics.
    #[must_use]
    pub fn paper_default() -> Self {
        let db = GpuDatabase::curated_65();
        let devices = db.iter().map(|r| r.to_metrics()).collect();
        Self::new(devices, Self::reference_hbm_packages(), WhatIfConfig::paper_default())
    }

    /// The four commodity HBM stacks of the December 2024 analysis
    /// (`policy_screening`'s Figure-13 table).
    #[must_use]
    pub fn reference_hbm_packages() -> Vec<HbmPackage> {
        vec![
            HbmPackage::new("HBM2e stack (460 GB/s, 100 mm2)", 460.0, 100.0),
            HbmPackage::new("HBM3 stack (820 GB/s, 110 mm2)", 820.0, 110.0),
            HbmPackage::new("derated export stack (210 GB/s, 110 mm2)", 210.0, 110.0),
            HbmPackage::new("exception-band stack (320 GB/s, 110 mm2)", 320.0, 110.0),
        ]
    }

    /// The screened device portfolio.
    #[must_use]
    pub fn devices(&self) -> &[DeviceMetrics] {
        &self.devices
    }

    /// Datasheet metrics of a priced design, as the rules read them: its
    /// swept device bandwidth, its HBM bandwidth as memory bandwidth
    /// (nominal 80 GiB capacity), marketed as a data-center part.
    #[must_use]
    pub fn fleet_metrics(design: &EvaluatedDesign) -> DeviceMetrics {
        DeviceMetrics::new(
            design.name.clone(),
            design.tpp,
            design.params.device_bw_gb_s,
            design.die_area_mm2,
            true,
            MarketSegment::DataCenter,
        )
        .with_memory(80.0, design.params.hbm_tb_s * 1000.0)
    }

    /// Screen every variant of `grid` against the portfolio and `fleet`,
    /// calling `sink(variant_index, record)` with one canonical-JSON
    /// record per variant, in grid order, as each completes. A sink
    /// error aborts the run and is returned as-is (this is how a
    /// streaming transport propagates a dead connection).
    ///
    /// Grid screening prunes on ledger monotonicity: a corner pre-screen
    /// under the grid's strict and loose regimes pins every device the
    /// corners agree on (its classification cannot vary inside the
    /// grid), so per-variant classification touches only the contested
    /// devices, and the expensive record blocks — the fleet statistics
    /// and the device deltas — are memoized by the resulting ledgers.
    /// Records are byte-identical to an unpruned screen; the
    /// `whatif.prune.*` counters report how much work the pruning
    /// avoided.
    ///
    /// # Errors
    ///
    /// Sink errors, or [`AcsError::Json`] if a record fails to emit.
    pub fn run_streaming<F>(
        &self,
        grid: &RuleGrid,
        fleet: &[EvaluatedDesign],
        mut sink: F,
    ) -> Result<WhatIfSummary, AcsError>
    where
        F: FnMut(usize, &Value) -> Result<(), AcsError>,
    {
        let baseline = ClassificationLedger::screen(&RuleSpec::baseline(), &self.devices);
        let fleet_metrics: Vec<DeviceMetrics> = fleet.iter().map(Self::fleet_metrics).collect();
        let (strict, loose) = grid.corner_specs();
        let device_pins = ClassificationLedger::corner_pins(&strict, &loose, &self.devices);
        let fleet_pins = ClassificationLedger::corner_pins(&strict, &loose, &fleet_metrics);
        let pinned =
            device_pins.iter().chain(&fleet_pins).filter(|p| p.is_some()).count();
        PINNED_ENTRIES.add(pinned as u64);
        let mut memo = VariantMemo::default();
        let specs = grid.variants();
        for (index, spec) in specs.iter().enumerate() {
            let started = std::time::Instant::now();
            let record = self.variant_record(
                index,
                spec,
                &baseline,
                fleet,
                &fleet_metrics,
                &device_pins,
                &fleet_pins,
                &mut memo,
            )?;
            VARIANT_US.record(started.elapsed().as_secs_f64() * 1e6);
            sink(index, &record)?;
            VARIANTS_SCREENED.add(1);
        }
        Ok(WhatIfSummary {
            variants: specs.len(),
            devices: self.devices.len(),
            fleet_designs: fleet.len(),
        })
    }

    /// Convenience wrapper collecting every record in memory.
    ///
    /// # Errors
    ///
    /// As [`WhatIfEngine::run_streaming`].
    pub fn run(
        &self,
        grid: &RuleGrid,
        fleet: &[EvaluatedDesign],
    ) -> Result<(WhatIfSummary, Vec<Value>), AcsError> {
        let mut records = Vec::with_capacity(grid.cardinality());
        let summary = self.run_streaming(grid, fleet, |_, record| {
            records.push(record.clone());
            Ok(())
        })?;
        Ok((summary, records))
    }

    #[allow(clippy::too_many_arguments)]
    fn variant_record(
        &self,
        index: usize,
        spec: &RuleSpec,
        baseline: &ClassificationLedger,
        fleet: &[EvaluatedDesign],
        fleet_metrics: &[DeviceMetrics],
        device_pins: &[Option<acs_policy::Classification>],
        fleet_pins: &[Option<acs_policy::Classification>],
        memo: &mut VariantMemo,
    ) -> Result<Value, AcsError> {
        let (ledger, skipped_devices) =
            ClassificationLedger::screen_pinned(spec, &self.devices, device_pins);
        let (fleet_ledger, skipped_fleet) =
            ClassificationLedger::screen_pinned(spec, fleet_metrics, fleet_pins);
        CLASSIFY_SKIPPED.add((skipped_devices + skipped_fleet) as u64);

        let devices_block = match memo.devices.get(&class_key(&ledger)) {
            Some(block) => {
                DEVICE_MEMO_HITS.add(1);
                block.clone()
            }
            None => {
                let delta = ledger.delta_from(baseline);
                let block = object(vec![
                    ("counts", counts_value(&ledger.counts())),
                    ("newly_restricted", names_value(&delta.newly_restricted)),
                    ("newly_freed", names_value(&delta.newly_freed)),
                ]);
                memo.devices.insert(class_key(&ledger), block.clone());
                block
            }
        };

        let (fleet_block, externality_block) = match memo.fleet.get(&class_key(&fleet_ledger)) {
            Some((f, e)) => {
                FLEET_MEMO_HITS.add(1);
                (f.clone(), e.clone())
            }
            None => {
                let blocks = self.fleet_blocks(fleet, &fleet_ledger);
                memo.fleet.insert(class_key(&fleet_ledger), blocks.clone());
                blocks
            }
        };

        let hbm_rows = self
            .hbm_packages
            .iter()
            .map(|p| {
                object(vec![
                    ("name", Value::String(p.name.clone())),
                    ("density_gb_s_mm2", num(p.bandwidth_density())),
                    ("classification", Value::String(spec.classify_hbm(p).to_string())),
                ])
            })
            .collect();

        Ok(object(vec![
            ("variant", num(to_f64(index))),
            ("rule", spec.to_json_value()?),
            ("devices", devices_block),
            ("fleet", fleet_block),
            ("hbm", Value::Array(hbm_rows)),
            ("externality", externality_block),
        ]))
    }

    /// The variant-independent-given-its-ledger pair of record blocks:
    /// the fleet statistics and the externality economics. Everything
    /// here is a pure function of which fleet designs the ledger
    /// restricts, which is what makes the blocks memoizable.
    fn fleet_blocks(
        &self,
        fleet: &[EvaluatedDesign],
        fleet_ledger: &ClassificationLedger,
    ) -> (Value, Value) {
        let fleet_counts = fleet_ledger.counts();

        let mut restricted: Vec<&EvaluatedDesign> = Vec::new();
        let mut unrestricted: Vec<&EvaluatedDesign> = Vec::new();
        for (design, (_, class)) in fleet.iter().zip(&fleet_ledger.entries) {
            if class.is_restricted() {
                restricted.push(design);
            } else {
                unrestricted.push(design);
            }
        }
        let restricted_share = if fleet.is_empty() {
            0.0
        } else {
            restricted.len() as f64 / fleet.len() as f64
        };

        let unrestricted_owned: Vec<EvaluatedDesign> =
            unrestricted.iter().map(|d| (*d).clone()).collect();
        let indicators = indicator_report(
            &unrestricted_owned,
            LatencyMetric::Tbt,
            &self.config.indicator_columns,
        );
        let tbt_dist = Distribution::from_samples(
            &unrestricted.iter().map(|d| d.tbt_s).collect::<Vec<_>>(),
        );
        let cost_dist = Distribution::from_samples(
            &unrestricted.iter().map(|d| d.good_die_cost_usd).collect::<Vec<_>>(),
        );

        let dwl = deadweight_loss(
            self.config.market_quantity,
            self.config.market_price_usd,
            restricted_share,
            self.config.demand_elasticity,
            self.config.supply_elasticity,
        );
        let best = |designs: &[&EvaluatedDesign]| -> Option<EvaluatedDesign> {
            designs
                .iter()
                .min_by(|a, b| a.tbt_s.total_cmp(&b.tbt_s))
                .map(|d| (*d).clone())
        };
        let overhead = match (best(&unrestricted), best(&restricted)) {
            (Some(compliant), Some(frontier)) => {
                overhead_value(&ComplianceOverhead::between(&compliant, &frontier))
            }
            _ => Value::Null,
        };

        let indicator_rows = indicators
            .iter()
            .map(|col| {
                object(vec![
                    ("label", Value::String(col.label.clone())),
                    ("median_s", num(col.distribution.median)),
                    ("range_s", num(col.distribution.range())),
                    ("narrowing", num(col.narrowing)),
                ])
            })
            .collect();

        let fleet_block = object(vec![
            ("total", num(to_f64(fleet.len()))),
            ("counts", counts_value(&fleet_counts)),
            ("restricted_share", num(restricted_share)),
            ("tbt_unrestricted_s", dist_value(tbt_dist.as_ref())),
            ("good_die_cost_unrestricted_usd", dist_value(cost_dist.as_ref())),
            ("indicators", Value::Array(indicator_rows)),
        ]);
        let externality_block = object(vec![
            ("deadweight_loss_usd", num(dwl)),
            ("compliance_overhead", overhead),
        ]);
        (fleet_block, externality_block)
    }
}

impl Default for WhatIfEngine {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Emit a number, degrading non-finite values (an infinite narrowing
/// factor, a ratio against a zero denominator) to `null` so every record
/// stays canonical-JSON-encodable.
fn num(x: f64) -> Value {
    Value::from_f64(x).unwrap_or(Value::Null)
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(n: usize) -> f64 {
    n as f64
}

fn names_value(names: &[String]) -> Value {
    Value::Array(names.iter().map(|n| Value::String(n.clone())).collect())
}

fn counts_value(c: &LedgerCounts) -> Value {
    object(vec![
        ("not_applicable", num(to_f64(c.not_applicable))),
        ("nac_eligible", num(to_f64(c.nac_eligible))),
        ("license_required", num(to_f64(c.license_required))),
    ])
}

fn dist_value(d: Option<&Distribution>) -> Value {
    match d {
        None => Value::Null,
        Some(d) => object(vec![
            ("count", num(to_f64(d.count))),
            ("min", num(d.min)),
            ("q1", num(d.q1)),
            ("median", num(d.median)),
            ("q3", num(d.q3)),
            ("max", num(d.max)),
            ("mean", num(d.mean)),
        ]),
    }
}

fn overhead_value(o: &ComplianceOverhead) -> Value {
    object(vec![
        ("area_ratio", num(o.area_ratio)),
        ("die_cost_ratio", num(o.die_cost_ratio)),
        ("good_die_cost_ratio", num(o.good_die_cost_ratio)),
        ("ttft_ratio", num(o.ttft_ratio)),
        ("tbt_ratio", num(o.tbt_ratio)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::WhatIfRequest;
    use acs_errors::json::parse;

    #[test]
    fn baseline_run_over_the_device_db() {
        let engine = WhatIfEngine::paper_default();
        let (summary, records) = engine.run(&RuleGrid::baseline(), &[]).unwrap();
        assert_eq!(summary.variants, 1);
        assert_eq!(summary.devices, 65);
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        // Baseline vs baseline: no flips.
        let devices = rec.require("devices").unwrap();
        assert!(devices.require("newly_restricted").unwrap().as_array().unwrap().is_empty());
        assert!(devices.require("newly_freed").unwrap().as_array().unwrap().is_empty());
        // Empty fleet: distributions degrade to null, DWL is zero.
        let fleet = rec.require("fleet").unwrap();
        assert_eq!(fleet.require("total").unwrap().as_f64(), Some(0.0));
        assert!(matches!(fleet.require("tbt_unrestricted_s").unwrap(), Value::Null));
        assert_eq!(
            rec.require("externality").unwrap().require_f64("deadweight_loss_usd").unwrap(),
            0.0
        );
        // Records are canonical JSON: byte-stable round trip.
        let text = rec.to_json();
        assert_eq!(parse(&text).unwrap().to_json(), text);
    }

    #[test]
    fn blunt_rule_restricts_consumer_devices() {
        let engine = WhatIfEngine::paper_default();
        let req = parse(r#"{"rule":{"tpp_threshold_2022":1600,"device_bw_threshold_2022":0}}"#)
            .unwrap();
        let grid = WhatIfRequest::from_json(&req).unwrap().grid;
        let (_, records) = engine.run(&grid, &[]).unwrap();
        let devices = records[0].require("devices").unwrap();
        let newly = devices.require("newly_restricted").unwrap().as_array().unwrap();
        // The blunt 1600-TPP rule catches consumer parts the published
        // rules leave alone (the paper's RTX-class examples).
        assert!(!newly.is_empty());
    }

    #[test]
    fn records_stream_in_grid_order_and_count_variants() {
        let engine = WhatIfEngine::paper_default();
        let req = parse(r#"{"grid":{"tpp_license":[2400,4800],"pd_license":[3.0,5.92]}}"#).unwrap();
        let grid = WhatIfRequest::from_json(&req).unwrap().grid;
        let mut seen = Vec::new();
        let summary = engine
            .run_streaming(&grid, &[], |i, rec| {
                seen.push((i, rec.require_u64("variant").unwrap()));
                Ok(())
            })
            .unwrap();
        assert_eq!(summary.variants, 4);
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn sink_errors_abort_the_run() {
        let engine = WhatIfEngine::paper_default();
        let err = engine
            .run_streaming(&RuleGrid::baseline(), &[], |_, _| {
                Err(AcsError::Io { path: "wire".into(), reason: "gone".into() })
            })
            .unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
