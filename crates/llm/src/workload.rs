//! Inference request shapes and phases.

use std::fmt;

/// The two phases of autoregressive LLM inference.
///
/// * **Prefill** processes all input tokens in parallel, producing the
///   first output token and the KV cache; its latency is the
///   time-to-first-token (TTFT).
/// * **Decode** generates output tokens one at a time; its per-token
///   latency is the time-between-tokens (TBT). `context_len` is the KV
///   cache length the step attends over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferencePhase {
    /// Parallel prompt processing (compute-bound).
    Prefill,
    /// Auto-regressive generation (memory-bandwidth-bound).
    Decode {
        /// KV-cache length this decode step attends over.
        context_len: u64,
    },
}

impl fmt::Display for InferencePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferencePhase::Prefill => write!(f, "prefill"),
            InferencePhase::Decode { context_len } => write!(f, "decode@{context_len}"),
        }
    }
}

/// Shape of an inference request batch.
///
/// # Example
///
/// ```
/// use acs_llm::WorkloadConfig;
///
/// let w = WorkloadConfig::paper_default();
/// assert_eq!((w.batch(), w.input_len(), w.output_len()), (32, 2048, 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadConfig {
    batch: u64,
    input_len: u64,
    output_len: u64,
}

impl WorkloadConfig {
    /// Construct a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `input_len` is zero (`output_len` may be zero
    /// for prefill-only studies).
    #[must_use]
    pub fn new(batch: u64, input_len: u64, output_len: u64) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        assert!(input_len > 0, "input_len must be nonzero");
        WorkloadConfig { batch, input_len, output_len }
    }

    /// The paper's setting: batch 32, input 2048, output 1024 — "a typical
    /// setting for LLM inference workloads ran on flagship data center
    /// GPUs" (§3.2).
    #[must_use]
    pub fn paper_default() -> Self {
        WorkloadConfig::new(32, 2048, 1024)
    }

    /// Requests processed together.
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Prompt length in tokens.
    #[must_use]
    pub fn input_len(&self) -> u64 {
        self.input_len
    }

    /// Generation length in tokens.
    #[must_use]
    pub fn output_len(&self) -> u64 {
        self.output_len
    }

    /// Total prompt tokens in the batch (`batch × input_len`).
    #[must_use]
    pub fn prefill_tokens(&self) -> u64 {
        self.batch * self.input_len
    }

    /// The decode phase this reproduction reports TBT at: the KV context
    /// equals the input length (the first decode steps), matching how we
    /// anchor against the paper's per-token figures.
    #[must_use]
    pub fn decode_phase(&self) -> InferencePhase {
        InferencePhase::Decode { context_len: self.input_len }
    }

    /// The decode step midway through generation
    /// (`context = input + output/2`), for sensitivity studies.
    #[must_use]
    pub fn mid_decode_phase(&self) -> InferencePhase {
        InferencePhase::Decode { context_len: self.input_len + self.output_len / 2 }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for WorkloadConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch {} x {} in / {} out", self.batch, self.input_len, self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_3_2() {
        let w = WorkloadConfig::paper_default();
        assert_eq!(w.prefill_tokens(), 32 * 2048);
        assert_eq!(w.decode_phase(), InferencePhase::Decode { context_len: 2048 });
        assert_eq!(w.mid_decode_phase(), InferencePhase::Decode { context_len: 2560 });
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn rejects_zero_batch() {
        let _ = WorkloadConfig::new(0, 2048, 1024);
    }

    #[test]
    fn zero_output_is_allowed_for_prefill_studies() {
        let w = WorkloadConfig::new(1, 128, 0);
        assert_eq!(w.output_len(), 0);
    }

    #[test]
    fn phase_display() {
        assert_eq!(InferencePhase::Prefill.to_string(), "prefill");
        assert_eq!(InferencePhase::Decode { context_len: 2048 }.to_string(), "decode@2048");
    }
}
