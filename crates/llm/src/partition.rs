//! Pipeline-stage graph partitioning.
//!
//! Pipeline parallelism places contiguous runs of identical Transformer
//! layers on successive devices. Because every layer of a decoder-only
//! model is the same graph, a partition is fully described by how many
//! layers each stage holds; the stage boundary traffic (one activation
//! tensor per micro-batch) is priced by the simulator's parallelism
//! module, not here.

use acs_errors::AcsError;

/// Contiguous layer counts of a `stages`-deep pipeline over `num_layers`
/// identical layers: every stage holds `num_layers / stages` layers and
/// the remainder is absorbed into the last stage, matching the
/// simulator's long-standing stage model.
///
/// # Errors
///
/// Returns [`AcsError::InvalidConfig`] when `stages` is zero or exceeds
/// `num_layers` (a stage must hold at least one layer).
///
/// # Example
///
/// ```
/// use acs_llm::partition::pipeline_stage_layers;
///
/// assert_eq!(pipeline_stage_layers(32, 4)?, vec![8, 8, 8, 8]);
/// assert_eq!(pipeline_stage_layers(10, 4)?, vec![2, 2, 2, 4]);
/// # Ok::<(), acs_errors::AcsError>(())
/// ```
pub fn pipeline_stage_layers(num_layers: u32, stages: u32) -> Result<Vec<u32>, AcsError> {
    if stages == 0 {
        return Err(AcsError::invalid_config("pipeline_stages", "must be nonzero"));
    }
    if stages > num_layers {
        return Err(AcsError::invalid_config(
            "pipeline_stages",
            format!("{stages} stages cannot each hold a layer of a {num_layers}-layer model"),
        ));
    }
    let base = num_layers / stages;
    let mut out = vec![base; stages as usize];
    if let Some(last) = out.last_mut() {
        *last += num_layers % stages;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partitions_are_uniform() {
        assert_eq!(pipeline_stage_layers(96, 8).unwrap(), vec![12; 8]);
        assert_eq!(pipeline_stage_layers(32, 1).unwrap(), vec![32]);
    }

    #[test]
    fn remainders_land_in_the_last_stage() {
        let stages = pipeline_stage_layers(80, 6).unwrap();
        assert_eq!(stages.len(), 6);
        assert_eq!(stages.iter().sum::<u32>(), 80);
        assert_eq!(stages[5], 13 + 2);
        assert!(stages[..5].iter().all(|&s| s == 13));
    }

    #[test]
    fn degenerate_depths_are_typed_errors() {
        assert_eq!(pipeline_stage_layers(32, 0).unwrap_err().kind(), "invalid_config");
        assert_eq!(pipeline_stage_layers(4, 5).unwrap_err().kind(), "invalid_config");
    }
}
