//! Lowering one Transformer layer to an operator sequence.
//!
//! Tensor parallelism follows the Megatron partitioning the paper's
//! 4-device node uses: attention heads and FFN columns are split across
//! devices, and each of the two blocks ends in an all-reduce. Norms and
//! residuals are computed redundantly on every device.

use crate::model::{Activation, ModelConfig, MoeConfig};
use crate::ops::{AllReduceOp, AllToAllOp, MatmulKind, MatmulOp, Operator, VectorKind, VectorOp};
use crate::workload::{InferencePhase, WorkloadConfig};
use acs_errors::AcsError;
use std::fmt::Write as _;

/// The per-device operator sequence of one Transformer layer.
///
/// # Example
///
/// ```
/// use acs_llm::{InferencePhase, LayerGraph, ModelConfig, WorkloadConfig};
///
/// let g = LayerGraph::build(
///     &ModelConfig::gpt3_175b(),
///     &WorkloadConfig::paper_default(),
///     InferencePhase::Prefill,
///     4,
/// );
/// // A 4-way tensor-parallel layer all-reduces twice.
/// assert_eq!(g.allreduce_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGraph {
    ops: Vec<Operator>,
    phase: InferencePhase,
    tensor_parallel: u32,
    expert_parallel: u32,
}

impl LayerGraph {
    /// Lower one layer of `model` under `phase` for a `tensor_parallel`-way
    /// node, with FP16 (2-byte) operands.
    ///
    /// # Panics
    ///
    /// Panics if `tensor_parallel` is zero or does not divide the model's
    /// attention-head count.
    #[must_use]
    pub fn build(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
    ) -> Self {
        Self::build_with_dtype(model, workload, phase, tensor_parallel, 2)
    }

    /// [`LayerGraph::build`] with the panics replaced by typed errors,
    /// for plan-building paths that must report a bad tensor-parallel
    /// degree as an [`AcsError::InvalidConfig`] instead of unwinding.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when `tensor_parallel` is zero
    /// or does not divide the model's attention-head count.
    pub fn try_build(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
    ) -> Result<Self, AcsError> {
        Self::try_build_with_dtype(model, workload, phase, tensor_parallel, 2)
    }

    /// [`LayerGraph::try_build`] with an explicit operand size in bytes.
    ///
    /// # Errors
    ///
    /// See [`LayerGraph::try_build`].
    pub fn try_build_with_dtype(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        dtype_bytes: u64,
    ) -> Result<Self, AcsError> {
        Self::try_build_parallel(model, workload, phase, tensor_parallel, 1, dtype_bytes)
    }

    /// [`LayerGraph::try_build_with_dtype`] with an expert-parallel degree.
    ///
    /// At `expert_parallel == 1` the lowering is byte-identical to the
    /// tensor-parallel-only form. Beyond 1, the MoE experts are sharded
    /// across an `expert_parallel`-wide group *orthogonal to* the
    /// tensor-parallel node (total devices = `tensor_parallel ×
    /// expert_parallel`): each device holds `num_experts /
    /// expert_parallel` experts, and the layer gains a dispatch
    /// all-to-all before the expert FFNs and a combine all-to-all after
    /// them, in exchange for each device processing only its `1 /
    /// expert_parallel` share of the routed token assignments.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the tensor-parallel
    /// degree is invalid (see [`LayerGraph::try_build`]), when
    /// `expert_parallel` is zero, or when `expert_parallel > 1` on a
    /// dense model or with a degree that does not divide the expert
    /// count.
    pub fn try_build_parallel(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        expert_parallel: u32,
        dtype_bytes: u64,
    ) -> Result<Self, AcsError> {
        if tensor_parallel == 0 {
            return Err(AcsError::invalid_config("tensor_parallel", "must be nonzero"));
        }
        if model.num_heads() % tensor_parallel != 0 {
            return Err(AcsError::invalid_config(
                "tensor_parallel",
                format!(
                    "{tensor_parallel} does not divide the model's {} attention heads",
                    model.num_heads()
                ),
            ));
        }
        if expert_parallel == 0 {
            return Err(AcsError::invalid_config("expert_parallel", "must be nonzero"));
        }
        if expert_parallel > 1 {
            let Some(moe) = model.moe() else {
                return Err(AcsError::invalid_config(
                    "expert_parallel",
                    format!("{} is a dense model; expert parallelism needs experts", model.name()),
                ));
            };
            if moe.num_experts % expert_parallel != 0 {
                return Err(AcsError::invalid_config(
                    "expert_parallel",
                    format!(
                        "{expert_parallel} does not divide the model's {} experts",
                        moe.num_experts
                    ),
                ));
            }
        }
        Ok(Self::lower(model, workload, phase, tensor_parallel, expert_parallel, dtype_bytes))
    }

    /// Canonical text form of everything a layer plan depends on: the
    /// model's full hyperparameters, the workload shape, the phase
    /// (including the decode context), the tensor-parallel degree, and the
    /// operand size. Byte-identical inputs produce byte-identical keys, so
    /// the string (or its digest) content-addresses a lowered graph
    /// without building one. Infallible and validation-free by design —
    /// cache-key derivation must never fail.
    #[must_use]
    pub fn plan_key(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        dtype_bytes: u64,
    ) -> String {
        Self::plan_key_parallel(model, workload, phase, tensor_parallel, 1, dtype_bytes)
    }

    /// [`LayerGraph::plan_key`] with an expert-parallel degree. The `|ep=`
    /// member is appended only when `expert_parallel > 1`, so every key
    /// the pre-scenario stack ever produced stays byte-identical — the
    /// digests in blessed golden corpora and long-lived caches are
    /// unaffected by the parallelism extension.
    #[must_use]
    pub fn plan_key_parallel(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        expert_parallel: u32,
        dtype_bytes: u64,
    ) -> String {
        let mut key = String::with_capacity(192);
        // `write!` into a String cannot fail; the results are discarded.
        let _ = write!(
            key,
            "llm-plan-v1|model={};layers={};d={};ffn={};heads={};kv={};act={}",
            model.name(),
            model.num_layers(),
            model.d_model(),
            model.d_ffn(),
            model.num_heads(),
            model.num_kv_heads(),
            model.activation(),
        );
        match model.moe() {
            Some(moe) => {
                let _ = write!(key, ";moe={}x{}", moe.num_experts, moe.top_k);
            }
            None => key.push_str(";moe=none"),
        }
        let _ = write!(
            key,
            "|work=b{},i{},o{}",
            workload.batch(),
            workload.input_len(),
            workload.output_len()
        );
        match phase {
            InferencePhase::Prefill => key.push_str("|phase=prefill"),
            InferencePhase::Decode { context_len } => {
                let _ = write!(key, "|phase=decode@{context_len}");
            }
        }
        let _ = write!(key, "|tp={tensor_parallel}|dt={dtype_bytes}");
        if expert_parallel > 1 {
            let _ = write!(key, "|ep={expert_parallel}");
        }
        key
    }

    /// [`LayerGraph::build`] with an explicit operand size in bytes.
    ///
    /// # Panics
    ///
    /// See [`LayerGraph::build`].
    #[must_use]
    pub fn build_with_dtype(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        dtype_bytes: u64,
    ) -> Self {
        assert!(tensor_parallel > 0, "tensor_parallel must be nonzero");
        assert_eq!(
            model.num_heads() % tensor_parallel,
            0,
            "tensor_parallel must divide num_heads"
        );
        Self::lower(model, workload, phase, tensor_parallel, 1, dtype_bytes)
    }

    /// The one lowering routine every public constructor funnels into.
    /// Inputs are pre-validated by the caller.
    fn lower(
        model: &ModelConfig,
        workload: &WorkloadConfig,
        phase: InferencePhase,
        tensor_parallel: u32,
        expert_parallel: u32,
        dtype_bytes: u64,
    ) -> Self {
        let tp = u64::from(tensor_parallel);
        let b = workload.batch();
        let d = model.d_model();
        let dh = model.head_dim();
        let heads_per_dev = u64::from(model.num_heads()) / tp;
        // KV heads are replicated when tp exceeds their count (GQA).
        let kv_per_dev = (u64::from(model.num_kv_heads()) / tp).max(1);
        let group = heads_per_dev / kv_per_dev;

        let (s_q, s_kv) = match phase {
            InferencePhase::Prefill => (workload.input_len(), workload.input_len()),
            InferencePhase::Decode { context_len } => (1, context_len),
        };
        let tokens = b * s_q;
        let norm_kind = match model.activation() {
            Activation::Gelu => VectorKind::LayerNorm,
            Activation::SwiGlu => VectorKind::RmsNorm,
        };

        let mut ops = Vec::with_capacity(16);
        ops.push(Operator::Vector(VectorOp {
            name: "norm_attn",
            kind: norm_kind,
            elements: tokens * d,
        }));
        // Fused QKV projection: output columns per device are the local
        // query heads plus local K and V heads.
        let qkv_n = heads_per_dev * dh + 2 * kv_per_dev * dh;
        ops.push(Operator::Matmul(MatmulOp {
            name: "qkv_proj",
            m: tokens,
            n: qkv_n,
            k: d,
            count: 1,
            b_shared_by: 1,
            kind: MatmulKind::Weight,
        }));
        // Attention scores Q·Kᵀ: one instance per (batch, local head);
        // instances within a GQA group share the K operand.
        ops.push(Operator::Matmul(MatmulOp {
            name: "attn_score",
            m: s_q,
            n: s_kv,
            k: dh,
            count: b * heads_per_dev,
            b_shared_by: group,
            kind: MatmulKind::Activation,
        }));
        ops.push(Operator::Vector(VectorOp {
            name: "softmax",
            kind: VectorKind::Softmax,
            elements: b * heads_per_dev * s_q * s_kv,
        }));
        // Context A·V.
        ops.push(Operator::Matmul(MatmulOp {
            name: "attn_context",
            m: s_q,
            n: dh,
            k: s_kv,
            count: b * heads_per_dev,
            b_shared_by: group,
            kind: MatmulKind::Activation,
        }));
        ops.push(Operator::Matmul(MatmulOp {
            name: "out_proj",
            m: tokens,
            n: d,
            k: heads_per_dev * dh,
            count: 1,
            b_shared_by: 1,
            kind: MatmulKind::Weight,
        }));
        ops.push(Operator::AllReduce(AllReduceOp {
            name: "allreduce_attn",
            bytes: tokens * d * dtype_bytes,
        }));
        ops.push(Operator::Vector(VectorOp {
            name: "residual_attn",
            kind: VectorKind::ResidualAdd,
            elements: tokens * d,
        }));
        ops.push(Operator::Vector(VectorOp {
            name: "norm_ffn",
            kind: norm_kind,
            elements: tokens * d,
        }));
        let ffn_cols = model.d_ffn() / tp;
        // Mixture-of-experts FFNs: route every token to `top_k` experts.
        // FLOPs scale with top_k; weight traffic scales with the experts
        // actually touched (count = touched experts, each a distinct
        // weight set — `b_bytes` then counts every touched expert once).
        // Under expert parallelism each device owns `num_experts / ep`
        // experts and processes its `1/ep` share of the routed
        // assignments, bracketed by a dispatch and a combine all-to-all.
        // A degenerate 1-expert top-1 "MoE" routes every token to the one
        // expert every device already holds: no router, no exchange — the
        // lowering is byte-identical to the dense FFN, the invariant the
        // differential-verification corpus pins.
        let ep = u64::from(expert_parallel);
        let mut moe_combine: Option<AllToAllOp> = None;
        let (ffn_count, ffn_m) = match model.moe() {
            None => (1, tokens),
            Some(moe) if moe.num_experts == 1 => (1, tokens),
            Some(moe) => {
                let assignments = tokens * u64::from(moe.top_k);
                ops.push(Operator::Matmul(MatmulOp {
                    name: "moe_router",
                    m: tokens,
                    n: u64::from(moe.num_experts),
                    k: d,
                    count: 1,
                    b_shared_by: 1,
                    kind: MatmulKind::Weight,
                }));
                ops.push(Operator::Vector(VectorOp {
                    name: "moe_router_softmax",
                    kind: VectorKind::Softmax,
                    elements: tokens * u64::from(moe.num_experts),
                }));
                let local_pool = MoeConfig {
                    num_experts: moe.num_experts / expert_parallel,
                    top_k: moe.top_k,
                };
                let local_assignments = assignments.div_ceil(ep);
                let touched = (local_pool.expected_experts_touched(local_assignments).round()
                    as u64)
                    .clamp(1, u64::from(local_pool.num_experts).min(local_assignments));
                if expert_parallel > 1 {
                    let exchange_bytes = local_assignments * d * dtype_bytes;
                    ops.push(Operator::AllToAll(AllToAllOp {
                        name: "moe_dispatch",
                        bytes: exchange_bytes,
                        group: expert_parallel,
                    }));
                    moe_combine = Some(AllToAllOp {
                        name: "moe_combine",
                        bytes: exchange_bytes,
                        group: expert_parallel,
                    });
                }
                (touched, local_assignments.div_ceil(touched))
            }
        };
        match model.activation() {
            Activation::Gelu => {
                ops.push(Operator::Matmul(MatmulOp {
                    name: "ffn_up",
                    m: ffn_m,
                    n: ffn_cols,
                    k: d,
                    count: ffn_count,
                    b_shared_by: 1,
                    kind: MatmulKind::Weight,
                }));
                ops.push(Operator::Vector(VectorOp {
                    name: "gelu",
                    kind: VectorKind::Gelu,
                    elements: ffn_count * ffn_m * ffn_cols,
                }));
            }
            Activation::SwiGlu => {
                ops.push(Operator::Matmul(MatmulOp {
                    name: "ffn_gate",
                    m: ffn_m,
                    n: ffn_cols,
                    k: d,
                    count: ffn_count,
                    b_shared_by: 1,
                    kind: MatmulKind::Weight,
                }));
                ops.push(Operator::Matmul(MatmulOp {
                    name: "ffn_up",
                    m: ffn_m,
                    n: ffn_cols,
                    k: d,
                    count: ffn_count,
                    b_shared_by: 1,
                    kind: MatmulKind::Weight,
                }));
                ops.push(Operator::Vector(VectorOp {
                    name: "silu_mul",
                    kind: VectorKind::SiluMul,
                    elements: ffn_count * ffn_m * ffn_cols,
                }));
            }
        }
        ops.push(Operator::Matmul(MatmulOp {
            name: "ffn_down",
            m: ffn_m,
            n: d,
            k: ffn_cols,
            count: ffn_count,
            b_shared_by: 1,
            kind: MatmulKind::Weight,
        }));
        if let Some(combine) = moe_combine {
            ops.push(Operator::AllToAll(combine));
        }
        ops.push(Operator::AllReduce(AllReduceOp {
            name: "allreduce_ffn",
            bytes: tokens * d * dtype_bytes,
        }));
        ops.push(Operator::Vector(VectorOp {
            name: "residual_ffn",
            kind: VectorKind::ResidualAdd,
            elements: tokens * d,
        }));

        LayerGraph { ops, phase, tensor_parallel, expert_parallel }
    }

    /// The operator sequence in execution order.
    #[must_use]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// The phase this graph was lowered for.
    #[must_use]
    pub fn phase(&self) -> InferencePhase {
        self.phase
    }

    /// Tensor-parallel degree.
    #[must_use]
    pub fn tensor_parallel(&self) -> u32 {
        self.tensor_parallel
    }

    /// Expert-parallel degree (1 unless built through
    /// [`LayerGraph::try_build_parallel`]).
    #[must_use]
    pub fn expert_parallel(&self) -> u32 {
        self.expert_parallel
    }

    /// Number of all-to-all collectives (2 for an expert-parallel MoE
    /// layer, 0 otherwise).
    #[must_use]
    pub fn alltoall_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, Operator::AllToAll(_))).count()
    }

    /// Total per-device FLOPs in the layer.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(Operator::flops).sum()
    }

    /// Per-device FLOPs performed on the systolic arrays.
    #[must_use]
    pub fn matmul_flops(&self) -> f64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, Operator::Matmul(_)))
            .map(Operator::flops)
            .sum()
    }

    /// Number of all-reduce collectives.
    #[must_use]
    pub fn allreduce_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, Operator::AllReduce(_))).count()
    }

    /// Per-device weight bytes streamed from HBM (the decode-phase floor).
    #[must_use]
    pub fn weight_bytes(&self, dtype_bytes: u64) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Operator::Matmul(m) if m.kind == MatmulKind::Weight => Some(m.b_bytes(dtype_bytes)),
                _ => None,
            })
            .sum()
    }
}

/// Convenience wrapper: lower one layer with FP16 operands.
///
/// See [`LayerGraph::build`].
#[must_use]
pub fn layer_ops(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    phase: InferencePhase,
    tensor_parallel: u32,
) -> Vec<Operator> {
    LayerGraph::build(model, workload, phase, tensor_parallel).ops().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3_prefill(tp: u32) -> LayerGraph {
        LayerGraph::build(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Prefill,
            tp,
        )
    }

    #[test]
    fn gpt3_prefill_flops_match_analytic_estimate() {
        // Full-layer (tp=1) matmul FLOPs ≈ 2·T·(12·d²) + attention
        // 4·B·S²·d, T = B·S tokens.
        let g = gpt3_prefill(1);
        let b = 32.0_f64;
        let s = 2048.0;
        let d = 12288.0;
        let t = b * s;
        let proj = 2.0 * t * (4.0 * d * d + 2.0 * 4.0 * d * d); // qkv+out+ffn(8d²)
        let attn = 4.0 * b * s * s * d;
        let expected = proj + attn;
        let got = g.matmul_flops();
        assert!(
            (got - expected).abs() / expected < 0.01,
            "got {got:.3e}, expected {expected:.3e}"
        );
    }

    #[test]
    fn tensor_parallel_divides_matmul_flops() {
        let f1 = gpt3_prefill(1).matmul_flops();
        let f4 = gpt3_prefill(4).matmul_flops();
        assert!((f1 / f4 - 4.0).abs() < 0.05, "ratio = {}", f1 / f4);
    }

    #[test]
    fn decode_tokens_are_batch_sized() {
        let g = LayerGraph::build(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Decode { context_len: 2048 },
            4,
        );
        let qkv = g
            .ops()
            .iter()
            .find_map(|op| match op {
                Operator::Matmul(m) if m.name == "qkv_proj" => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(qkv.m, 32);
    }

    #[test]
    fn decode_weight_bytes_match_per_device_share() {
        // GPT-3 layer holds 12·d² weights; at tp=4 and fp16 each device
        // streams ~2·12·d²/4 bytes per decode step.
        let g = LayerGraph::build(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Decode { context_len: 2048 },
            4,
        );
        let d = 12288.0_f64;
        let expected = 2.0 * 12.0 * d * d / 4.0;
        let got = g.weight_bytes(2) as f64;
        assert!((got - expected).abs() / expected < 0.01, "got {got:.3e}");
    }

    #[test]
    fn swiglu_layer_has_three_ffn_matmuls() {
        let g = LayerGraph::build(
            &ModelConfig::llama3_8b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Prefill,
            4,
        );
        let ffn_mms = g
            .ops()
            .iter()
            .filter(|op| matches!(op, Operator::Matmul(m) if m.name.starts_with("ffn")))
            .count();
        assert_eq!(ffn_mms, 3);
    }

    #[test]
    fn gqa_shares_kv_operands() {
        // Llama 3 at tp=4: 8 local heads, 2 local KV heads => group 4.
        let g = LayerGraph::build(
            &ModelConfig::llama3_8b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Decode { context_len: 2048 },
            4,
        );
        let score = g
            .ops()
            .iter()
            .find_map(|op| match op {
                Operator::Matmul(m) if m.name == "attn_score" => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(score.count, 32 * 8);
        assert_eq!(score.b_shared_by, 4);
        // MHA GPT-3 shares nothing.
        let g2 = LayerGraph::build(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Decode { context_len: 2048 },
            4,
        );
        let score2 = g2
            .ops()
            .iter()
            .find_map(|op| match op {
                Operator::Matmul(m) if m.name == "attn_score" => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(score2.b_shared_by, 1);
    }

    #[test]
    fn allreduce_bytes_scale_with_tokens() {
        let prefill = gpt3_prefill(4);
        let decode = LayerGraph::build(
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            InferencePhase::Decode { context_len: 2048 },
            4,
        );
        let bytes = |g: &LayerGraph| -> u64 {
            g.ops()
                .iter()
                .filter_map(|op| match op {
                    Operator::AllReduce(a) => Some(a.bytes),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(bytes(&prefill), 2 * 32 * 2048 * 12288 * 2);
        assert_eq!(bytes(&decode), 2 * 32 * 12288 * 2);
    }

    #[test]
    #[should_panic(expected = "tensor_parallel must divide num_heads")]
    fn rejects_non_dividing_tp() {
        let _ = gpt3_prefill(5);
    }

    #[test]
    fn try_build_types_the_panic_cases_and_matches_build() {
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let ok = LayerGraph::try_build(&m, &w, InferencePhase::Prefill, 4).unwrap();
        assert_eq!(ok, LayerGraph::build(&m, &w, InferencePhase::Prefill, 4));
        for bad_tp in [0, 5] {
            let err =
                LayerGraph::try_build(&m, &w, InferencePhase::Prefill, bad_tp).unwrap_err();
            assert_eq!(err.kind(), "invalid_config");
        }
    }

    #[test]
    fn plan_keys_separate_every_load_bearing_input() {
        let m = ModelConfig::gpt3_175b();
        let w = WorkloadConfig::paper_default();
        let base = LayerGraph::plan_key(&m, &w, InferencePhase::Prefill, 4, 2);
        // Deterministic: same inputs, byte-identical key.
        assert_eq!(base, LayerGraph::plan_key(&m, &w, InferencePhase::Prefill, 4, 2));
        let variants = [
            LayerGraph::plan_key(&ModelConfig::llama3_8b(), &w, InferencePhase::Prefill, 4, 2),
            LayerGraph::plan_key(&ModelConfig::mixtral_8x7b(), &w, InferencePhase::Prefill, 4, 2),
            LayerGraph::plan_key(&m, &WorkloadConfig::new(8, 512, 128), InferencePhase::Prefill, 4, 2),
            LayerGraph::plan_key(&m, &w, InferencePhase::Decode { context_len: 2048 }, 4, 2),
            LayerGraph::plan_key(&m, &w, InferencePhase::Decode { context_len: 4096 }, 4, 2),
            LayerGraph::plan_key(&m, &w, InferencePhase::Prefill, 8, 2),
            LayerGraph::plan_key(&m, &w, InferencePhase::Prefill, 4, 1),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(&base, v, "variant {i} must not collide with the base key");
        }
    }

    #[test]
    fn moe_layer_has_router_and_expert_weight_traffic() {
        let mixtral = ModelConfig::mixtral_8x7b();
        let dense = ModelConfig::llama3_8b();
        let w = WorkloadConfig::paper_default();
        let decode = InferencePhase::Decode { context_len: 2048 };
        let g_moe = LayerGraph::build(&mixtral, &w, decode, 4);
        let g_dense = LayerGraph::build(&dense, &w, decode, 4);
        assert!(g_moe.ops().iter().any(|op| op.name() == "moe_router"));
        // Batch-32 top-2 decode touches essentially all 8 experts, so the
        // layer streams ~8x the dense FFN weights.
        let ratio = g_moe.weight_bytes(2) as f64 / g_dense.weight_bytes(2) as f64;
        assert!(ratio > 4.0 && ratio < 9.0, "weight ratio = {ratio}");
        // But compute only scales with top_k.
        let flop_ratio = g_moe.matmul_flops() / g_dense.matmul_flops();
        assert!(flop_ratio > 1.3 && flop_ratio < 2.5, "flop ratio = {flop_ratio}");
    }

    #[test]
    fn moe_prefill_touches_all_experts_once() {
        let mixtral = ModelConfig::mixtral_8x7b();
        let w = WorkloadConfig::paper_default();
        let g = LayerGraph::build(&mixtral, &w, InferencePhase::Prefill, 4);
        let ffn_up = g
            .ops()
            .iter()
            .find_map(|op| match op {
                Operator::Matmul(m) if m.name == "ffn_up" => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(ffn_up.count, 8, "65k prefill tokens hit every expert");
        // Total routed rows ≈ tokens × top_k.
        let routed = ffn_up.count * ffn_up.m;
        let expected = 32 * 2048 * 2;
        assert!((routed as f64 / expected as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn degenerate_moe_lowers_bit_identically_to_dense() {
        // 1 expert, top-1: every token visits the single expert every
        // device holds — no router, no exchange, the dense FFN.
        let dense = ModelConfig::llama3_8b();
        let degen = ModelConfig::llama3_8b().with_moe(1, 1);
        let w = WorkloadConfig::paper_default();
        for phase in [InferencePhase::Prefill, InferencePhase::Decode { context_len: 2048 }] {
            let g_dense = LayerGraph::build(&dense, &w, phase, 4);
            let g_degen = LayerGraph::build(&degen, &w, phase, 4);
            assert_eq!(g_dense.ops(), g_degen.ops());
        }
    }

    #[test]
    fn expert_parallel_brackets_the_ffn_with_alltoalls() {
        let mixtral = ModelConfig::mixtral_8x7b();
        let w = WorkloadConfig::paper_default();
        let g = LayerGraph::try_build_parallel(&mixtral, &w, InferencePhase::Prefill, 4, 4, 2)
            .unwrap();
        assert_eq!(g.expert_parallel(), 4);
        assert_eq!(g.alltoall_count(), 2);
        let names: Vec<&str> = g.ops().iter().map(acs_llm_op_name).collect();
        let dispatch = names.iter().position(|n| *n == "moe_dispatch").unwrap();
        let combine = names.iter().position(|n| *n == "moe_combine").unwrap();
        let down = names.iter().position(|n| *n == "ffn_down").unwrap();
        let allreduce = names.iter().position(|n| *n == "allreduce_ffn").unwrap();
        assert!(dispatch < down && down < combine && combine < allreduce);
        // Each device's FFN work shrinks with the expert-parallel degree.
        let ep1 = LayerGraph::try_build_parallel(&mixtral, &w, InferencePhase::Prefill, 4, 1, 2)
            .unwrap();
        assert_eq!(ep1.ops(), LayerGraph::build(&mixtral, &w, InferencePhase::Prefill, 4).ops());
        let ffn_flops = |g: &LayerGraph| -> f64 {
            g.ops()
                .iter()
                .filter(|op| op.name().starts_with("ffn"))
                .map(Operator::flops)
                .sum()
        };
        let ratio = ffn_flops(&ep1) / ffn_flops(&g);
        assert!(ratio > 3.0 && ratio < 5.0, "4-way EP should quarter FFN work, ratio {ratio}");
    }

    fn acs_llm_op_name(op: &Operator) -> &'static str {
        op.name()
    }

    #[test]
    fn expert_parallel_validation_is_typed() {
        let w = WorkloadConfig::paper_default();
        let dense = ModelConfig::llama3_8b();
        let mixtral = ModelConfig::mixtral_8x7b();
        // Zero EP degree.
        let err = LayerGraph::try_build_parallel(&mixtral, &w, InferencePhase::Prefill, 4, 0, 2)
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
        // EP on a dense model.
        let err = LayerGraph::try_build_parallel(&dense, &w, InferencePhase::Prefill, 4, 2, 2)
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
        // EP degree not dividing the expert count.
        let err = LayerGraph::try_build_parallel(&mixtral, &w, InferencePhase::Prefill, 4, 3, 2)
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_config");
    }

    #[test]
    fn parallel_plan_keys_extend_without_disturbing_dense_keys() {
        let m = ModelConfig::mixtral_8x7b();
        let w = WorkloadConfig::paper_default();
        // ep=1 emits exactly the historical key.
        assert_eq!(
            LayerGraph::plan_key_parallel(&m, &w, InferencePhase::Prefill, 4, 1, 2),
            LayerGraph::plan_key(&m, &w, InferencePhase::Prefill, 4, 2),
        );
        let k1 = LayerGraph::plan_key_parallel(&m, &w, InferencePhase::Prefill, 4, 1, 2);
        let k4 = LayerGraph::plan_key_parallel(&m, &w, InferencePhase::Prefill, 4, 4, 2);
        assert_ne!(k1, k4);
        assert!(k4.ends_with("|ep=4"), "{k4}");
        assert!(!k1.contains("|ep="), "{k1}");
    }

    #[test]
    fn layer_ops_convenience_matches_graph() {
        let m = ModelConfig::llama3_8b();
        let w = WorkloadConfig::paper_default();
        let via_fn = layer_ops(&m, &w, InferencePhase::Prefill, 4);
        let via_graph = LayerGraph::build(&m, &w, InferencePhase::Prefill, 4);
        assert_eq!(via_fn, via_graph.ops());
    }
}
