//! Synthetic request traces for serving-level studies.
//!
//! The paper's related work (Orca, Splitwise, Sarathi) evaluates serving
//! systems on request traces; production traces are proprietary, so this
//! module generates the standard synthetic substitute: Poisson arrivals
//! with log-normal prompt/output lengths, deterministic under a seed.

use crate::rng::SplitMix64;
use acs_errors::AcsError;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time in seconds from trace start.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Tokens to generate.
    pub output_len: u64,
}

/// Length distribution: log-normal with a median and a shape parameter,
/// clamped to `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthDistribution {
    /// Median length in tokens.
    pub median: u64,
    /// Log-normal σ (0 ⇒ deterministic at the median).
    pub sigma: f64,
    /// Lower clamp.
    pub min: u64,
    /// Upper clamp.
    pub max: u64,
}

impl LengthDistribution {
    /// A chat-style prompt distribution (median 512, heavy tail to 4k).
    #[must_use]
    pub fn chat_prompts() -> Self {
        LengthDistribution { median: 512, sigma: 0.8, min: 16, max: 4096 }
    }

    /// A chat-style generation distribution (median 128, tail to 1k).
    #[must_use]
    pub fn chat_outputs() -> Self {
        LengthDistribution { median: 128, sigma: 0.7, min: 4, max: 1024 }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.sigma <= 0.0 {
            return self.median.clamp(self.min, self.max);
        }
        // Box–Muller standard normal.
        let u1: f64 = rng.next_open_f64();
        let u2: f64 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let value = (self.median as f64) * (self.sigma * z).exp();
        (value.round() as u64).clamp(self.min, self.max)
    }
}

/// A time-ordered sequence of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    requests: Vec<Request>,
}

impl RequestTrace {
    /// Build from explicit requests (sorted by arrival).
    #[must_use]
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        RequestTrace { requests }
    }

    /// Synthetic trace: Poisson arrivals at `rate_rps` for `duration_s`,
    /// lengths drawn from the given distributions. Deterministic per seed.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] if `rate_rps` or `duration_s`
    /// is not positive and finite (a NaN rate must not silently produce
    /// an empty trace).
    pub fn synthetic(
        rate_rps: f64,
        duration_s: f64,
        prompts: LengthDistribution,
        outputs: LengthDistribution,
        seed: u64,
    ) -> Result<Self, AcsError> {
        if !(rate_rps > 0.0 && rate_rps.is_finite()) {
            return Err(AcsError::invalid_config(
                "rate_rps",
                format!("must be positive and finite, got {rate_rps}"),
            ));
        }
        if !(duration_s > 0.0 && duration_s.is_finite()) {
            return Err(AcsError::invalid_config(
                "duration_s",
                format!("must be positive and finite, got {duration_s}"),
            ));
        }
        let mut rng = SplitMix64::new(seed);
        let mut requests = Vec::new();
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival gap.
            let u: f64 = rng.next_open_f64();
            t -= u.ln() / rate_rps;
            if t >= duration_s {
                break;
            }
            requests.push(Request {
                arrival_s: t,
                input_len: prompts.sample(&mut rng),
                output_len: outputs.sample(&mut rng),
            });
        }
        Ok(RequestTrace { requests })
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total prompt tokens.
    #[must_use]
    pub fn total_input_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.input_len).sum()
    }

    /// Total output tokens.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64) -> RequestTrace {
        RequestTrace::synthetic(
            2.0,
            100.0,
            LengthDistribution::chat_prompts(),
            LengthDistribution::chat_outputs(),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn synthetic_trace_is_deterministic_per_seed() {
        assert_eq!(trace(7), trace(7));
        assert_ne!(trace(7), trace(8));
    }

    #[test]
    fn arrival_rate_is_approximately_honoured() {
        let t = trace(1);
        // 2 req/s × 100 s ≈ 200 requests (Poisson: ±3σ ≈ ±42).
        assert!(t.len() > 140 && t.len() < 270, "n = {}", t.len());
        // Arrivals sorted and within the window.
        for pair in t.requests().windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        assert!(t.requests().last().unwrap().arrival_s < 100.0);
    }

    #[test]
    fn lengths_respect_clamps_and_median() {
        let t = trace(2);
        let prompts = LengthDistribution::chat_prompts();
        let mut inputs: Vec<u64> = t.requests().iter().map(|r| r.input_len).collect();
        inputs.sort_unstable();
        for &len in &inputs {
            assert!(len >= prompts.min && len <= prompts.max);
        }
        // Sample median within a factor of ~1.5 of the target.
        let median = inputs[inputs.len() / 2] as f64;
        assert!(median > 512.0 / 1.6 && median < 512.0 * 1.6, "median = {median}");
    }

    #[test]
    fn deterministic_distribution_is_constant() {
        let d = LengthDistribution { median: 100, sigma: 0.0, min: 1, max: 1000 };
        let t = RequestTrace::synthetic(1.0, 10.0, d, d, 3).unwrap();
        assert!(t.requests().iter().all(|r| r.input_len == 100 && r.output_len == 100));
    }

    #[test]
    fn new_sorts_requests() {
        let t = RequestTrace::new(vec![
            Request { arrival_s: 5.0, input_len: 1, output_len: 1 },
            Request { arrival_s: 1.0, input_len: 2, output_len: 2 },
        ]);
        assert_eq!(t.requests()[0].arrival_s, 1.0);
        assert_eq!(t.total_input_tokens(), 3);
        assert_eq!(t.total_output_tokens(), 3);
    }

    #[test]
    fn invalid_rates_and_durations_are_typed_errors() {
        let d = LengthDistribution::chat_prompts();
        for bad_rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = RequestTrace::synthetic(bad_rate, 10.0, d, d, 0).unwrap_err();
            assert!(matches!(err, AcsError::InvalidConfig { .. }), "{bad_rate}");
        }
        for bad_dur in [0.0, -5.0, f64::NAN] {
            let err = RequestTrace::synthetic(1.0, bad_dur, d, d, 0).unwrap_err();
            assert!(matches!(err, AcsError::InvalidConfig { .. }), "{bad_dur}");
        }
    }
}
