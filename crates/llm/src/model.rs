//! Decoder-only Transformer model configurations (paper Table 2).

use std::fmt;

/// Feed-forward activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Activation {
    /// GELU, used by GPT-3: one up-projection, one down-projection.
    Gelu,
    /// SwiGLU, used by Llama 3: gate + up projections, a SiLU-multiply,
    /// and a down-projection.
    SwiGlu,
}

impl Activation {
    /// Number of FFN weight matrices this activation implies.
    #[must_use]
    pub fn ffn_matmul_count(self) -> u32 {
        match self {
            Activation::Gelu => 2,
            Activation::SwiGlu => 3,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::Gelu => write!(f, "GELU"),
            Activation::SwiGlu => write!(f, "SwiGLU"),
        }
    }
}

/// Mixture-of-experts feed-forward configuration.
///
/// Each layer carries `num_experts` independent FFN weight sets; a router
/// sends every token to its `top_k` highest-scoring experts. Compute per
/// token scales with `top_k`, while *weight capacity and decode-time
/// weight traffic* scale with the number of experts actually touched — the
/// property that makes MoE decoding punishingly memory-bound at small
/// batch sizes, and an instructive extension for sanction analysis
/// (TPP-style compute ceilings say nothing about expert capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoeConfig {
    /// Experts per layer.
    pub num_experts: u32,
    /// Experts activated per token.
    pub top_k: u32,
}

impl MoeConfig {
    /// Expected number of distinct experts touched by `assignments`
    /// token-to-expert routings under uniform routing.
    #[must_use]
    pub fn expected_experts_touched(&self, assignments: u64) -> f64 {
        let e = f64::from(self.num_experts);
        e * (1.0 - (1.0 - 1.0 / e).powf(assignments as f64))
    }
}

/// Hyperparameters of a decoder-only Transformer (one entry of Table 2).
///
/// # Example
///
/// ```
/// use acs_llm::ModelConfig;
///
/// let llama = ModelConfig::llama3_8b();
/// assert_eq!(llama.num_kv_heads(), 8, "Llama 3 uses grouped-query attention");
/// assert_eq!(llama.head_dim(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    name: String,
    num_layers: u32,
    d_model: u64,
    d_ffn: u64,
    num_heads: u32,
    num_kv_heads: u32,
    activation: Activation,
    moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Construct a model configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, if `num_heads` does not divide
    /// `d_model`, or if `num_kv_heads` does not divide `num_heads`
    /// (grouped-query attention requires equal-sized groups).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        num_layers: u32,
        d_model: u64,
        d_ffn: u64,
        num_heads: u32,
        num_kv_heads: u32,
        activation: Activation,
    ) -> Self {
        assert!(num_layers > 0, "num_layers must be nonzero");
        assert!(d_model > 0 && d_ffn > 0, "dimensions must be nonzero");
        assert!(num_heads > 0 && num_kv_heads > 0, "head counts must be nonzero");
        assert_eq!(d_model % u64::from(num_heads), 0, "num_heads must divide d_model");
        assert_eq!(num_heads % num_kv_heads, 0, "num_kv_heads must divide num_heads");
        ModelConfig {
            name: name.into(),
            num_layers,
            d_model,
            d_ffn,
            num_heads,
            num_kv_heads,
            activation,
            moe: None,
        }
    }

    /// Convert the feed-forward network into a mixture of experts.
    ///
    /// # Panics
    ///
    /// Panics if `num_experts` is zero or `top_k` is zero or exceeds
    /// `num_experts`.
    #[must_use]
    pub fn with_moe(mut self, num_experts: u32, top_k: u32) -> Self {
        assert!(num_experts > 0, "num_experts must be nonzero");
        assert!(
            top_k > 0 && top_k <= num_experts,
            "top_k must be in 1..=num_experts"
        );
        self.moe = Some(MoeConfig { num_experts, top_k });
        self
    }

    /// GPT-3 175B: 96 layers, d=12288, FFN 49152, 96 heads (MHA), GELU.
    #[must_use]
    pub fn gpt3_175b() -> Self {
        ModelConfig::new("GPT-3 175B", 96, 12288, 49152, 96, 96, Activation::Gelu)
    }

    /// Llama 3 8B: 32 layers, d=4096, FFN 14336, 32 heads / 8 KV heads
    /// (GQA), SwiGLU.
    #[must_use]
    pub fn llama3_8b() -> Self {
        ModelConfig::new("Llama 3 8B", 32, 4096, 14336, 32, 8, Activation::SwiGlu)
    }

    /// Mixtral-8x7B-style mixture of experts: Llama-shaped layers with
    /// 8 experts, top-2 routing (an extension beyond the paper's Table 2).
    #[must_use]
    pub fn mixtral_8x7b() -> Self {
        ModelConfig::new("Mixtral 8x7B", 32, 4096, 14336, 32, 8, Activation::SwiGlu)
            .with_moe(8, 2)
    }

    /// Llama 3 70B: 80 layers, d=8192, FFN 28672, 64 heads / 8 KV heads.
    #[must_use]
    pub fn llama3_70b() -> Self {
        ModelConfig::new("Llama 3 70B", 80, 8192, 28672, 64, 8, Activation::SwiGlu)
    }

    /// GPT-3 13B: 40 layers, d=5140 rounded to 5120, 40 heads, GELU.
    #[must_use]
    pub fn gpt3_13b() -> Self {
        ModelConfig::new("GPT-3 13B", 40, 5120, 20480, 40, 40, Activation::Gelu)
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of Transformer layers.
    #[must_use]
    pub fn num_layers(&self) -> u32 {
        self.num_layers
    }

    /// Model (hidden) dimension.
    #[must_use]
    pub fn d_model(&self) -> u64 {
        self.d_model
    }

    /// Feed-forward inner dimension.
    #[must_use]
    pub fn d_ffn(&self) -> u64 {
        self.d_ffn
    }

    /// Number of attention (query) heads.
    #[must_use]
    pub fn num_heads(&self) -> u32 {
        self.num_heads
    }

    /// Number of key/value heads (`== num_heads` for MHA, fewer for GQA).
    #[must_use]
    pub fn num_kv_heads(&self) -> u32 {
        self.num_kv_heads
    }

    /// FFN activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Mixture-of-experts configuration, if any.
    #[must_use]
    pub fn moe(&self) -> Option<MoeConfig> {
        self.moe
    }

    /// Per-head dimension (`d_model / num_heads`).
    #[must_use]
    pub fn head_dim(&self) -> u64 {
        self.d_model / u64::from(self.num_heads)
    }

    /// Query heads per KV head (the GQA group size).
    #[must_use]
    pub fn gqa_group_size(&self) -> u32 {
        self.num_heads / self.num_kv_heads
    }

    /// Combined K+V dimension (`2 · num_kv_heads · head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> u64 {
        2 * u64::from(self.num_kv_heads) * self.head_dim()
    }

    /// Weight parameters in one layer (QKV + output projections + FFN;
    /// all experts counted for MoE models, plus the router).
    #[must_use]
    pub fn params_per_layer(&self) -> u64 {
        let qkv = self.d_model * (self.d_model + self.kv_dim());
        let out = self.d_model * self.d_model;
        let ffn = u64::from(self.activation.ffn_matmul_count()) * self.d_model * self.d_ffn;
        match self.moe {
            None => qkv + out + ffn,
            Some(moe) => {
                let router = self.d_model * u64::from(moe.num_experts);
                qkv + out + ffn * u64::from(moe.num_experts) + router
            }
        }
    }

    /// Weight parameters *activated* per token in one layer: attention
    /// plus the router and only the `top_k` experts a token actually
    /// visits. Equal to [`ModelConfig::params_per_layer`] for dense
    /// models. The activated/total split is the load-bearing number for
    /// MoE sanction analysis — compute ceilings track activated
    /// parameters while memory capacity tracks total.
    #[must_use]
    pub fn activated_params_per_layer(&self) -> u64 {
        let qkv = self.d_model * (self.d_model + self.kv_dim());
        let out = self.d_model * self.d_model;
        let ffn = u64::from(self.activation.ffn_matmul_count()) * self.d_model * self.d_ffn;
        match self.moe {
            None => qkv + out + ffn,
            Some(moe) => {
                let router = self.d_model * u64::from(moe.num_experts);
                qkv + out + ffn * u64::from(moe.top_k) + router
            }
        }
    }

    /// Total weight parameters across all layers (embeddings excluded —
    /// the paper simulates a single representative layer).
    #[must_use]
    pub fn total_params(&self) -> u64 {
        u64::from(self.num_layers) * self.params_per_layer()
    }

    /// Activated parameters per token across all layers.
    #[must_use]
    pub fn activated_params(&self) -> u64 {
        u64::from(self.num_layers) * self.activated_params_per_layer()
    }

    /// KV-cache bytes appended per token per layer, for a given operand
    /// size in bytes.
    #[must_use]
    pub fn kv_bytes_per_token_per_layer(&self, dtype_bytes: u64) -> u64 {
        self.kv_dim() * dtype_bytes
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, d={}, ffn={}, {} heads / {} KV, {})",
            self.name,
            self.num_layers,
            self.d_model,
            self.d_ffn,
            self.num_heads,
            self.num_kv_heads,
            self.activation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_matches_table2() {
        let m = ModelConfig::gpt3_175b();
        assert_eq!(m.num_layers(), 96);
        assert_eq!(m.d_model(), 12288);
        assert_eq!(m.d_ffn(), 49152);
        assert_eq!(m.num_heads(), 96);
        assert_eq!(m.num_kv_heads(), 96);
        assert_eq!(m.activation(), Activation::Gelu);
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.gqa_group_size(), 1);
    }

    #[test]
    fn llama3_matches_table2() {
        let m = ModelConfig::llama3_8b();
        assert_eq!(m.num_layers(), 32);
        assert_eq!(m.d_model(), 4096);
        assert_eq!(m.d_ffn(), 14336);
        assert_eq!(m.num_heads(), 32);
        assert_eq!(m.num_kv_heads(), 8);
        assert_eq!(m.activation(), Activation::SwiGlu);
        assert_eq!(m.gqa_group_size(), 4);
    }

    #[test]
    fn gpt3_param_count_is_about_175b() {
        // 96 layers of attention + FFN weights ≈ 174B (embeddings excluded).
        let total = ModelConfig::gpt3_175b().total_params() as f64;
        assert!(total > 165e9 && total < 180e9, "total = {total}");
    }

    #[test]
    fn llama3_param_count_is_about_7b_of_layer_weights() {
        // 8B model ≈ 6.98B of layer weights + ~1B embeddings.
        let total = ModelConfig::llama3_8b().total_params() as f64;
        assert!(total > 6.4e9 && total < 7.5e9, "total = {total}");
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let mha = ModelConfig::gpt3_175b();
        let gqa = ModelConfig::llama3_8b();
        // Per token per layer: GPT-3 stores 2*12288 values, Llama 2*1024.
        assert_eq!(mha.kv_bytes_per_token_per_layer(2), 2 * 12288 * 2);
        assert_eq!(gqa.kv_bytes_per_token_per_layer(2), 2 * 1024 * 2);
    }

    #[test]
    #[should_panic(expected = "num_kv_heads must divide num_heads")]
    fn rejects_ragged_gqa_groups() {
        let _ = ModelConfig::new("bad", 1, 4096, 16384, 32, 7, Activation::Gelu);
    }

    #[test]
    #[should_panic(expected = "num_heads must divide d_model")]
    fn rejects_non_dividing_heads() {
        let _ = ModelConfig::new("bad", 1, 4097, 16384, 32, 8, Activation::Gelu);
    }

    #[test]
    fn mixtral_moe_configuration() {
        let m = ModelConfig::mixtral_8x7b();
        let moe = m.moe().unwrap();
        assert_eq!(moe.num_experts, 8);
        assert_eq!(moe.top_k, 2);
        // ~46-47B of layer weights (8 experts of ~5.6B FFN + attention).
        let total = m.total_params() as f64;
        assert!(total > 4.2e10 && total < 5.0e10, "total = {total}");
        // Dense twin has 8x fewer FFN params.
        let dense = ModelConfig::llama3_8b();
        assert!(m.params_per_layer() > 5 * dense.params_per_layer());
    }

    #[test]
    fn expected_experts_touched_saturates() {
        let moe = MoeConfig { num_experts: 8, top_k: 2 };
        assert!(moe.expected_experts_touched(1) > 0.99);
        assert!(moe.expected_experts_touched(1) < 1.01);
        let many = moe.expected_experts_touched(10_000);
        assert!((many - 8.0).abs() < 1e-6, "all experts touched at scale");
        let some = moe.expected_experts_touched(8);
        assert!(some > 4.0 && some < 8.0);
    }

    #[test]
    #[should_panic(expected = "top_k must be in 1..=num_experts")]
    fn moe_rejects_oversized_top_k() {
        let _ = ModelConfig::llama3_8b().with_moe(4, 5);
    }

    #[test]
    fn llama70b_and_gpt13b_presets_are_plausible() {
        let l70 = ModelConfig::llama3_70b();
        let total = l70.total_params() as f64;
        assert!(total > 6.3e10 && total < 7.3e10, "llama-70B = {total}");
        let g13 = ModelConfig::gpt3_13b();
        let total13 = g13.total_params() as f64;
        assert!(total13 > 1.1e10 && total13 < 1.5e10, "gpt3-13B = {total13}");
    }

    #[test]
    fn display_contains_name_and_shape() {
        let s = ModelConfig::llama3_8b().to_string();
        assert!(s.contains("Llama 3 8B"));
        assert!(s.contains("SwiGLU"));
    }
}
