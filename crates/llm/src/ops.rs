//! Operators a Transformer layer lowers to.
//!
//! The operator vocabulary mirrors what LLMCompass costs: dense matmuls
//! (mapped onto the systolic arrays), low-arithmetic-intensity vector
//! operators (mapped onto the vector units), and inter-device collectives.

use std::fmt;

/// What the matmul's stationary (`B`) operand is. This determines reuse:
/// weight matrices are shared across the whole batch, while attention
/// operands (KV cache) are unique per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatmulKind {
    /// `B` is a weight matrix resident in HBM, shared by all batch items.
    Weight,
    /// `B` is an activation / KV-cache tensor (attention score and
    /// context matmuls).
    Activation,
}

/// One (possibly batched) dense matmul: `count` independent instances of
/// `[m × k] · [k × n]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatmulOp {
    /// Human-readable operator name (e.g. `"qkv_proj"`).
    pub name: &'static str,
    /// Rows of `A` (tokens for projections, query length for attention).
    pub m: u64,
    /// Columns of `B`.
    pub n: u64,
    /// Contraction dimension.
    pub k: u64,
    /// Number of independent instances (e.g. batch × heads for attention).
    pub count: u64,
    /// How many instances share one `B` operand (GQA group size for
    /// attention with grouped KV heads; 1 otherwise). Unique-`B` memory
    /// traffic is `count / b_shared_by` B-matrices.
    pub b_shared_by: u64,
    /// Operand role of `B`.
    pub kind: MatmulKind,
}

impl MatmulOp {
    /// Total multiply-accumulate operations (`count · m · n · k`).
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.count * self.m * self.n * self.k
    }

    /// Total floating-point operations (2 per MAC).
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Bytes of unique `A` operand at `dtype_bytes` per element.
    #[must_use]
    pub fn a_bytes(&self, dtype_bytes: u64) -> u64 {
        self.count * self.m * self.k * dtype_bytes
    }

    /// Bytes of unique `B` operand (deduplicating shared instances).
    #[must_use]
    pub fn b_bytes(&self, dtype_bytes: u64) -> u64 {
        (self.count / self.b_shared_by.max(1)).max(1) * self.k * self.n * dtype_bytes
    }

    /// Bytes of output written.
    #[must_use]
    pub fn out_bytes(&self, dtype_bytes: u64) -> u64 {
        self.count * self.m * self.n * dtype_bytes
    }

    /// Arithmetic intensity in FLOPs per byte of unique operand+output
    /// traffic.
    #[must_use]
    pub fn arithmetic_intensity(&self, dtype_bytes: u64) -> f64 {
        self.flops() as f64
            / (self.a_bytes(dtype_bytes) + self.b_bytes(dtype_bytes) + self.out_bytes(dtype_bytes))
                as f64
    }
}

/// Species of vector (non-matmul) operator, with per-element FLOP weights
/// reflecting their transcendental content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VectorKind {
    /// Row softmax over attention scores.
    Softmax,
    /// LayerNorm (mean + variance + scale/shift).
    LayerNorm,
    /// RMSNorm (variance + scale), used by Llama-family models.
    RmsNorm,
    /// GELU activation.
    Gelu,
    /// SiLU(gate) ⊙ up, the SwiGLU elementwise stage.
    SiluMul,
    /// Residual addition.
    ResidualAdd,
}

impl VectorKind {
    /// Approximate FLOPs per element (transcendentals weighted by their
    /// polynomial-approximation cost).
    #[must_use]
    pub fn flops_per_element(self) -> f64 {
        match self {
            VectorKind::Softmax => 5.0,
            VectorKind::LayerNorm => 6.0,
            VectorKind::RmsNorm => 4.0,
            VectorKind::Gelu => 8.0,
            VectorKind::SiluMul => 6.0,
            VectorKind::ResidualAdd => 1.0,
        }
    }

    /// Bytes of DRAM-visible traffic per element at `dtype_bytes`
    /// (inputs read + output written; SiluMul reads two inputs).
    #[must_use]
    pub fn bytes_per_element(self, dtype_bytes: u64) -> f64 {
        let streams = match self {
            VectorKind::SiluMul | VectorKind::ResidualAdd => 3.0,
            _ => 2.0,
        };
        streams * dtype_bytes as f64
    }
}

/// One vector operator over `elements` scalars.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorOp {
    /// Human-readable operator name.
    pub name: &'static str,
    /// Operator species.
    pub kind: VectorKind,
    /// Number of elements processed.
    pub elements: u64,
}

impl VectorOp {
    /// Total floating-point operations.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.elements as f64 * self.kind.flops_per_element()
    }

    /// Total DRAM-visible bytes.
    #[must_use]
    pub fn bytes(&self, dtype_bytes: u64) -> f64 {
        self.elements as f64 * self.kind.bytes_per_element(dtype_bytes)
    }
}

/// An all-reduce over the tensor-parallel group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AllReduceOp {
    /// Human-readable operator name.
    pub name: &'static str,
    /// Payload bytes per device.
    pub bytes: u64,
}

/// An all-to-all exchange over an expert-parallel group: every device
/// scatters its routed token activations to the devices holding the
/// selected experts and gathers the results back. MoE layers emit one
/// before (dispatch) and one after (combine) the expert FFN.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AllToAllOp {
    /// Human-readable operator name.
    pub name: &'static str,
    /// Payload bytes per device (the local token activations exchanged).
    pub bytes: u64,
    /// Expert-parallel group size the exchange spans. The group is a
    /// property of the operator, not of [`acs_hw::SystemConfig`]: the
    /// system's `device_count` remains the tensor-parallel degree.
    pub group: u32,
}

/// A single operator in a layer's execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Operator {
    /// Dense matmul on the systolic arrays.
    Matmul(MatmulOp),
    /// Elementwise / reduction operator on the vector units.
    Vector(VectorOp),
    /// Tensor-parallel all-reduce over the device PHYs.
    AllReduce(AllReduceOp),
    /// Expert-parallel all-to-all over the device PHYs.
    AllToAll(AllToAllOp),
}

impl Operator {
    /// Operator name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Matmul(op) => op.name,
            Operator::Vector(op) => op.name,
            Operator::AllReduce(op) => op.name,
            Operator::AllToAll(op) => op.name,
        }
    }

    /// Floating-point operations performed (0 for collectives).
    #[must_use]
    pub fn flops(&self) -> f64 {
        match self {
            Operator::Matmul(op) => op.flops() as f64,
            Operator::Vector(op) => op.flops(),
            Operator::AllReduce(_) | Operator::AllToAll(_) => 0.0,
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Matmul(op) => write!(
                f,
                "matmul {}: {}x[{} x {} x {}]",
                op.name, op.count, op.m, op.k, op.n
            ),
            Operator::Vector(op) => {
                write!(f, "vector {}: {} elements ({:?})", op.name, op.elements, op.kind)
            }
            Operator::AllReduce(op) => write!(f, "allreduce {}: {} bytes", op.name, op.bytes),
            Operator::AllToAll(op) => {
                write!(f, "alltoall {}: {} bytes over {} devices", op.name, op.bytes, op.group)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(m: u64, n: u64, k: u64, count: u64, shared: u64) -> MatmulOp {
        MatmulOp { name: "t", m, n, k, count, b_shared_by: shared, kind: MatmulKind::Weight }
    }

    #[test]
    fn matmul_flops_counts_two_per_mac() {
        let op = mm(4, 8, 16, 2, 1);
        assert_eq!(op.macs(), 2 * 4 * 8 * 16);
        assert_eq!(op.flops(), 2 * op.macs());
    }

    #[test]
    fn shared_b_deduplicates_traffic() {
        // 8 instances sharing one B in groups of 4 => 2 unique B reads.
        let op = mm(1, 64, 128, 8, 4);
        assert_eq!(op.b_bytes(2), 2 * 64 * 128 * 2);
        // Unshared reads 8 copies.
        let unshared = mm(1, 64, 128, 8, 1);
        assert_eq!(unshared.b_bytes(2), 8 * 64 * 128 * 2);
    }

    #[test]
    fn arithmetic_intensity_grows_with_m() {
        let tall = mm(4096, 4096, 4096, 1, 1);
        let skinny = mm(32, 4096, 4096, 1, 1);
        assert!(tall.arithmetic_intensity(2) > skinny.arithmetic_intensity(2));
        // Decode-shaped matmuls are memory bound: intensity < 64 FLOPs/B.
        assert!(skinny.arithmetic_intensity(2) < 64.0);
    }

    #[test]
    fn vector_op_flops_and_bytes() {
        let op = VectorOp { name: "sm", kind: VectorKind::Softmax, elements: 1000 };
        assert!((op.flops() - 5000.0).abs() < 1e-9);
        assert!((op.bytes(2) - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn silu_mul_reads_two_inputs() {
        assert!(
            VectorKind::SiluMul.bytes_per_element(2) > VectorKind::Gelu.bytes_per_element(2)
        );
    }

    #[test]
    fn operator_display_is_informative() {
        let op = Operator::Matmul(mm(32, 64, 128, 1, 1));
        let s = op.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("128"));
    }

    #[test]
    fn allreduce_has_zero_flops() {
        let op = Operator::AllReduce(AllReduceOp { name: "ar", bytes: 1 << 20 });
        assert_eq!(op.flops(), 0.0);
    }
}
