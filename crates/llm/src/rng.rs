//! A small deterministic PRNG for synthetic trace generation.
//!
//! The offline build has no access to the `rand` crate, so trace
//! synthesis uses this hand-rolled SplitMix64 generator instead. It is
//! not cryptographic; it is fast, seedable, and statistically adequate
//! for Poisson arrivals and log-normal lengths (the only consumers).

/// SplitMix64: one 64-bit multiply-xorshift step per output.
///
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014) — the standard seeding generator for
/// xoshiro-family PRNGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal sequences.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in the open interval `(0, 1)` — safe as a log or
    /// Box–Muller argument.
    pub fn next_open_f64(&mut self) -> f64 {
        self.next_f64().max(f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map({ let mut r = SplitMix64::new(7); move |_| r.next_u64() }).collect();
        let b: Vec<u64> = (0..8).map({ let mut r = SplitMix64::new(7); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8).map({ let mut r = SplitMix64::new(8); move |_| r.next_u64() }).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn matches_reference_vector() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn doubles_are_in_unit_interval_and_spread() {
        let mut r = SplitMix64::new(42);
        let xs: Vec<f64> = (0..10_000).map(|_| r.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        let mut lo = 0;
        for &x in &xs {
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4700..5300).contains(&lo), "lo = {lo}");
    }

    #[test]
    fn open_interval_never_returns_zero() {
        let mut r = SplitMix64::new(0);
        for _ in 0..10_000 {
            let x = r.next_open_f64();
            assert!(x > 0.0 && x < 1.0);
            assert!(x.ln().is_finite());
        }
    }
}
