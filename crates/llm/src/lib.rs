//! LLM workload descriptions and operator graphs for analytical hardware
//! simulation.
//!
//! This crate models the two workloads of the paper's evaluation —
//! GPT-3 175B and Llama 3 8B (Table 2) — as stacks of identical
//! decoder-only Transformer layers, and lowers one layer into the operator
//! sequence a tensor-parallel accelerator node executes:
//!
//! * [`ModelConfig`] — model hyperparameters (layers, model/FFN dimensions,
//!   attention and KV heads, activation function).
//! * [`WorkloadConfig`] — inference request shape (batch, input length,
//!   output length); the paper uses batch 32 × 2048 in × 1024 out.
//! * [`graph::layer_ops`] — the per-layer operator graph for either
//!   inference phase under a given tensor-parallel degree, expressed as
//!   [`Operator`]s a simulator can cost.
//!
//! # Example
//!
//! ```
//! use acs_llm::{graph, InferencePhase, ModelConfig, WorkloadConfig};
//!
//! let gpt3 = ModelConfig::gpt3_175b();
//! let work = WorkloadConfig::paper_default();
//! let ops = graph::layer_ops(&gpt3, &work, InferencePhase::Prefill, 4);
//! assert!(ops.len() > 8, "a Transformer layer has many operators");
//! ```

pub mod graph;
pub mod model;
pub mod ops;
pub mod partition;
pub mod rng;
pub mod traces;
pub mod workload;

pub use graph::LayerGraph;
pub use model::{Activation, ModelConfig, MoeConfig};
pub use ops::{AllReduceOp, AllToAllOp, MatmulKind, MatmulOp, Operator, VectorKind, VectorOp};
pub use partition::pipeline_stage_layers;
pub use traces::{LengthDistribution, Request, RequestTrace};
pub use workload::{InferencePhase, WorkloadConfig};
