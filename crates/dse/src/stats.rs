//! Distribution statistics for the architecture-first-indicator analysis.
//!
//! The paper quantifies how well a constraint predicts performance by how
//! much it *narrows* a latency distribution: the ratio of the full
//! design-space range to the fixed-parameter subset's range (e.g.
//! "42.4× narrower", §5.3).

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarise a sample. Returns `None` for an empty sample or one
    /// containing non-finite values.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let quantile = |q: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Some(Distribution {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }

    /// Full range (`max − min`).
    #[must_use]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.count, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// How many times narrower `subset`'s range is than `full`'s
/// (the paper's "Nx narrower distribution" metric).
///
/// Returns infinity when the subset is degenerate (zero range) and the
/// full range is not.
#[must_use]
pub fn narrowing_factor(full: &Distribution, subset: &Distribution) -> f64 {
    if subset.range() == 0.0 {
        if full.range() == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        full.range() / subset.range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let d = Distribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.q1, 2.0);
        assert_eq!(d.q3, 4.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.range(), 4.0);
        assert_eq!(d.iqr(), 2.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        assert_eq!(d.median, 5.0);
        assert_eq!(d.q1, 2.5);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Distribution::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        let b = Distribution::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_nan_samples_are_rejected() {
        assert!(Distribution::from_samples(&[]).is_none());
        assert!(Distribution::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Distribution::from_samples(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn narrowing_factor_matches_definition() {
        let full = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        let sub = Distribution::from_samples(&[4.0, 6.0]).unwrap();
        assert_eq!(narrowing_factor(&full, &sub), 5.0);
    }

    #[test]
    fn degenerate_subset_is_infinitely_narrow() {
        let full = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        let point = Distribution::from_samples(&[5.0, 5.0]).unwrap();
        assert!(narrowing_factor(&full, &point).is_infinite());
        assert_eq!(narrowing_factor(&point, &point), 1.0);
    }

    #[test]
    fn single_sample_distribution() {
        let d = Distribution::from_samples(&[7.0]).unwrap();
        assert_eq!(d.min, 7.0);
        assert_eq!(d.max, 7.0);
        assert_eq!(d.range(), 0.0);
    }
}
