//! Distribution statistics for the architecture-first-indicator analysis.
//!
//! The paper quantifies how well a constraint predicts performance by how
//! much it *narrows* a latency distribution: the ratio of the full
//! design-space range to the fixed-parameter subset's range (e.g.
//! "42.4× narrower", §5.3).

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Summarise a sample. Returns `None` for an empty sample or one
    /// containing non-finite values.
    ///
    /// Only eight order statistics are ever read (min, max, and the two
    /// neighbouring ranks of each quartile), so the sample is never fully
    /// sorted: each needed rank is pulled with `select_nth_unstable_by`
    /// on the suffix left by the previous (ascending) rank — O(n) in
    /// total instead of O(n log n), and the selected elements are exactly
    /// the sorted array's, so every quantile is bit-identical to the
    /// full-sort implementation this replaces.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let pos = |q: f64| q * (n - 1) as f64;
        let mut ranks = vec![0, n - 1];
        for q in [0.25, 0.5, 0.75] {
            ranks.push(pos(q).floor() as usize);
            ranks.push(pos(q).ceil() as usize);
        }
        ranks.sort_unstable();
        ranks.dedup();
        let mut scratch = samples.to_vec();
        let mut values = Vec::with_capacity(ranks.len());
        let mut offset = 0;
        for &r in &ranks {
            let (_, v, _) = scratch[offset..].select_nth_unstable_by(r - offset, f64::total_cmp);
            values.push(*v);
            offset = r;
        }
        // Every rank was pushed above, so the search cannot miss; the
        // fallback index keeps the lookup total without a panic path.
        let at = |r: usize| values[ranks.binary_search(&r).unwrap_or(0)];
        let quantile = |q: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let p = pos(q);
            let lo = p.floor() as usize;
            let hi = p.ceil() as usize;
            let frac = p - lo as f64;
            at(lo) * (1.0 - frac) + at(hi) * frac
        };
        Some(Distribution {
            count: n,
            min: at(0),
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: at(n - 1),
            mean,
        })
    }

    /// Full range (`max − min`).
    #[must_use]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.count, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// How many times narrower `subset`'s range is than `full`'s
/// (the paper's "Nx narrower distribution" metric).
///
/// Returns infinity when the subset is degenerate (zero range) and the
/// full range is not.
#[must_use]
pub fn narrowing_factor(full: &Distribution, subset: &Distribution) -> f64 {
    if subset.range() == 0.0 {
        if full.range() == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        full.range() / subset.range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let d = Distribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.q1, 2.0);
        assert_eq!(d.q3, 4.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.range(), 4.0);
        assert_eq!(d.iqr(), 2.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        assert_eq!(d.median, 5.0);
        assert_eq!(d.q1, 2.5);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Distribution::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        let b = Distribution::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_nan_samples_are_rejected() {
        assert!(Distribution::from_samples(&[]).is_none());
        assert!(Distribution::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Distribution::from_samples(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn narrowing_factor_matches_definition() {
        let full = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        let sub = Distribution::from_samples(&[4.0, 6.0]).unwrap();
        assert_eq!(narrowing_factor(&full, &sub), 5.0);
    }

    #[test]
    fn degenerate_subset_is_infinitely_narrow() {
        let full = Distribution::from_samples(&[0.0, 10.0]).unwrap();
        let point = Distribution::from_samples(&[5.0, 5.0]).unwrap();
        assert!(narrowing_factor(&full, &point).is_infinite());
        assert_eq!(narrowing_factor(&point, &point), 1.0);
    }

    #[test]
    fn quantile_outputs_are_pinned() {
        // Exact values from the linear-interpolation definition, pinned
        // so the selection-based implementation cannot drift from the
        // full-sort one it replaced.
        let d =
            Distribution::from_samples(&[2.0, 9.0, 4.0, 1.0, 7.0, 5.0, 8.0, 3.0, 6.0]).unwrap();
        assert_eq!((d.min, d.q1, d.median, d.q3, d.max), (1.0, 3.0, 5.0, 7.0, 9.0));
        // Even sample size: both quartiles interpolate between ranks.
        let d = Distribution::from_samples(&[40.0, 10.0, 30.0, 20.0]).unwrap();
        assert_eq!((d.q1, d.median, d.q3), (17.5, 25.0, 32.5));
        assert_eq!(d.mean, 25.0);
    }

    #[test]
    fn single_sample_distribution() {
        let d = Distribution::from_samples(&[7.0]).unwrap();
        assert_eq!(d.min, 7.0);
        assert_eq!(d.max, 7.0);
        assert_eq!(d.range(), 0.0);
    }
}
