//! Lattice-algebra sweep evaluation: price the grid, not the points.
//!
//! The factored path (`crate::factored`) memoizes priced legs per
//! dependency key but still re-combines every point scalar-by-scalar:
//! per point it builds a device, hashes three keys, takes a lock, and
//! walks the per-op guard chain twice. This module finishes the
//! dependency-key argument. Each leg is evaluated once as a
//! structure-of-arrays vector indexed by only the axes in its
//! `ComputeKey`/`MemoryKey`/`CommKey`, the per-op guards are hoisted
//! into a one-time cleanliness proof per vector
//! ([`acs_sim::CombineProgram`]), and a grid point collapses to a few
//! dozen additions over pre-fused vectors plus the scalar area/cost
//! pipeline assembled from per-axis components — the outer-product
//! broadcast LLMCompass applies to analytical design spaces.
//!
//! Exactness discipline: the fast path replicates the factored path's
//! guard *order* (area, TPP, perf density, system, plans, die costs,
//! TTFT, TBT) with cheap per-point checks; any check that would fail —
//! or any precondition the broadcast cannot prove (unclean fused
//! vectors, probe failure, invalid candidate) — demotes that point to
//! the factored per-point evaluator, which reproduces the exact typed
//! error, bit for bit. Healthy points take the broadcast; the result is
//! bit-identical either way, a guarantee pinned by
//! `tests/lattice_equivalence.rs` with the same golden-digest
//! discipline as `tests/factored_equivalence.rs`.
//!
//! On top of the exact engine, [`DseRunner::screen_lattice`] adds
//! monotonic branch-and-bound: every leg (and the area/cost pipeline)
//! is componentwise monotone in its axes, so the componentwise minimum
//! over a sub-grid's corners lower-bounds both objectives over the
//! whole sub-grid; boxes whose bound is strictly dominated by the
//! current Pareto front — or whose TPP cannot reach `min_tpp` — are
//! skipped unpriced. Ties are never pruned (a bound equal to a front
//! point on both objectives does not dominate), so designs exactly at a
//! threshold always materialize. Adaptive refinement then inserts axis
//! midpoints wherever the October 2023 compliance flag flips between
//! grid neighbours, sharpening the sweep around the TPP/PD threshold
//! crossovers the paper's analysis turns on.

use crate::evaluate::{DseRunner, EvaluatedDesign, SweptParams};
use crate::factored::FxMap;
use crate::pareto::pareto_front;
use crate::report::{DesignFailure, SweepReport};
use crate::sweeps::{CandidateParams, SweepSpec};
use acs_errors::AcsError;
use acs_hw::tpp::cores_for_tpp;
use acs_hw::{DataType, DeviceConfig, SystemConfig, SystolicDims, RETICLE_LIMIT_MM2};
use acs_sim::{CombineProgram, CommKey, ComputeKey, EvalPlans, FusedLegs, LegKeys, MemoryKey, Simulator};
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, PoisonError, RwLock};

/// Both phases' fused vectors of one signature (an on-chip pair or a
/// comm key), with the conjunction of their cleanliness proofs hoisted
/// out so the per-point check is one local bool instead of four pointer
/// chases. Storing the phases together costs one table lookup per
/// signature instead of two — every sweep needs both phases anyway.
#[derive(Debug)]
struct PairFused {
    prefill: FusedLegs,
    decode: FusedLegs,
    clean: bool,
}

impl PairFused {
    fn of(prefill: FusedLegs, decode: FusedLegs) -> Self {
        let clean = prefill.clean && decode.clean;
        PairFused { prefill, decode, clean }
    }
}

/// Fused-vector tables: one both-phase on-chip entry per (compute,
/// memory) key pair, one both-phase comm entry per comm key. Persistent
/// across sweeps through the runner (and through `AppState` in the
/// server), so repeated `/v1/screen` grids and what-if fleets re-fuse
/// nothing.
#[derive(Debug, Default)]
struct FusedTables {
    onchip: RwLock<FxMap<(ComputeKey, MemoryKey), Arc<PairFused>>>,
    comm: RwLock<FxMap<CommKey, Arc<PairFused>>>,
}

impl FusedTables {
    fn get_onchip(&self, key: &(ComputeKey, MemoryKey)) -> Option<Arc<PairFused>> {
        self.onchip.read().unwrap_or_else(PoisonError::into_inner).get(key).cloned()
    }

    fn put_onchip(&self, key: (ComputeKey, MemoryKey), fused: PairFused) -> Arc<PairFused> {
        let mut map = self.onchip.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(fused)))
    }

    fn get_comm(&self, key: &CommKey) -> Option<Arc<PairFused>> {
        self.comm.read().unwrap_or_else(PoisonError::into_inner).get(key).cloned()
    }

    fn put_comm(&self, key: CommKey, fused: PairFused) -> Arc<PairFused> {
        let mut map = self.comm.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(fused)))
    }
}

/// The lattice tables of one runner: per-phase fused vectors plus the
/// per-dtype combine programs. Reset wherever the factored leg tables
/// reset (device count, expert parallelism, datatype, calibration) —
/// the fused values bake in the launch overhead and the priced legs.
#[derive(Debug, Default)]
pub(crate) struct LatticeSlot {
    fused: FusedTables,
    programs: RwLock<FxMap<u32, Arc<ProgramPair>>>,
    /// Probe-derived per-signature constants, cached across sweeps.
    /// Sound because every cached field depends only on the axes in its
    /// own signature (the same invariant the broadcast itself rests on),
    /// and each successful probe has already priced its leg into the
    /// runner's persistent factored tables, which never evict. Failed
    /// probes are not cached: failure can depend on the sweep's base
    /// point, so they re-probe.
    csig_cache: RwLock<FxMap<(u32, u32, u32, u32), ComputeSigData>>,
    msig_cache: RwLock<FxMap<(u32, u64), MemorySigData>>,
    wsig_cache: RwLock<FxMap<u64, CommSigData>>,
    /// Evaluated grid cells, cached across sweeps: every numeric output
    /// of the fast point path is a pure function of the (compute,
    /// memory, comm) key triple for a fixed runner (plans, programs,
    /// calibration, cost and area models are all frozen at construction,
    /// and this slot resets whenever any of them changes). A hit replays
    /// the stored bits; only the candidate's name is per-point. Cells
    /// are recorded only for points that passed every guard — a point
    /// that demotes to the factored fallback is never cached, so the
    /// unclean corner re-prices (and re-reports) exactly every time.
    cells: RwLock<FxMap<CellKey, CellNumbers>>,
}

/// The full dependency signature of one grid cell.
type CellKey = (ComputeKey, MemoryKey, CommKey);

/// Every field of an [`EvaluatedDesign`] that is a function of the cell
/// key alone — everything except the candidate's name and the swept
/// integer parameters (which equal the key's own axes).
#[derive(Debug, Clone, Copy)]
struct CellNumbers {
    hbm_tb_s: f64,
    device_bw_gb_s: f64,
    tpp: f64,
    die_area_mm2: f64,
    perf_density: f64,
    die_cost_usd: f64,
    good_die_cost_usd: f64,
    ttft_s: f64,
    tbt_s: f64,
    within_reticle: bool,
    pd_unregulated_2023: bool,
}

/// The compiled combine loops of one dtype's plan pair.
#[derive(Debug)]
struct ProgramPair {
    prefill: CombineProgram,
    decode: CombineProgram,
}

impl LatticeSlot {
    /// The combine programs for one dtype width, compiled at most once
    /// per runner (read-mostly after the first point of a sweep).
    fn programs_for(&self, plans: &EvalPlans, dtype_bytes: u32) -> Arc<ProgramPair> {
        if let Some(pair) =
            self.programs.read().unwrap_or_else(PoisonError::into_inner).get(&dtype_bytes)
        {
            return Arc::clone(pair);
        }
        let built = Arc::new(ProgramPair {
            prefill: CombineProgram::of(&plans.prefill),
            decode: CombineProgram::of(&plans.decode),
        });
        let mut map = self.programs.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(dtype_bytes).or_insert(built))
    }
}

/// Resolve each signature key through one of [`LatticeSlot`]'s
/// persistent probe caches: a single read-lock pass serves the hits,
/// the misses probe, and a single write-lock pass publishes the
/// successful new entries. Failed probes are returned but never cached.
fn cached_sig_data<K, D>(
    cache: &RwLock<FxMap<K, D>>,
    keys: &[K],
    probe: impl Fn(&K) -> Option<D>,
) -> Vec<Option<D>>
where
    K: std::hash::Hash + Eq + Copy,
    D: Copy,
{
    let mut out: Vec<Option<D>> = vec![None; keys.len()];
    let mut misses: Vec<usize> = Vec::new();
    {
        let map = cache.read().unwrap_or_else(PoisonError::into_inner);
        for (at, (slot, key)) in out.iter_mut().zip(keys).enumerate() {
            match map.get(key) {
                Some(&d) => *slot = Some(d),
                None => misses.push(at),
            }
        }
    }
    if misses.is_empty() {
        return out;
    }
    for &at in &misses {
        out[at] = probe(&keys[at]);
    }
    let mut map = cache.write().unwrap_or_else(PoisonError::into_inner);
    for &at in &misses {
        if let Some(d) = out[at] {
            map.insert(keys[at], d);
        }
    }
    out
}

static FUSED_HIT: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.fused_hit");
static FUSED_BUILT: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.fused_built");
static FAST_POINTS: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.fast_points");
static FALLBACK_POINTS: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.fallback_points");
static CELL_HIT: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.cell_hit");
static CELL_BUILT: acs_telemetry::GlobalCounter =
    acs_telemetry::GlobalCounter::new("dse.lattice.cell_built");

/// Whether any point of `front` strictly dominates `bound` (no worse on
/// both objectives, strictly better on at least one, minimizing).
///
/// This is the branch-and-bound prune test, and its strictness is the
/// tie-safety argument: a sub-grid whose best-corner bound *equals* a
/// front point on both objectives is never pruned, so an interior
/// design tying the front always materializes. Soundness: the bound is
/// componentwise ≤ every point in the sub-grid, so a strict dominator
/// of the bound strictly dominates every interior point — none of which
/// can therefore sit on the exact Pareto front.
#[must_use]
pub fn bound_is_dominated(front: &[(f64, f64)], bound: (f64, f64)) -> bool {
    front.iter().any(|f| {
        f.0 <= bound.0 && f.1 <= bound.1 && (f.0 < bound.0 || f.1 < bound.1)
    })
}

/// Insert one evaluated objective pair into an incremental front,
/// dropping it if dominated and evicting anything it dominates.
/// Equal-valued points are kept (duplicates survive, matching
/// [`pareto_front`]'s tie handling).
fn push_front(front: &mut Vec<(f64, f64)>, p: (f64, f64)) {
    if !p.0.is_finite() || !p.1.is_finite() {
        return;
    }
    if bound_is_dominated(front, p) {
        return;
    }
    front.retain(|f| !(p.0 <= f.0 && p.1 <= f.1 && (p.0 < f.0 || p.1 < f.1)));
    front.push(p);
}

/// Options for [`DseRunner::screen_lattice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeScreenOptions {
    /// Skip compute sub-grids whose achieved TPP is strictly below this
    /// floor. Designs exactly at the floor are never pruned.
    pub min_tpp: Option<f64>,
    /// Branch-and-bound pruning against the incremental Pareto front.
    /// With pruning off the screen materializes every feasible point
    /// (the exact reference the differential harness compares against).
    pub prune: bool,
    /// Rounds of adaptive refinement around October 2023 compliance
    /// crossovers (0 = base grid only).
    pub refine_rounds: u32,
}

impl Default for LatticeScreenOptions {
    fn default() -> Self {
        LatticeScreenOptions { min_tpp: None, prune: true, refine_rounds: 0 }
    }
}

/// Materialization accounting of one screen run, mirrored into the
/// `dse.lattice.*` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// Grid cardinality before feasibility, pruning, or refinement.
    pub nominal_points: u64,
    /// Points actually priced (base grid + refined).
    pub materialized_points: u64,
    /// Points of (dim, lanes) pairs with no feasible core count.
    pub infeasible_points: u64,
    /// Sub-grids skipped by the bound test or the TPP floor.
    pub pruned_boxes: u64,
    /// Points never priced because their sub-grid was pruned.
    pub pruned_points: u64,
    /// Materialized points whose evaluation failed.
    pub failed_points: u64,
    /// Refinement rounds that inserted at least one new point.
    pub refinement_rounds: u64,
    /// Off-grid points added by refinement.
    pub refined_points: u64,
}

/// Result of a pruned/refined lattice screen.
#[derive(Debug, Clone)]
pub struct LatticeScreen {
    /// Every successfully materialized design (base grid + refined).
    pub designs: Vec<EvaluatedDesign>,
    /// Indices into `designs` of the (TBT, good-die-cost) Pareto front.
    pub front: Vec<usize>,
    /// Materialization accounting.
    pub stats: LatticeStats,
}

/// One compute signature's probe-derived constants: the dependency key,
/// the area components that depend only on compute axes (assembled in
/// the exact left-to-right order of `AreaBreakdown::total_mm2`), and
/// the achieved TPP.
#[derive(Debug, Clone, Copy)]
struct ComputeSigData {
    key: ComputeKey,
    /// `(systolic + vector) + l1` — the first three addends.
    partial_area: f64,
    control: f64,
    fixed: f64,
    tpp: f64,
}

/// One memory signature's constants: key, L2 and HBM-PHY area addends,
/// and the probe's round-tripped bandwidth for `SweptParams`.
#[derive(Debug, Clone, Copy)]
struct MemorySigData {
    key: MemoryKey,
    l2_area: f64,
    hbm_phy_area: f64,
    hbm_tb_s: f64,
}

/// One comm signature's constants: key (expert-parallel width already
/// folded in), device-PHY area addend, round-tripped total bandwidth.
#[derive(Debug, Clone, Copy)]
struct CommSigData {
    key: CommKey,
    device_phy_area: f64,
    device_bw_gb_s: f64,
}

/// The per-sweep broadcast context: plans, programs, signature tables,
/// and fused vectors, shared read-only by the point workers. The fused
/// tables are dense — a pair lives at `ci * n_msigs + mi`, a comm at
/// `wi` — so the per-point path is two indexed loads, no hashing.
struct SweepCtx<'a> {
    plans: Arc<EvalPlans>,
    programs: Arc<ProgramPair>,
    csig_data: Vec<Option<ComputeSigData>>,
    msig_data: Vec<Option<MemorySigData>>,
    wsig_data: Vec<Option<CommSigData>>,
    /// Per candidate index: (compute, memory, comm) signature indices,
    /// `None` when the candidate fails validation.
    point_sigs: Vec<Option<(u32, u32, u32)>>,
    n_msigs: usize,
    /// Fused on-chip vectors, dense over (csig, msig); `None` demotes.
    pairs: Vec<Option<Arc<PairFused>>>,
    /// Fused comm vectors, dense over comm signatures.
    comms: Vec<Option<Arc<PairFused>>>,
    /// The runner's persistent cell table, read-locked for the whole
    /// point stage (fresh cells are published after the stage, so the
    /// guard never blocks a writer it waits on).
    cells: &'a FxMap<CellKey, CellNumbers>,
}

impl DseRunner {
    /// [`DseRunner::try_evaluate`] through the lattice pricing path:
    /// fused per-plan vectors instead of per-op combine loops,
    /// bit-identical results. Single points share the runner's
    /// persistent fused tables, so a service screening one design reuses
    /// every earlier request's fusions.
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_lattice(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        self.try_evaluate_lattice_shared(&Arc::new(config.clone()))
    }

    /// [`DseRunner::try_evaluate_lattice`] for a configuration that is
    /// already shared. Consults the runner's evaluation cache, when
    /// configured, under the same key as the planned path — safe because
    /// the paths produce bit-identical designs.
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_lattice_shared(
        &self,
        config: &Arc<DeviceConfig>,
    ) -> Result<EvaluatedDesign, AcsError> {
        let retyped = self.retyped(config)?;
        let config = retyped.as_ref().unwrap_or(config);
        match &self.cache {
            Some(cache) => {
                let key = self.cache_key(config);
                let (design, hit) =
                    cache.get_or_try_insert(&key, || self.evaluate_lattice(config))?;
                // Same counters as the planned path: callers care about
                // evaluation-cache traffic, not which pricing path
                // filled a miss.
                static HITS: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.hits");
                static MISSES: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.misses");
                if hit {
                    HITS.add(1);
                } else {
                    MISSES.add(1);
                }
                Ok(design)
            }
            None => self.evaluate_lattice(config),
        }
    }

    /// The lattice mirror of `evaluate_factored`: identical guard
    /// contexts in identical order, with the per-op combine loops
    /// replaced by pre-fused vector sums when the fused vectors are
    /// clean, and the factored combine otherwise (whose per-op guards
    /// reproduce the exact error).
    fn evaluate_lattice(&self, config: &Arc<DeviceConfig>) -> Result<EvaluatedDesign, AcsError> {
        use acs_errors::guard;
        let ctx = || format!("evaluate.{}", config.name());
        let area = guard::ensure_positive_with(
            ctx,
            "die_area_mm2",
            self.area_model.die_area(config).total_mm2(),
        )?;
        let tpp = guard::ensure_positive_with(ctx, "tpp", config.tpp().0)?;
        let pd = guard::ensure_positive_with(ctx, "perf_density", tpp / area)?;
        let system = SystemConfig::shared(Arc::clone(config), self.device_count)?;
        let sim = Simulator::with_params(system, self.sim_params);
        let plans = self.plans_for(config.datatype().bytes())?;
        let die_cost_usd =
            guard::ensure_positive_with(ctx, "die_cost_usd", self.cost_model.die_cost_usd(area))?;
        let good_die_cost_usd = guard::ensure_positive_with(
            ctx,
            "good_die_cost_usd",
            self.cost_model.good_die_cost_usd(area),
        )?;
        let mut keys = LegKeys::of(sim.system());
        keys.comm.expert_parallel = plans.prefill.expert_parallel();
        let programs = self.lattice.programs_for(&plans, config.datatype().bytes());
        let onchip = self.fused_onchip_pair(&sim, &plans, &keys, &programs);
        let comm = self.fused_comm_pair(&sim, &plans, &keys, &programs);
        let (ttft_s, tbt_s) = if onchip.clean && comm.clean {
            (
                programs.prefill.try_ttft(&onchip.prefill.values, &comm.prefill.values)?,
                programs.decode.try_tbt(&onchip.decode.values, &comm.decode.values)?,
            )
        } else {
            // Unclean legs: the factored combine's per-op guards name
            // the exact failing operator.
            (
                self.factored.prefill.with_legs(&sim, &plans.prefill, &keys, |c, m, w| {
                    sim.try_ttft_factored(&plans.prefill, c, m, w)
                })?,
                self.factored.decode.with_legs(&sim, &plans.decode, &keys, |c, m, w| {
                    sim.try_tbt_factored(&plans.decode, c, m, w)
                })?,
            )
        };
        Ok(EvaluatedDesign {
            name: config.name().to_owned(),
            params: SweptParams::of(config),
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd,
            good_die_cost_usd,
            ttft_s,
            tbt_s,
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        })
    }

    /// Look up (or build, pricing both phases' legs) the both-phase
    /// fused on-chip entry of one (compute, memory) key pair.
    fn fused_onchip_pair(
        &self,
        sim: &Simulator,
        plans: &EvalPlans,
        keys: &LegKeys,
        programs: &ProgramPair,
    ) -> Arc<PairFused> {
        let pair_key = (keys.compute, keys.memory);
        if let Some(f) = self.lattice.fused.get_onchip(&pair_key) {
            FUSED_HIT.add(1);
            return f;
        }
        let overhead = self.sim_params.op_overhead_s;
        let (cp, mp, _) = self.factored.prefill.legs_for(sim, &plans.prefill, keys);
        let (cd, md, _) = self.factored.decode.legs_for(sim, &plans.decode, keys);
        FUSED_BUILT.add(1);
        self.lattice.fused.put_onchip(
            pair_key,
            PairFused::of(
                programs.prefill.fuse_onchip(&cp, &mp, overhead),
                programs.decode.fuse_onchip(&cd, &md, overhead),
            ),
        )
    }

    /// Look up (or build) the both-phase fused comm entry of one comm
    /// key.
    fn fused_comm_pair(
        &self,
        sim: &Simulator,
        plans: &EvalPlans,
        keys: &LegKeys,
        programs: &ProgramPair,
    ) -> Arc<PairFused> {
        if let Some(f) = self.lattice.fused.get_comm(&keys.comm) {
            FUSED_HIT.add(1);
            return f;
        }
        let overhead = self.sim_params.op_overhead_s;
        let (_, _, wp) = self.factored.prefill.legs_for(sim, &plans.prefill, keys);
        let (_, _, wd) = self.factored.decode.legs_for(sim, &plans.decode, keys);
        FUSED_BUILT.add(1);
        self.lattice.fused.put_comm(
            keys.comm,
            PairFused::of(
                programs.prefill.fuse_comm(&wp, overhead),
                programs.decode.fuse_comm(&wd, overhead),
            ),
        )
    }

    /// [`DseRunner::run_report`] through the lattice broadcast engine:
    /// same fault isolation, same designs and failure ledger bit for
    /// bit, with healthy points priced as vector sums grouped by compute
    /// signature instead of per-point graph work.
    #[must_use]
    pub fn run_report_lattice(&self, candidates: &[CandidateParams]) -> SweepReport {
        if self.cache.is_some() {
            // Evaluation-cache traffic is per point; route through the
            // per-point lattice path so hits, misses, and insertions
            // match the factored path's accounting exactly.
            let outcomes = self.parallel_map(
                candidates,
                |cand| cand.name.as_str(),
                |cand| {
                    cand.build().map(Arc::new).and_then(|cfg| self.try_evaluate_lattice_shared(&cfg))
                },
            );
            return self.collect_report(candidates, outcomes);
        }
        match self.lattice_sweep_outcomes(candidates) {
            Some(report) => report,
            // A sweep-wide precondition failed (no valid candidate,
            // plans, zero device count, or a pathological calibration):
            // every point prices identically through the factored path.
            None => self.run_report_factored(candidates),
        }
    }

    /// [`DseRunner::run_configs`] through the lattice pricing path:
    /// order- and length-preserving, one `Result` per configuration.
    #[must_use]
    pub fn run_configs_lattice(
        &self,
        configs: &[DeviceConfig],
    ) -> Vec<Result<EvaluatedDesign, AcsError>> {
        self.parallel_map(configs, |cfg| cfg.name(), |cfg| self.try_evaluate_lattice(cfg))
    }

    /// Evaluate a whole sweep at a TPP ceiling through the lattice
    /// engine, pre-sizing the leg tables to the spec's distinct key
    /// counts like [`DseRunner::run_factored`].
    #[must_use]
    pub fn run_lattice(&self, spec: &SweepSpec, tpp_target: f64) -> SweepReport {
        self.factored.reserve(
            spec.systolic_dims.len() * spec.lanes_per_core.len() * spec.l1_kib.len(),
            spec.l2_mib.len() * spec.hbm_tb_s.len(),
            spec.device_bw_gb_s.len(),
        );
        self.run_report_lattice(&spec.candidates(tpp_target))
    }

    /// The factored per-point evaluation wrapped in the same panic
    /// containment `parallel_map` applies, so a demoted point reports
    /// the identical `EvaluationPanic` label and message.
    fn lattice_fallback(&self, cand: &CandidateParams) -> Result<EvaluatedDesign, AcsError> {
        catch_unwind(AssertUnwindSafe(|| {
            cand.build().map(Arc::new).and_then(|cfg| self.try_evaluate_factored_shared(&cfg))
        }))
        .unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(AcsError::EvaluationPanic { design: cand.name.clone(), message })
        })
    }

    /// Build a probe device for one full parameter tuple, applying the
    /// runner's datatype override exactly as `retyped` would.
    fn build_probe(
        &self,
        dim: u32,
        lanes: u32,
        cores: u32,
        l1: u32,
        l2: u32,
        hbm: f64,
        bw: f64,
    ) -> Result<DeviceConfig, AcsError> {
        let cand = CandidateParams {
            name: "lattice-probe".to_owned(),
            systolic_dim: dim,
            lanes_per_core: lanes,
            core_count: cores,
            l1_kib: l1,
            l2_mib: l2,
            hbm_tb_s: hbm,
            device_bw_gb_s: bw,
        };
        let cfg = cand.build()?;
        match self.datatype {
            Some(dt) if dt != cfg.datatype() => {
                let mut builder = cfg.to_builder();
                builder.datatype(dt);
                Ok(builder.build()?)
            }
            _ => Ok(cfg),
        }
    }

    /// The broadcast sweep: classify candidates into signatures, probe
    /// and price each signature once, fuse per-pair vectors, then reduce
    /// every healthy point to scalar assembly plus two vector sums. The
    /// report is assembled directly — designs and failures land in their
    /// final vectors, in candidate order, without an intermediate
    /// per-point `Result` buffer. Returns `None` when a sweep-wide
    /// precondition fails.
    #[allow(clippy::too_many_lines)]
    fn lattice_sweep_outcomes(&self, candidates: &[CandidateParams]) -> Option<SweepReport> {
        if candidates.is_empty() {
            return Some(SweepReport::default());
        }
        if self.device_count == 0 {
            return None;
        }
        let overhead = self.sim_params.op_overhead_s;
        if !(overhead.is_finite() && overhead >= 0.0) {
            return None;
        }
        let eff_dt = self.datatype.unwrap_or(DataType::Fp16);
        let plans = self.plans_for(eff_dt.bytes()).ok()?;
        let ep = plans.prefill.expert_parallel();
        let programs = self.lattice.programs_for(&plans, eff_dt.bytes());

        // Classify every candidate into (compute, memory, comm)
        // signatures. Row-major sweeps change the compute key once per
        // memory-by-comm block and the memory key once per comm block,
        // so one-entry run caches turn the common case into an integer
        // compare; comm signatures are few enough that a linear scan
        // beats any hash. `DeviceConfig` builder validity — the exact
        // predicate of `CandidateParams::build` — is a conjunction of
        // per-key terms over the same axes, so it is decided once per
        // signature, not once per point.
        let mut csig_ix: FxMap<(u32, u32, u32, u32), u32> = FxMap::default();
        let mut csigs: Vec<(u32, u32, u32, u32)> = Vec::new();
        let mut csig_ok: Vec<bool> = Vec::new();
        let mut msig_ix: FxMap<(u32, u64), u32> = FxMap::default();
        let mut msigs: Vec<(u32, f64)> = Vec::new();
        let mut msig_ok: Vec<bool> = Vec::new();
        let mut wsigs: Vec<f64> = Vec::new();
        let mut wsig_ok: Vec<bool> = Vec::new();
        let mut point_sigs: Vec<Option<(u32, u32, u32)>> = Vec::with_capacity(candidates.len());
        let mut base: Option<usize> = None;
        let mut last_c: Option<((u32, u32, u32, u32), u32)> = None;
        let mut last_m: Option<((u32, u64), u32)> = None;
        for cand in candidates {
            let ckey = (cand.systolic_dim, cand.lanes_per_core, cand.core_count, cand.l1_kib);
            let ci = match last_c {
                Some((key, ix)) if key == ckey => ix,
                _ => {
                    let ix = *csig_ix.entry(ckey).or_insert_with(|| {
                        csigs.push(ckey);
                        csig_ok.push(
                            cand.systolic_dim > 0
                                && cand.lanes_per_core > 0
                                && cand.core_count > 0
                                && cand.l1_kib > 0,
                        );
                        (csigs.len() - 1) as u32
                    });
                    last_c = Some((ckey, ix));
                    ix
                }
            };
            let mkey = (cand.l2_mib, cand.hbm_tb_s.to_bits());
            let mi = match last_m {
                Some((key, ix)) if key == mkey => ix,
                _ => {
                    let ix = *msig_ix.entry(mkey).or_insert_with(|| {
                        msigs.push((cand.l2_mib, cand.hbm_tb_s));
                        let hbm_gb_s = cand.hbm_tb_s * 1000.0;
                        msig_ok.push(cand.l2_mib > 0 && hbm_gb_s.is_finite() && hbm_gb_s > 0.0);
                        (msigs.len() - 1) as u32
                    });
                    last_m = Some((mkey, ix));
                    ix
                }
            };
            let wbits = cand.device_bw_gb_s.to_bits();
            let wi = match wsigs.iter().position(|w| w.to_bits() == wbits) {
                Some(at) => at as u32,
                None => {
                    wsigs.push(cand.device_bw_gb_s);
                    let per_phy = cand.device_bw_gb_s / 12.0;
                    wsig_ok.push(per_phy.is_finite() && per_phy > 0.0);
                    (wsigs.len() - 1) as u32
                }
            };
            if csig_ok[ci as usize] && msig_ok[mi as usize] && wsig_ok[wi as usize] {
                base.get_or_insert(point_sigs.len());
                point_sigs.push(Some((ci, mi, wi)));
            } else {
                point_sigs.push(None);
            }
        }
        // No valid candidate: the factored path reproduces every
        // failure without any probe machinery.
        let base = &candidates[base?];

        // Probe and price each signature once. Pricing goes through the
        // factored leg tables with a representative simulator, so a
        // signature costs one plan walk per phase and later sweeps hit.
        let probe_sig = |dim: u32, lanes: u32, cores: u32, l1: u32, l2: u32, hbm: f64, bw: f64| {
            catch_unwind(AssertUnwindSafe(|| {
                let cfg = Arc::new(self.build_probe(dim, lanes, cores, l1, l2, hbm, bw).ok()?);
                let system = SystemConfig::shared(Arc::clone(&cfg), self.device_count).ok()?;
                let sim = Simulator::with_params(system, self.sim_params);
                let mut keys = LegKeys::of(sim.system());
                keys.comm.expert_parallel = ep;
                self.factored.prefill.legs_for(&sim, &plans.prefill, &keys);
                self.factored.decode.legs_for(&sim, &plans.decode, &keys);
                Some((cfg, keys))
            }))
            .ok()
            .flatten()
        };
        // Each kind's probe data is a pure function of its own signature
        // (the very invariant that lets one probe price a whole row), so
        // hits in the persistent caches skip the probe build entirely.
        let csig_data: Vec<Option<ComputeSigData>> = cached_sig_data(
            &self.lattice.csig_cache,
            &csigs,
            |&(dim, lanes, cores, l1)| {
                let (cfg, keys) = probe_sig(
                    dim,
                    lanes,
                    cores,
                    l1,
                    base.l2_mib,
                    base.hbm_tb_s,
                    base.device_bw_gb_s,
                )?;
                let b = self.area_model.die_area(&cfg);
                Some(ComputeSigData {
                    key: keys.compute,
                    partial_area: (b.systolic + b.vector) + b.l1,
                    control: b.control,
                    fixed: b.fixed,
                    tpp: cfg.tpp().0,
                })
            },
        );
        let msigs_keyed: Vec<(u32, u64)> =
            msigs.iter().map(|&(l2, hbm)| (l2, hbm.to_bits())).collect();
        let msig_data: Vec<Option<MemorySigData>> = cached_sig_data(
            &self.lattice.msig_cache,
            &msigs_keyed,
            |&(l2, hbm_bits)| {
                let (cfg, keys) = probe_sig(
                    base.systolic_dim,
                    base.lanes_per_core,
                    base.core_count,
                    base.l1_kib,
                    l2,
                    f64::from_bits(hbm_bits),
                    base.device_bw_gb_s,
                )?;
                let b = self.area_model.die_area(&cfg);
                Some(MemorySigData {
                    key: keys.memory,
                    l2_area: b.l2,
                    hbm_phy_area: b.hbm_phy,
                    hbm_tb_s: cfg.hbm().bandwidth_tb_s(),
                })
            },
        );
        let wsigs_keyed: Vec<u64> = wsigs.iter().map(|w| w.to_bits()).collect();
        let wsig_data: Vec<Option<CommSigData>> = cached_sig_data(
            &self.lattice.wsig_cache,
            &wsigs_keyed,
            |&bw_bits| {
                let (cfg, keys) = probe_sig(
                    base.systolic_dim,
                    base.lanes_per_core,
                    base.core_count,
                    base.l1_kib,
                    base.l2_mib,
                    base.hbm_tb_s,
                    f64::from_bits(bw_bits),
                )?;
                let b = self.area_model.die_area(&cfg);
                Some(CommSigData {
                    key: keys.comm,
                    device_phy_area: b.device_phy,
                    device_bw_gb_s: cfg.phy().total_gb_s(),
                })
            },
        );
        // Fuse the on-chip vector of every (compute, memory) pair that
        // actually occurs, and the comm vector of every comm signature —
        // consulting the persistent tables first. Distinct pairs are
        // walked once (not once per point), and warm lookups share one
        // read-lock acquisition per phase table.
        let base_keys = point_sigs
            .iter()
            .flatten()
            .next()
            .and_then(|&(ci, mi, wi)| {
                Some(LegKeys {
                    compute: csig_data[ci as usize]?.key,
                    memory: msig_data[mi as usize]?.key,
                    comm: wsig_data[wi as usize]?.key,
                })
            })?;
        let n_msigs = msigs.len();
        let mut pair_list: Vec<(u32, u32)> = Vec::new();
        let mut comm_list: Vec<u32> = Vec::new();
        {
            let mut pair_seen = vec![false; csigs.len() * n_msigs];
            let mut comm_seen = vec![false; wsigs.len()];
            for &(ci, mi, wi) in point_sigs.iter().flatten() {
                let at = ci as usize * n_msigs + mi as usize;
                if !pair_seen[at] {
                    pair_seen[at] = true;
                    pair_list.push((ci, mi));
                }
                if !comm_seen[wi as usize] {
                    comm_seen[wi as usize] = true;
                    comm_list.push(wi);
                }
            }
        }
        let mut pairs: Vec<Option<Arc<PairFused>>> = vec![None; csigs.len() * n_msigs];
        let mut misses: Vec<(u32, u32)> = Vec::new();
        let mut hits = 0u64;
        {
            let map = self.lattice.fused.onchip.read().unwrap_or_else(PoisonError::into_inner);
            for &(ci, mi) in &pair_list {
                let (Some(cs), Some(ms)) = (csig_data[ci as usize], msig_data[mi as usize])
                else {
                    continue;
                };
                match map.get(&(cs.key, ms.key)) {
                    Some(f) => {
                        hits += 1;
                        pairs[ci as usize * n_msigs + mi as usize] = Some(Arc::clone(f));
                    }
                    None => misses.push((ci, mi)),
                }
            }
        }
        FUSED_HIT.add(hits);
        for &(ci, mi) in &misses {
            let (Some(cs), Some(ms)) = (csig_data[ci as usize], msig_data[mi as usize]) else {
                continue;
            };
            let keys = LegKeys { compute: cs.key, memory: ms.key, comm: base_keys.comm };
            let (Some((cp, mp, _)), Some((cd, md, _))) =
                (self.factored.prefill.get(&keys), self.factored.decode.get(&keys))
            else {
                continue;
            };
            FUSED_BUILT.add(1);
            pairs[ci as usize * n_msigs + mi as usize] = Some(self.lattice.fused.put_onchip(
                (cs.key, ms.key),
                PairFused::of(
                    programs.prefill.fuse_onchip(&cp, &mp, overhead),
                    programs.decode.fuse_onchip(&cd, &md, overhead),
                ),
            ));
        }
        let mut comms: Vec<Option<Arc<PairFused>>> = vec![None; wsigs.len()];
        for &wi in &comm_list {
            let Some(ws) = wsig_data[wi as usize] else { continue };
            if let Some(f) = self.lattice.fused.get_comm(&ws.key) {
                FUSED_HIT.add(1);
                comms[wi as usize] = Some(f);
                continue;
            }
            let keys =
                LegKeys { compute: base_keys.compute, memory: base_keys.memory, comm: ws.key };
            let (Some((_, _, wp)), Some((_, _, wd))) =
                (self.factored.prefill.get(&keys), self.factored.decode.get(&keys))
            else {
                continue;
            };
            FUSED_BUILT.add(1);
            comms[wi as usize] = Some(self.lattice.fused.put_comm(
                ws.key,
                PairFused::of(
                    programs.prefill.fuse_comm(&wp, overhead),
                    programs.decode.fuse_comm(&wd, overhead),
                ),
            ));
        }

        let cells_guard = self.lattice.cells.read().unwrap_or_else(PoisonError::into_inner);
        let ctx = SweepCtx {
            plans,
            programs,
            csig_data,
            msig_data,
            wsig_data,
            point_sigs,
            n_msigs,
            pairs,
            comms,
            cells: &cells_guard,
        };
        let _ = &ctx.plans; // plans kept alive for the programs' lifetime
        // Evaluate in contiguous point chunks: the harness cost (panic
        // containment, counter flush) amortises over a chunk, and a
        // chunk whose harness panicked demotes its points to the
        // per-point factored fallback — which re-contains and reports
        // each point exactly.
        const LATTICE_CHUNK: usize = 64;
        let mut report = SweepReport::default();
        report.designs.reserve(candidates.len());
        let mut fresh_cells: Vec<(CellKey, CellNumbers)> = Vec::new();
        if self.worker_count() == 1 {
            // A single worker assembles the report in place — no
            // per-chunk buffers, no merge pass. A panicking chunk is
            // rewound by truncating to the pre-chunk marks, then demoted.
            for (k, chunk) in candidates.chunks(LATTICE_CHUNK).enumerate() {
                let start = k * LATTICE_CHUNK;
                let marks = (report.designs.len(), report.failures.len(), fresh_cells.len());
                let contained = catch_unwind(AssertUnwindSafe(|| {
                    self.lattice_chunk(start, chunk, &ctx, &mut report, &mut fresh_cells);
                }));
                if contained.is_err() {
                    report.designs.truncate(marks.0);
                    report.failures.truncate(marks.1);
                    fresh_cells.truncate(marks.2);
                    self.demote_chunk(start, chunk, &mut report);
                }
            }
        } else {
            let chunks: Vec<(usize, &[CandidateParams])> = candidates
                .chunks(LATTICE_CHUNK)
                .enumerate()
                .map(|(k, chunk)| (k * LATTICE_CHUNK, chunk))
                .collect();
            let chunk_outcomes = self.parallel_map(
                &chunks,
                |c| c.1[0].name.as_str(),
                |&(start, chunk)| {
                    let mut part = SweepReport::default();
                    let mut fresh = Vec::new();
                    self.lattice_chunk(start, chunk, &ctx, &mut part, &mut fresh);
                    Ok((part, fresh))
                },
            );
            for (res, &(start, chunk)) in chunk_outcomes.into_iter().zip(&chunks) {
                match res {
                    Ok((part, fresh)) => {
                        report.designs.extend(part.designs);
                        report.failures.extend(part.failures);
                        fresh_cells.extend(fresh);
                    }
                    Err(_) => self.demote_chunk(start, chunk, &mut report),
                }
            }
        }
        drop(ctx);
        drop(cells_guard);
        if !fresh_cells.is_empty() {
            let mut map = self.lattice.cells.write().unwrap_or_else(PoisonError::into_inner);
            for (key, cell) in fresh_cells {
                map.entry(key).or_insert(cell);
            }
        }
        self.report_telemetry(&report);
        Some(report)
    }

    /// Evaluate one contiguous chunk of the sweep into `report`,
    /// recording freshly built cells for post-stage publication.
    fn lattice_chunk(
        &self,
        start: usize,
        chunk: &[CandidateParams],
        ctx: &SweepCtx,
        report: &mut SweepReport,
        fresh: &mut Vec<(CellKey, CellNumbers)>,
    ) {
        let mut fast = 0u64;
        let mut fallback = 0u64;
        let fresh_mark = fresh.len();
        for (off, cand) in chunk.iter().enumerate() {
            let index = start + off;
            let sigs = ctx.point_sigs[index];
            match sigs.and_then(|sigs| self.lattice_point(cand, sigs, ctx, fresh)) {
                Some(design) => {
                    fast += 1;
                    report.designs.push((index, design));
                }
                None => {
                    fallback += 1;
                    match self.lattice_fallback(cand) {
                        Ok(design) => report.designs.push((index, design)),
                        Err(reason) => report.failures.push(DesignFailure {
                            index,
                            params: cand.name.clone(),
                            reason,
                        }),
                    }
                }
            }
        }
        let built = (fresh.len() - fresh_mark) as u64;
        FAST_POINTS.add(fast);
        FALLBACK_POINTS.add(fallback);
        CELL_BUILT.add(built);
        CELL_HIT.add(fast - built);
    }

    /// Price every point of a chunk whose harness panicked through the
    /// contained per-point fallback, reporting each point exactly.
    fn demote_chunk(&self, start: usize, chunk: &[CandidateParams], report: &mut SweepReport) {
        for (off, cand) in chunk.iter().enumerate() {
            let index = start + off;
            match self.lattice_fallback(cand) {
                Ok(design) => report.designs.push((index, design)),
                Err(reason) => report.failures.push(DesignFailure {
                    index,
                    params: cand.name.clone(),
                    reason,
                }),
            }
        }
    }

    /// The broadcast fast path for one point. `None` demotes the point
    /// to the factored evaluator — taken on any validity, cleanliness,
    /// or guard-check failure, so errors always carry the factored
    /// path's exact shape. A cell-table hit replays the stored bits; a
    /// miss computes them and records the cell for publication (only on
    /// full success, so cached cells always passed every guard).
    fn lattice_point(
        &self,
        cand: &CandidateParams,
        sigs: (u32, u32, u32),
        ctx: &SweepCtx,
        fresh: &mut Vec<(CellKey, CellNumbers)>,
    ) -> Option<EvaluatedDesign> {
        let (ci, mi, wi) = sigs;
        let (ci, mi, wi) = (ci as usize, mi as usize, wi as usize);
        let cs = ctx.csig_data[ci].as_ref()?;
        let ms = ctx.msig_data[mi].as_ref()?;
        let ws = ctx.wsig_data[wi].as_ref()?;
        let key = (cs.key, ms.key, ws.key);
        if let Some(cell) = ctx.cells.get(&key) {
            return Some(cell_design(cand, cell));
        }
        let pair = ctx.pairs[ci * ctx.n_msigs + mi].as_ref()?;
        let comm = ctx.comms[wi].as_ref()?;
        if !(pair.clean && comm.clean) {
            return None;
        }
        // Area assembled addend-by-addend in `total_mm2`'s exact
        // left-to-right order; the guard checks replicate the factored
        // pipeline's order so the first failing stage matches.
        let a = cs.partial_area + ms.l2_area;
        let a = a + ms.hbm_phy_area;
        let a = a + ws.device_phy_area;
        let a = a + cs.control;
        let area = a + cs.fixed;
        if !(area.is_finite() && area > 0.0) {
            return None;
        }
        let tpp = cs.tpp;
        if !(tpp.is_finite() && tpp > 0.0) {
            return None;
        }
        let pd = tpp / area;
        if !(pd.is_finite() && pd > 0.0) {
            return None;
        }
        let die_cost_usd = self.cost_model.die_cost_usd(area);
        if !(die_cost_usd.is_finite() && die_cost_usd > 0.0) {
            return None;
        }
        // `good_die_cost_usd(area)` is defined as
        // `die_cost_usd(area) / die_yield(area)`; reusing the value just
        // computed is the same division on the same bits.
        let good_die_cost_usd = die_cost_usd / self.cost_model.die_yield(area);
        if !(good_die_cost_usd.is_finite() && good_die_cost_usd > 0.0) {
            return None;
        }
        let ttft_s = ctx.programs.prefill.try_ttft(&pair.prefill.values, &comm.prefill.values).ok()?;
        let tbt_s = ctx.programs.decode.try_tbt(&pair.decode.values, &comm.decode.values).ok()?;
        let cell = CellNumbers {
            hbm_tb_s: ms.hbm_tb_s,
            device_bw_gb_s: ws.device_bw_gb_s,
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd,
            good_die_cost_usd,
            ttft_s,
            tbt_s,
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        };
        fresh.push((key, cell));
        Some(cell_design(cand, &cell))
    }
}

/// Materialize one candidate's [`EvaluatedDesign`] from its grid cell:
/// the name and the swept integers come from the candidate (the
/// integers equal the cell key's own axes), every number from the cell.
fn cell_design(cand: &CandidateParams, cell: &CellNumbers) -> EvaluatedDesign {
    EvaluatedDesign {
        name: cand.name.clone(),
        params: SweptParams {
            systolic_dim: cand.systolic_dim,
            lanes_per_core: cand.lanes_per_core,
            core_count: cand.core_count,
            l1_kib: cand.l1_kib,
            l2_mib: cand.l2_mib,
            hbm_tb_s: cell.hbm_tb_s,
            device_bw_gb_s: cell.device_bw_gb_s,
        },
        tpp: cell.tpp,
        die_area_mm2: cell.die_area_mm2,
        perf_density: cell.perf_density,
        die_cost_usd: cell.die_cost_usd,
        good_die_cost_usd: cell.good_die_cost_usd,
        ttft_s: cell.ttft_s,
        tbt_s: cell.tbt_s,
        within_reticle: cell.within_reticle,
        pd_unregulated_2023: cell.pd_unregulated_2023,
    }
}

/// Mutable accumulators of one screen run.
struct ScreenState {
    designs: Vec<EvaluatedDesign>,
    front: Vec<(f64, f64)>,
    stats: LatticeStats,
}

/// Memoized evaluations of one compute triple's sub-grid, keyed by the
/// four box-axis values (`None` = evaluated and failed).
type ScreenMemo = HashMap<(u32, u32, u64, u64), Option<usize>>;

/// One feasible compute triple and the box axes it spans.
struct TripleGrid<'a> {
    dim: u32,
    lanes: u32,
    cores: u32,
    tpp_target: f64,
    l1s: &'a [u32],
    l2s: &'a [u32],
    hbms: &'a [f64],
    bws: &'a [f64],
    prune: bool,
}

/// Sub-grids at or below this volume are priced exhaustively instead of
/// bounded: sixteen corners cannot pay for themselves on a box they
/// nearly cover.
const SCREEN_LEAF_POINTS: usize = 8;

impl DseRunner {
    /// Branch-and-bound lattice screen: walk the sweep grid as nested
    /// sub-boxes per compute triple, lower-bound each box's (TBT,
    /// good-die-cost) objectives by the componentwise minimum over its
    /// evaluated corners, and skip — unpriced — every box strictly
    /// dominated by the incremental Pareto front, plus every compute
    /// triple strictly below `min_tpp`. Then optionally refine: insert
    /// axis midpoints wherever the October 2023 compliance flag flips
    /// between neighbours, for `refine_rounds` rounds.
    ///
    /// Soundness (see `bound_is_dominated`): every leg and the area/cost
    /// pipeline are componentwise monotone in the box axes, so corner
    /// minima bound the interior regardless of each axis's direction;
    /// strict dominance means pruned interiors are strictly dominated by
    /// a materialized design, so the front over materialized points
    /// equals the exact front — ties included, because a bound merely
    /// *equal* to a front point never prunes. Boundary designs with TPP
    /// exactly at `min_tpp` are likewise never pruned (strict `<`).
    #[must_use]
    pub fn screen_lattice(
        &self,
        spec: &SweepSpec,
        tpp_target: f64,
        opts: &LatticeScreenOptions,
    ) -> LatticeScreen {
        let mut st = ScreenState {
            designs: Vec::new(),
            front: Vec::new(),
            stats: LatticeStats {
                nominal_points: spec.cardinality() as u64,
                ..LatticeStats::default()
            },
        };
        let box_points =
            spec.l1_kib.len() * spec.l2_mib.len() * spec.hbm_tb_s.len() * spec.device_bw_gb_s.len();
        let mut triples: Vec<((u32, u32, u32), ScreenMemo)> = Vec::new();
        for &dim in &spec.systolic_dims {
            for &lanes in &spec.lanes_per_core {
                let dims = SystolicDims::square(dim);
                let Ok(cores) = cores_for_tpp(tpp_target, 1.41, DataType::Fp16, dims, lanes)
                else {
                    st.stats.infeasible_points += box_points as u64;
                    continue;
                };
                if let (Some(min_tpp), Some((&l1, &l2)), Some((&hbm, &bw))) = (
                    opts.min_tpp,
                    spec.l1_kib.first().zip(spec.l2_mib.first()),
                    spec.hbm_tb_s.first().zip(spec.device_bw_gb_s.first()),
                ) {
                    // TPP depends only on the compute triple; a probe
                    // that fails to build skips the floor test rather
                    // than mispruning.
                    let below = self
                        .build_probe(dim, lanes, cores, l1, l2, hbm, bw)
                        .map(|cfg| cfg.tpp().0 < min_tpp)
                        .unwrap_or(false);
                    if below {
                        st.stats.pruned_boxes += 1;
                        continue;
                    }
                }
                let grid = TripleGrid {
                    dim,
                    lanes,
                    cores,
                    tpp_target,
                    l1s: &spec.l1_kib,
                    l2s: &spec.l2_mib,
                    hbms: &spec.hbm_tb_s,
                    bws: &spec.device_bw_gb_s,
                    prune: opts.prune,
                };
                let mut memo = ScreenMemo::new();
                self.screen_box(
                    &grid,
                    &mut st,
                    &mut memo,
                    [
                        0..grid.l1s.len(),
                        0..grid.l2s.len(),
                        0..grid.hbms.len(),
                        0..grid.bws.len(),
                    ],
                );
                triples.push(((dim, lanes, cores), memo));
            }
        }
        for _ in 0..opts.refine_rounds {
            let mut added = 0u64;
            for ((dim, lanes, cores), memo) in &mut triples {
                let candidates = refinement_candidates(memo, &st.designs);
                for (l1, l2, hbm, bw) in candidates {
                    if memo.contains_key(&(l1, l2, hbm.to_bits(), bw.to_bits())) {
                        continue;
                    }
                    self.screen_eval(*dim, *lanes, *cores, tpp_target, l1, l2, hbm, bw, &mut st, memo);
                    added += 1;
                }
            }
            if added == 0 {
                break;
            }
            st.stats.refinement_rounds += 1;
            st.stats.refined_points += added;
        }
        st.stats.pruned_points = st
            .stats
            .nominal_points
            .saturating_sub(st.stats.infeasible_points)
            .saturating_sub(st.stats.materialized_points - st.stats.refined_points);
        if acs_telemetry::enabled() {
            let s = &st.stats;
            acs_telemetry::count("dse.lattice.nominal_points", s.nominal_points);
            acs_telemetry::count("dse.lattice.materialized_points", s.materialized_points);
            acs_telemetry::count("dse.lattice.pruned_boxes", s.pruned_boxes);
            acs_telemetry::count("dse.lattice.pruned_points", s.pruned_points);
            acs_telemetry::count("dse.lattice.refine_rounds", s.refinement_rounds);
            acs_telemetry::count("dse.lattice.refined_points", s.refined_points);
        }
        let front = pareto_front(&st.designs, |d| d.tbt_s, |d| d.good_die_cost_usd);
        LatticeScreen { designs: st.designs, front, stats: st.stats }
    }

    /// Recursive box walk: bound, prune, or subdivide; leaves price
    /// exhaustively. Corners are memoized, so subdivision re-uses them.
    fn screen_box(
        &self,
        g: &TripleGrid<'_>,
        st: &mut ScreenState,
        memo: &mut ScreenMemo,
        ranges: [Range<usize>; 4],
    ) {
        let volume: usize = ranges.iter().map(ExactSizeIterator::len).product();
        if volume == 0 {
            return;
        }
        if g.prune && volume > SCREEN_LEAF_POINTS {
            let corner_ix = |r: &Range<usize>| {
                if r.len() == 1 { vec![r.start] } else { vec![r.start, r.end - 1] }
            };
            let (c0, c1, c2, c3) = (
                corner_ix(&ranges[0]),
                corner_ix(&ranges[1]),
                corner_ix(&ranges[2]),
                corner_ix(&ranges[3]),
            );
            let mut bound = (f64::INFINITY, f64::INFINITY);
            let mut all_ok = true;
            for &i0 in &c0 {
                for &i1 in &c1 {
                    for &i2 in &c2 {
                        for &i3 in &c3 {
                            match self.screen_eval(
                                g.dim,
                                g.lanes,
                                g.cores,
                                g.tpp_target,
                                g.l1s[i0],
                                g.l2s[i1],
                                g.hbms[i2],
                                g.bws[i3],
                                st,
                                memo,
                            ) {
                                Some(ix) => {
                                    let d = &st.designs[ix];
                                    bound.0 = bound.0.min(d.tbt_s);
                                    bound.1 = bound.1.min(d.good_die_cost_usd);
                                }
                                // A failed corner forfeits the bound: a
                                // box we cannot bound is never pruned.
                                None => all_ok = false,
                            }
                        }
                    }
                }
            }
            if all_ok && bound_is_dominated(&st.front, bound) {
                st.stats.pruned_boxes += 1;
                return;
            }
        }
        if volume <= SCREEN_LEAF_POINTS {
            for i0 in ranges[0].clone() {
                for i1 in ranges[1].clone() {
                    for i2 in ranges[2].clone() {
                        for i3 in ranges[3].clone() {
                            self.screen_eval(
                                g.dim,
                                g.lanes,
                                g.cores,
                                g.tpp_target,
                                g.l1s[i0],
                                g.l2s[i1],
                                g.hbms[i2],
                                g.bws[i3],
                                st,
                                memo,
                            );
                        }
                    }
                }
            }
            return;
        }
        let axis = ranges
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.len())
            .map_or(0, |(i, _)| i);
        let r = ranges[axis].clone();
        let mid = r.start + r.len() / 2;
        let mut lo = ranges.clone();
        lo[axis] = r.start..mid;
        let mut hi = ranges;
        hi[axis] = mid..r.end;
        self.screen_box(g, st, memo, lo);
        self.screen_box(g, st, memo, hi);
    }

    /// Price one screen point through the lattice per-point path
    /// (memoized, panic-contained). Successful designs join the
    /// incremental front; failures count but never bound.
    #[allow(clippy::too_many_arguments)]
    fn screen_eval(
        &self,
        dim: u32,
        lanes: u32,
        cores: u32,
        tpp_target: f64,
        l1: u32,
        l2: u32,
        hbm: f64,
        bw: f64,
        st: &mut ScreenState,
        memo: &mut ScreenMemo,
    ) -> Option<usize> {
        let key = (l1, l2, hbm.to_bits(), bw.to_bits());
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let cand = CandidateParams {
            name: format!(
                "dse-{tpp_target:.0}-{dim}x{dim}-{lanes}l-{l1}k-{l2}m-{hbm}t-{bw:.0}g"
            ),
            systolic_dim: dim,
            lanes_per_core: lanes,
            core_count: cores,
            l1_kib: l1,
            l2_mib: l2,
            hbm_tb_s: hbm,
            device_bw_gb_s: bw,
        };
        let res = catch_unwind(AssertUnwindSafe(|| {
            cand.build().map(Arc::new).and_then(|cfg| self.try_evaluate_lattice_shared(&cfg))
        }))
        .unwrap_or_else(|_| {
            Err(AcsError::EvaluationPanic {
                design: cand.name.clone(),
                message: "panic during screen evaluation".to_owned(),
            })
        });
        st.stats.materialized_points += 1;
        let out = match res {
            Ok(d) => {
                push_front(&mut st.front, (d.tbt_s, d.good_die_cost_usd));
                st.designs.push(d);
                Some(st.designs.len() - 1)
            }
            Err(_) => {
                st.stats.failed_points += 1;
                None
            }
        };
        memo.insert(key, out);
        out
    }
}

/// Axis midpoints around October 2023 compliance crossovers: for every
/// pair of evaluated points adjacent along one axis (all other
/// coordinates equal) whose `pd_unregulated_2023` flags differ, the
/// midpoint of that axis span. Integer axes refine only while the span
/// is wider than one step.
fn refinement_candidates(
    memo: &ScreenMemo,
    designs: &[EvaluatedDesign],
) -> Vec<(u32, u32, f64, f64)> {
    let pts: Vec<([f64; 4], bool)> = memo
        .iter()
        .filter_map(|(&(l1, l2, hb, bb), ix)| {
            let d = &designs[(*ix)?];
            Some((
                [f64::from(l1), f64::from(l2), f64::from_bits(hb), f64::from_bits(bb)],
                d.pd_unregulated_2023,
            ))
        })
        .collect();
    let mut out = Vec::new();
    for axis in 0..4 {
        let mut lanes: HashMap<[u64; 3], Vec<(f64, bool)>> = HashMap::new();
        for (coords, flag) in &pts {
            let mut rest = [0u64; 3];
            let mut j = 0;
            for (k, v) in coords.iter().enumerate() {
                if k != axis {
                    rest[j] = v.to_bits();
                    j += 1;
                }
            }
            lanes.entry(rest).or_default().push((coords[axis], *flag));
        }
        for (rest, mut vals) in lanes {
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in vals.windows(2) {
                let ((a, fa), (b, fb)) = (w[0], w[1]);
                if fa == fb {
                    continue;
                }
                let mid = if axis < 2 {
                    // Integer axes (L1, L2): refine on the integer grid.
                    let (ai, bi) = (a as u32, b as u32);
                    let m = ai + (bi - ai) / 2;
                    if m == ai || m == bi {
                        continue;
                    }
                    f64::from(m)
                } else {
                    let m = 0.5 * (a + b);
                    if !m.is_finite() || m == a || m == b {
                        continue;
                    }
                    m
                };
                let mut coords = [0.0f64; 4];
                let mut j = 0;
                for (k, slot) in coords.iter_mut().enumerate() {
                    if k == axis {
                        *slot = mid;
                    } else {
                        *slot = f64::from_bits(rest[j]);
                        j += 1;
                    }
                }
                out.push((coords[0] as u32, coords[1] as u32, coords[2], coords[3]));
            }
        }
    }
    out.sort_by(|x, y| {
        (x.0, x.1, x.2.to_bits(), x.3.to_bits()).cmp(&(y.0, y.1, y.2.to_bits(), y.3.to_bits()))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_cache::ShardedCache;
    use acs_llm::{ModelConfig, WorkloadConfig};

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    #[test]
    fn lattice_sweep_is_bit_identical_to_factored() {
        let r = runner();
        let candidates = small_spec().candidates(4800.0);
        let factored = r.run_report_factored(&candidates);
        let lattice = r.run_report_lattice(&candidates);
        assert_eq!(factored.designs.len(), lattice.designs.len());
        assert!(factored.failures.is_empty() && lattice.failures.is_empty());
        for ((i, f), (j, l)) in factored.designs.iter().zip(&lattice.designs) {
            assert_eq!(i, j);
            assert_eq!(f, l);
            assert_eq!(f.ttft_s.to_bits(), l.ttft_s.to_bits());
            assert_eq!(f.tbt_s.to_bits(), l.tbt_s.to_bits());
        }
    }

    #[test]
    fn faulted_candidates_fail_identically_on_both_paths() {
        let r = runner();
        let mut candidates = small_spec().candidates(4800.0);
        candidates[1].hbm_tb_s = 0.0;
        candidates[3].lanes_per_core = 0;
        candidates[5].device_bw_gb_s = f64::NAN;
        let factored = r.run_report_factored(&candidates);
        let lattice = r.run_report_lattice(&candidates);
        assert_eq!(factored.failures.len(), 3);
        assert_eq!(factored.failures.len(), lattice.failures.len());
        for (f, l) in factored.failures.iter().zip(&lattice.failures) {
            assert_eq!((f.index, f.kind()), (l.index, l.kind()));
            assert_eq!(f.params, l.params);
            assert_eq!(f.reason.to_string(), l.reason.to_string());
        }
        assert_eq!(factored.designs, lattice.designs);
    }

    #[test]
    fn run_configs_lattice_matches_run_configs_across_dtypes() {
        for dt in [DataType::Fp16, DataType::Int8] {
            let r = runner().with_datatype(dt);
            let configs = small_spec().configs(4800.0);
            let factored = r.run_configs(&configs);
            let lattice = r.run_configs_lattice(&configs);
            assert_eq!(factored.len(), lattice.len());
            for (f, l) in factored.iter().zip(&lattice) {
                let (f, l) = (f.as_ref().unwrap(), l.as_ref().unwrap());
                assert_eq!(f, l);
                assert_eq!(f.tbt_s.to_bits(), l.tbt_s.to_bits());
            }
        }
    }

    #[test]
    fn cached_lattice_matches_factored_and_hits_on_repeat() {
        let cache = Arc::new(ShardedCache::new(256));
        let cached = runner().with_cache(Arc::clone(&cache));
        let plain = runner();
        let candidates = small_spec().candidates(4800.0);
        let first = cached.run_report_lattice(&candidates);
        assert_eq!(first.designs, plain.run_report_factored(&candidates).designs);
        let cold = cache.stats();
        assert_eq!(cold.misses as usize, candidates.len());
        let _ = cached.run_report_lattice(&candidates);
        let warm = cache.stats();
        assert_eq!((warm.hits - cold.hits) as usize, candidates.len());
        assert_eq!(warm.insertions, cold.insertions);
    }

    #[test]
    fn fused_tables_persist_across_sweeps() {
        let r = runner();
        let spec = small_spec();
        let _ = r.run_lattice(&spec, 4800.0);
        // 4 compute keys x 2 memory keys = 8 on-chip pairs; 1 comm key.
        // Both phases live in one PairFused entry, so the merged table
        // holds exactly one entry per distinct pair.
        let sizes = |t: &FusedTables| {
            (
                t.onchip.read().unwrap().len(),
                t.comm.read().unwrap().len(),
            )
        };
        let after_first = sizes(&r.lattice.fused);
        assert_eq!(after_first, (8, 1));
        let _ = r.run_lattice(&spec, 4800.0);
        let after_second = sizes(&r.lattice.fused);
        assert_eq!(after_second, after_first, "re-running the sweep must re-fuse nothing");
    }

    /// A grid wide enough to subdivide (box volume > leaf) whose upper
    /// L2/HBM reaches are strictly worse on cost without a latency win,
    /// so branch-and-bound has something real to prune.
    fn prunable_spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192],
            l2_mib: vec![40, 80, 160, 320, 640, 1280],
            hbm_tb_s: vec![2.0, 2.4, 2.8, 3.2, 3.6, 4.0],
            device_bw_gb_s: vec![600.0],
        }
    }

    fn front_names(designs: &[EvaluatedDesign], front: &[usize]) -> Vec<String> {
        let mut names: Vec<String> =
            front.iter().map(|&i| designs[i].name.clone()).collect();
        names.sort();
        names
    }

    #[test]
    fn screen_exact_mode_matches_run_lattice() {
        let r = runner();
        let spec = prunable_spec();
        let exact = r.screen_lattice(
            &spec,
            4800.0,
            &LatticeScreenOptions { prune: false, ..LatticeScreenOptions::default() },
        );
        let report = r.run_lattice(&spec, 4800.0);
        assert_eq!(exact.stats.materialized_points as usize, spec.cardinality());
        assert_eq!(exact.stats.pruned_boxes, 0);
        assert_eq!(exact.stats.pruned_points, 0);
        let sweep_front = pareto_front(
            &report.designs.iter().map(|(_, d)| d.clone()).collect::<Vec<_>>(),
            |d| d.tbt_s,
            |d| d.good_die_cost_usd,
        );
        let mut sweep_names: Vec<String> = {
            let designs: Vec<EvaluatedDesign> =
                report.designs.iter().map(|(_, d)| d.clone()).collect();
            sweep_front.iter().map(|&i| designs[i].name.clone()).collect()
        };
        sweep_names.sort();
        assert_eq!(front_names(&exact.designs, &exact.front), sweep_names);
    }

    #[test]
    fn screen_pruned_front_equals_exact_front() {
        let r = runner();
        let spec = prunable_spec();
        let exact = r.screen_lattice(
            &spec,
            4800.0,
            &LatticeScreenOptions { prune: false, ..LatticeScreenOptions::default() },
        );
        let pruned = r.screen_lattice(&spec, 4800.0, &LatticeScreenOptions::default());
        assert_eq!(
            front_names(&pruned.designs, &pruned.front),
            front_names(&exact.designs, &exact.front),
            "pruning must preserve the exact Pareto front"
        );
        assert!(
            pruned.stats.pruned_boxes > 0,
            "the oversized grid should have prunable boxes, stats: {:?}",
            pruned.stats
        );
        assert!(pruned.stats.materialized_points < exact.stats.materialized_points);
        assert_eq!(
            pruned.stats.materialized_points + pruned.stats.pruned_points,
            pruned.stats.nominal_points - pruned.stats.infeasible_points
        );
    }

    #[test]
    fn min_tpp_exactly_at_threshold_is_never_pruned() {
        let r = runner();
        let spec = small_spec();
        // Every candidate in a (dim, lanes) triple shares one TPP; set
        // the floor exactly to the achieved TPP of each triple in turn
        // and require all of that triple's points to materialize.
        let all = r.run_lattice(&spec, 4800.0);
        let mut tpps: Vec<f64> = all.designs.iter().map(|(_, d)| d.tpp).collect();
        tpps.sort_by(f64::total_cmp);
        tpps.dedup();
        for &floor in &tpps {
            let screen = r.screen_lattice(
                &spec,
                4800.0,
                &LatticeScreenOptions { min_tpp: Some(floor), ..LatticeScreenOptions::default() },
            );
            let at_floor = all.designs.iter().filter(|(_, d)| d.tpp == floor).count();
            let kept = screen.designs.iter().filter(|d| d.tpp == floor).count();
            assert_eq!(kept, at_floor, "designs at TPP == min_tpp must survive the floor");
            assert!(screen.designs.iter().all(|d| d.tpp >= floor));
        }
    }

    #[test]
    fn refinement_inserts_midpoints_at_compliance_flips() {
        let r = runner();
        // L1 span chosen so the 2023 PD rule flips somewhere inside it
        // (the small end is regulated, the big end is not).
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192, 4096],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0],
            device_bw_gb_s: vec![600.0],
        };
        let coarse = r.screen_lattice(&spec, 2400.0, &LatticeScreenOptions::default());
        let flips = coarse
            .designs
            .iter()
            .map(|d| d.pd_unregulated_2023)
            .collect::<std::collections::HashSet<_>>()
            .len();
        if flips < 2 {
            // The span straddles no threshold under this calibration;
            // refinement then has nothing to sharpen and must say so.
            let refined = r.screen_lattice(
                &spec,
                2400.0,
                &LatticeScreenOptions { refine_rounds: 3, ..LatticeScreenOptions::default() },
            );
            assert_eq!(refined.stats.refined_points, 0);
            return;
        }
        let refined = r.screen_lattice(
            &spec,
            2400.0,
            &LatticeScreenOptions { refine_rounds: 3, ..LatticeScreenOptions::default() },
        );
        assert!(refined.stats.refined_points > 0);
        assert!(refined.stats.refinement_rounds >= 1);
        assert!(refined.stats.materialized_points > coarse.stats.materialized_points);
    }

    #[test]
    fn bound_domination_is_strict_on_ties() {
        let front = vec![(1.0, 10.0), (2.0, 5.0)];
        // Exact tie with a front point: never dominated, never pruned.
        assert!(!bound_is_dominated(&front, (1.0, 10.0)));
        assert!(!bound_is_dominated(&front, (2.0, 5.0)));
        // Worse on one objective, tied on the other: dominated.
        assert!(bound_is_dominated(&front, (1.0, 11.0)));
        assert!(bound_is_dominated(&front, (2.5, 5.0)));
        // Strictly worse on both: dominated.
        assert!(bound_is_dominated(&front, (3.0, 6.0)));
        // Better on either objective than every front point: kept.
        assert!(!bound_is_dominated(&front, (0.5, 100.0)));
        assert!(!bound_is_dominated(&front, (100.0, 4.0)));
        assert!(!bound_is_dominated(&[], (1.0, 1.0)));
    }

    /// Adversarial equal-cost property test: coordinates drawn from a
    /// three-value pool so exact ties and duplicates dominate the
    /// distribution — the regime where an off-by-strictness bound test
    /// silently drops tied front members. The incremental front the
    /// screen maintains must equal [`pareto_front`] over the same
    /// points, as a multiset, on every round.
    #[test]
    fn incremental_front_matches_pareto_front_under_heavy_ties() {
        let mut state = 0xAC5_5EED_u64 ^ 0x9E37_79B9;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for round in 0..200 {
            let n = (next() % 40) as usize;
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let coord = |v: u64| match v % 8 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        v => f64::from(u32::try_from(v % 3).unwrap()),
                    };
                    (coord(next()), coord(next()))
                })
                .collect();
            let mut front = Vec::new();
            for &p in &pts {
                push_front(&mut front, p);
            }
            let mut got: Vec<(u64, u64)> =
                front.iter().map(|p| (p.0.to_bits(), p.1.to_bits())).collect();
            got.sort_unstable();
            let mut expect: Vec<(u64, u64)> = pareto_front(&pts, |p| p.0, |p| p.1)
                .iter()
                .map(|&i| (pts[i].0.to_bits(), pts[i].1.to_bits()))
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "round {round}: {pts:?}");
        }
    }

    #[test]
    fn push_front_keeps_duplicates_and_evicts_dominated() {
        let mut front = Vec::new();
        push_front(&mut front, (1.0, 10.0));
        push_front(&mut front, (1.0, 10.0));
        assert_eq!(front.len(), 2, "equal points both survive, like pareto_front");
        push_front(&mut front, (2.0, 11.0));
        assert_eq!(front.len(), 2, "dominated points never enter");
        push_front(&mut front, (0.5, 9.0));
        assert_eq!(front, vec![(0.5, 9.0)], "a dominating point evicts both duplicates");
        push_front(&mut front, (f64::NAN, 1.0));
        push_front(&mut front, (1.0, f64::INFINITY));
        assert_eq!(front.len(), 1, "non-finite objectives never join the front");
    }
}
