//! Design-point evaluation: latency, area, compliance, and cost.

use crate::report::{DesignFailure, SweepReport};
use crate::sweeps::{CandidateParams, SweepSpec};
use acs_cache::{CacheKey, ShardedCache};
use acs_errors::json::{object, Value};
use acs_errors::{guard, AcsError};
use acs_hw::{AreaModel, CostModel, DeviceConfig, SystemConfig, RETICLE_LIMIT_MM2};
use acs_llm::{InferencePhase, ModelConfig, WorkloadConfig};
use acs_policy::Acr2023;
use acs_sim::{plan_digest_parallel, EvalPlans, SimParams, Simulator};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// The swept architectural parameters of one design, kept alongside its
/// results so distributions can be grouped by a fixed parameter
/// (Figures 11 and 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweptParams {
    /// Square systolic dimension.
    pub systolic_dim: u32,
    /// Lanes per core.
    pub lanes_per_core: u32,
    /// Core count (solved from the TPP ceiling).
    pub core_count: u32,
    /// L1 per core in KiB.
    pub l1_kib: u32,
    /// L2 in MiB.
    pub l2_mib: u32,
    /// HBM bandwidth in TB/s.
    pub hbm_tb_s: f64,
    /// Device bandwidth in GB/s.
    pub device_bw_gb_s: f64,
}

impl SweptParams {
    /// Extract the swept parameters from a configuration.
    #[must_use]
    pub fn of(config: &DeviceConfig) -> Self {
        SweptParams {
            systolic_dim: config.systolic().x,
            lanes_per_core: config.lanes_per_core(),
            core_count: config.core_count(),
            l1_kib: config.l1_kib_per_core(),
            l2_mib: config.l2_mib(),
            hbm_tb_s: config.hbm().bandwidth_tb_s(),
            device_bw_gb_s: config.phy().total_gb_s(),
        }
    }
}

/// One fully evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedDesign {
    /// Design name.
    pub name: String,
    /// The swept parameters.
    pub params: SweptParams,
    /// Achieved TPP (just under the sweep's ceiling).
    pub tpp: f64,
    /// Modelled die area in mm².
    pub die_area_mm2: f64,
    /// Performance density (TPP / area).
    pub perf_density: f64,
    /// Raw silicon die cost in USD.
    pub die_cost_usd: f64,
    /// Yield-adjusted cost per good die in USD.
    pub good_die_cost_usd: f64,
    /// Per-layer prefill latency in seconds (TTFT).
    pub ttft_s: f64,
    /// Per-layer, per-token decode latency in seconds (TBT).
    pub tbt_s: f64,
    /// Whether the die fits the 860 mm² reticle.
    pub within_reticle: bool,
    /// Whether the design escapes the October 2023 data-center rule
    /// entirely (the DSE's compliance target, §4.3).
    pub pd_unregulated_2023: bool,
}

impl EvaluatedDesign {
    /// TTFT × raw die cost (ms·$), Figure 8's y-axis.
    #[must_use]
    pub fn ttft_cost_product(&self) -> f64 {
        self.ttft_s * 1e3 * self.die_cost_usd
    }

    /// TBT × raw die cost (ms·$).
    #[must_use]
    pub fn tbt_cost_product(&self) -> f64 {
        self.tbt_s * 1e3 * self.die_cost_usd
    }

    /// Manufacturable and (October 2023) unregulated.
    #[must_use]
    pub fn valid_2023(&self) -> bool {
        self.within_reticle && self.pd_unregulated_2023
    }
}

/// Evaluates sweeps of designs for one model/workload pair.
///
/// # Example
///
/// ```
/// use acs_dse::{DseRunner, SweepSpec};
/// use acs_llm::{ModelConfig, WorkloadConfig};
///
/// let runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
/// let spec = SweepSpec {
///     hbm_tb_s: vec![2.0, 3.2],
///     lanes_per_core: vec![4],
///     l1_kib: vec![192],
///     l2_mib: vec![40],
///     systolic_dims: vec![16],
///     device_bw_gb_s: vec![600.0],
/// };
/// let designs = runner.run(&spec, 4800.0);
/// assert_eq!(designs.len(), 2);
/// // More memory bandwidth always decodes faster.
/// assert!(designs[1].tbt_s != designs[0].tbt_s);
/// ```
#[derive(Debug, Clone)]
pub struct DseRunner {
    model: ModelConfig,
    workload: WorkloadConfig,
    pub(crate) device_count: u32,
    pub(crate) expert_parallel: u32,
    pub(crate) datatype: Option<acs_hw::DataType>,
    pub(crate) area_model: AreaModel,
    pub(crate) cost_model: CostModel,
    pub(crate) sim_params: SimParams,
    pub(crate) rule_2023: Acr2023,
    pub(crate) cache: Option<Arc<ShardedCache<EvaluatedDesign>>>,
    plans: Arc<PlanSlot>,
    pub(crate) factored: Arc<crate::factored::FactoredSlot>,
    pub(crate) lattice: Arc<crate::lattice::LatticeSlot>,
    threads: Option<usize>,
}

/// Layer plans shared by every point of a sweep, built lazily per dtype.
/// A plan depends only on the runner's model, workload, and device count —
/// none of which vary across a sweep — plus the device's datatype width,
/// so a handful of entries serve thousands of evaluations.
#[derive(Debug, Default)]
struct PlanSlot {
    by_dtype: RwLock<BTreeMap<u32, Arc<EvalPlans>>>,
}

impl DseRunner {
    /// Runner with the paper's defaults: a 4-device node, the calibrated
    /// 7 nm area/cost models, and published October 2023 thresholds.
    #[must_use]
    pub fn new(model: ModelConfig, workload: WorkloadConfig) -> Self {
        DseRunner {
            model,
            workload,
            device_count: 4,
            expert_parallel: 1,
            datatype: None,
            area_model: AreaModel::n7(),
            cost_model: CostModel::n7(),
            sim_params: SimParams::calibrated(),
            rule_2023: Acr2023::published(),
            cache: None,
            plans: Arc::new(PlanSlot::default()),
            factored: Arc::new(crate::factored::FactoredSlot::default()),
            lattice: Arc::new(crate::lattice::LatticeSlot::default()),
            threads: None,
        }
    }

    /// Pin the sweep scheduler to exactly `n` worker threads instead of
    /// the `ACS_THREADS`/machine-parallelism default. Results are
    /// independent of the thread count by construction — the
    /// differential-verification harness uses this override to prove it
    /// without racing on environment variables.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n.clamp(1, 32));
        self
    }

    /// Override the tensor-parallel device count.
    #[must_use]
    pub fn with_device_count(mut self, n: u32) -> Self {
        self.device_count = n;
        // Plans and priced legs bake in the tensor-parallel degree; drop
        // the shared slots rather than poison clones that still use the
        // old count.
        self.plans = Arc::new(PlanSlot::default());
        self.factored = Arc::new(crate::factored::FactoredSlot::default());
        self.lattice = Arc::new(crate::lattice::LatticeSlot::default());
        self
    }

    /// Override the expert-parallel group size: plans lower the MoE FFN
    /// over an `n`-wide expert group, bracketed by dispatch/combine
    /// all-to-alls (see `acs_llm::LayerGraph::try_build_parallel`).
    /// Validation happens at plan-build time, so a group that is
    /// incompatible with the runner's model (dense, or experts not
    /// divisible by `n`) surfaces as a typed per-point failure, not a
    /// construction panic.
    #[must_use]
    pub fn with_expert_parallel(mut self, n: u32) -> Self {
        self.expert_parallel = n;
        // Plans and priced legs bake in the lowering; drop the slots.
        self.plans = Arc::new(PlanSlot::default());
        self.factored = Arc::new(crate::factored::FactoredSlot::default());
        self.lattice = Arc::new(crate::lattice::LatticeSlot::default());
        self
    }

    /// Retype every evaluated configuration to operand format `dt`
    /// before pricing. Eq. 1 multiplies TOPS by the operand bit width,
    /// so the override moves a design's TPP (and with it the regulatory
    /// screening) without touching its silicon; narrower formats also
    /// shrink the expert-parallel collective payloads, which size in
    /// bytes. Configurations already in format `dt` pass through
    /// untouched — an fp16 override is the identity on the fp16 sweep
    /// templates, cache keys included.
    #[must_use]
    pub fn with_datatype(mut self, dt: acs_hw::DataType) -> Self {
        self.datatype = Some(dt);
        // Plans key on the dtype width and priced legs bake it into the
        // collective payloads; drop the slots.
        self.plans = Arc::new(PlanSlot::default());
        self.factored = Arc::new(crate::factored::FactoredSlot::default());
        self.lattice = Arc::new(crate::lattice::LatticeSlot::default());
        self
    }

    /// Apply the runner's datatype override to one shared configuration:
    /// `None` when no override is set (or it already matches) so the
    /// caller keeps its borrow — the sweep hot path pays one enum
    /// compare, no refcount traffic — and a rebuilt device otherwise.
    #[inline]
    pub(crate) fn retyped(
        &self,
        config: &Arc<DeviceConfig>,
    ) -> Result<Option<Arc<DeviceConfig>>, AcsError> {
        match self.datatype {
            Some(dt) if dt != config.datatype() => {
                let mut builder = config.to_builder();
                builder.datatype(dt);
                Ok(Some(Arc::new(builder.build()?)))
            }
            _ => Ok(None),
        }
    }

    /// Override the simulator calibration.
    #[must_use]
    pub fn with_sim_params(mut self, params: SimParams) -> Self {
        self.sim_params = params;
        // Leg tables bake in the calibration (plans do not: they are
        // pure graph shape); a recalibrated runner must re-price.
        self.factored = Arc::new(crate::factored::FactoredSlot::default());
        self.lattice = Arc::new(crate::lattice::LatticeSlot::default());
        self
    }

    /// Memoise evaluations through a shared content-addressed cache.
    /// Sweeps and repro runs that revisit a design point — or a service
    /// screening the same configuration twice — return the cached
    /// [`EvaluatedDesign`] instead of re-running the area, cost, and
    /// latency models. The key covers every input of the evaluation
    /// (device parameters, model, workload, device count, calibration),
    /// so sharing one cache across differently configured runners is
    /// safe.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ShardedCache<EvaluatedDesign>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The model being evaluated.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The workload being evaluated.
    #[must_use]
    pub fn workload(&self) -> &WorkloadConfig {
        &self.workload
    }

    /// The expert-parallel group size plans are lowered for.
    #[must_use]
    pub fn expert_parallel(&self) -> u32 {
        self.expert_parallel
    }

    /// The content-addressed key for one configuration under this
    /// runner's model, workload, and calibration. The model, workload,
    /// device count, and datatype are folded into the two layer-plan
    /// digests (hex strings: a 64-bit digest does not fit a JSON
    /// number), which cover exactly the inputs that shape the operator
    /// graphs.
    #[must_use]
    pub fn cache_key(&self, config: &DeviceConfig) -> CacheKey {
        let n = Value::Number;
        let u = |x: u64| Value::Number(x as f64);
        let p = &self.sim_params;
        let dt = config.datatype().bytes();
        let prefill = plan_digest_parallel(
            &self.model,
            &self.workload,
            InferencePhase::Prefill,
            self.device_count,
            self.expert_parallel,
            dt,
        );
        let decode = plan_digest_parallel(
            &self.model,
            &self.workload,
            self.workload.decode_phase(),
            self.device_count,
            self.expert_parallel,
            dt,
        );
        CacheKey::from_value(&object(vec![
            ("v", Value::String("dse-eval-v2".to_owned())),
            (
                "device",
                object(vec![
                    ("name", Value::String(config.name().to_owned())),
                    ("cores", u(u64::from(config.core_count()))),
                    ("lanes", u(u64::from(config.lanes_per_core()))),
                    ("sys_x", u(u64::from(config.systolic().x))),
                    ("sys_y", u(u64::from(config.systolic().y))),
                    ("vec", u(u64::from(config.vector_width()))),
                    ("ghz", n(config.frequency_ghz())),
                    ("l1_kib", u(u64::from(config.l1_kib_per_core()))),
                    ("l2_mib", u(u64::from(config.l2_mib()))),
                    ("hbm_gb_s", n(config.hbm().bandwidth_gb_s)),
                    ("hbm_gib", n(config.hbm().capacity_gib)),
                    ("phy_gb_s", n(config.phy().total_gb_s())),
                    ("dtype_bits", u(u64::from(config.datatype().bit_width()))),
                ]),
            ),
            ("device_count", u(u64::from(self.device_count))),
            (
                "plans",
                object(vec![
                    ("prefill", Value::String(CacheKey::digest_hex(prefill))),
                    ("decode", Value::String(CacheKey::digest_hex(decode))),
                ]),
            ),
            (
                "params",
                object(vec![
                    ("dram_eff", n(p.dram_efficiency)),
                    ("dram_lat", n(p.dram_latency_s)),
                    ("op_ovh", n(p.op_overhead_s)),
                    ("l2_bpc", n(p.l2_bytes_per_lane_cycle)),
                    ("ar_step", n(p.allreduce_step_latency_s)),
                    ("l1_frac", n(p.l1_usable_fraction)),
                    ("l2_frac", n(p.l2_usable_fraction)),
                ]),
            ),
        ]))
    }

    /// Evaluate one configuration, enforcing the pipeline's numeric
    /// invariants at every boundary: the area, cost, and latency models
    /// may not emit NaN, infinity, or non-positive values.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the runner's device count
    /// is zero, and [`AcsError::NonFinite`] when any derived metric
    /// violates its contract.
    pub fn try_evaluate(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        self.try_evaluate_shared(&Arc::new(config.clone()))
    }

    /// [`DseRunner::try_evaluate`] for a configuration that is already
    /// shared. The sweep drivers use this form: the device is lent to the
    /// [`SystemConfig`] instead of deep-cloned per point.
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_shared(&self, config: &Arc<DeviceConfig>) -> Result<EvaluatedDesign, AcsError> {
        let retyped = self.retyped(config)?;
        let config = retyped.as_ref().unwrap_or(config);
        match &self.cache {
            Some(cache) => {
                let key = self.cache_key(config);
                let (design, hit) =
                    cache.get_or_try_insert(&key, || self.evaluate_uncached(config))?;
                // Cached handles: per-point hot path (see parallel_map).
                static HITS: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.hits");
                static MISSES: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.misses");
                if hit {
                    HITS.add(1);
                } else {
                    MISSES.add(1);
                }
                Ok(design)
            }
            None => self.evaluate_uncached(config),
        }
    }

    fn evaluate_uncached(&self, config: &Arc<DeviceConfig>) -> Result<EvaluatedDesign, AcsError> {
        // Allocation-free while healthy: the guard context is built only
        // on the error path, the device is shared into the system rather
        // than cloned, and the layer graphs come from the per-sweep plan
        // slot instead of being rebuilt per point.
        let ctx = || format!("evaluate.{}", config.name());
        let area = guard::ensure_positive_with(
            ctx,
            "die_area_mm2",
            self.area_model.die_area(config).total_mm2(),
        )?;
        let tpp = guard::ensure_positive_with(ctx, "tpp", config.tpp().0)?;
        let pd = guard::ensure_positive_with(ctx, "perf_density", tpp / area)?;
        let system = SystemConfig::shared(Arc::clone(config), self.device_count)?;
        let sim = Simulator::with_params(system, self.sim_params);
        let plans = self.plans_for(config.datatype().bytes())?;
        Ok(EvaluatedDesign {
            name: config.name().to_owned(),
            params: SweptParams::of(config),
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd: guard::ensure_positive_with(
                ctx,
                "die_cost_usd",
                self.cost_model.die_cost_usd(area),
            )?,
            good_die_cost_usd: guard::ensure_positive_with(
                ctx,
                "good_die_cost_usd",
                self.cost_model.good_die_cost_usd(area),
            )?,
            ttft_s: sim.try_ttft_planned(&plans.prefill)?,
            tbt_s: sim.try_tbt_planned(&plans.decode)?,
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        })
    }

    /// The plan pair for one datatype width, built at most once per
    /// runner (read-mostly after the first point of a sweep).
    pub(crate) fn plans_for(&self, dtype_bytes: u32) -> Result<Arc<EvalPlans>, AcsError> {
        if let Some(plans) = self
            .plans
            .by_dtype
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&dtype_bytes)
        {
            return Ok(Arc::clone(plans));
        }
        // Built outside the write lock; a racing builder just loses.
        let built = Arc::new(EvalPlans::build_parallel(
            &self.model,
            &self.workload,
            self.device_count,
            self.expert_parallel,
            dtype_bytes,
        )?);
        let mut map = self.plans.by_dtype.write().unwrap_or_else(PoisonError::into_inner);
        Ok(Arc::clone(map.entry(dtype_bytes).or_insert(built)))
    }

    /// The pre-plan evaluation pipeline, kept verbatim as the reference
    /// baseline: eager guard contexts, a device clone into the system,
    /// and per-call graph lowering through
    /// [`Simulator::try_simulate_layer`]. The golden-equivalence test
    /// and the bench-smoke speedup ratio compare the planned path
    /// against this.
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_legacy(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        if self.expert_parallel > 1 {
            // The legacy pipeline lowers per call through the dense
            // builder; silently pricing a different graph would defeat
            // its purpose as a differential baseline.
            return Err(AcsError::invalid_config(
                "expert_parallel",
                "the legacy reference pipeline prices the dense lowering only",
            ));
        }
        let retyped;
        let config = match self.datatype {
            Some(dt) if dt != config.datatype() => {
                let mut builder = config.to_builder();
                builder.datatype(dt);
                retyped = builder.build()?;
                &retyped
            }
            _ => config,
        };
        let ctx = format!("evaluate.{}", config.name());
        let area =
            guard::ensure_positive(&ctx, "die_area_mm2", self.area_model.die_area(config).total_mm2())?;
        let tpp = guard::ensure_positive(&ctx, "tpp", config.tpp().0)?;
        let pd = guard::ensure_positive(&ctx, "perf_density", tpp / area)?;
        let system = SystemConfig::new(config.clone(), self.device_count)?;
        let sim = Simulator::with_params(system, self.sim_params);
        Ok(EvaluatedDesign {
            name: config.name().to_owned(),
            params: SweptParams::of(config),
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd: guard::ensure_positive(
                &ctx,
                "die_cost_usd",
                self.cost_model.die_cost_usd(area),
            )?,
            good_die_cost_usd: guard::ensure_positive(
                &ctx,
                "good_die_cost_usd",
                self.cost_model.good_die_cost_usd(area),
            )?,
            ttft_s: {
                let lat =
                    sim.try_simulate_layer(&self.model, &self.workload, InferencePhase::Prefill)?;
                guard::ensure_positive("simulator", "ttft_s", lat.total_s())?
            },
            tbt_s: {
                let lat =
                    sim.try_simulate_layer(&self.model, &self.workload, self.workload.decode_phase())?;
                guard::ensure_positive("simulator", "tbt_s", lat.total_s())?
            },
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        })
    }

    /// Evaluate a whole sweep at a TPP ceiling, in parallel across the
    /// machine's cores. Points that fail validation or evaluation are
    /// dropped; use [`DseRunner::run_report`] to keep the failure ledger.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec, tpp_target: f64) -> Vec<EvaluatedDesign> {
        self.run_report(&spec.candidates(tpp_target)).designs.into_iter().map(|(_, d)| d).collect()
    }

    /// Evaluate an explicit list of configurations in parallel, preserving
    /// order and length: `result[i]` is the outcome of `configs[i]`. Each
    /// point runs behind `catch_unwind`, so one pathological configuration
    /// cannot take down the batch.
    #[must_use]
    pub fn run_configs(&self, configs: &[DeviceConfig]) -> Vec<Result<EvaluatedDesign, AcsError>> {
        self.parallel_map(configs, |cfg| cfg.name(), |cfg| self.try_evaluate(cfg))
    }

    /// Evaluate raw sweep candidates with full fault isolation: each point
    /// is validated and evaluated behind `std::panic::catch_unwind`; a
    /// panic, an invalid candidate, or a numeric-invariant violation
    /// becomes a [`DesignFailure`] in the report instead of aborting the
    /// sweep.
    #[must_use]
    pub fn run_report(&self, candidates: &[CandidateParams]) -> SweepReport {
        let outcomes = self.parallel_map(
            candidates,
            |cand| cand.name.as_str(),
            |cand| cand.build().map(Arc::new).and_then(|cfg| self.try_evaluate_shared(&cfg)),
        );
        self.collect_report(candidates, outcomes)
    }

    /// [`DseRunner::run_report`] through the pre-plan
    /// [`DseRunner::try_evaluate_legacy`] pipeline. Reference baseline
    /// for equivalence tests and the bench-smoke speedup ratio; never
    /// consults the evaluation cache.
    #[must_use]
    pub fn run_report_legacy(&self, candidates: &[CandidateParams]) -> SweepReport {
        let outcomes = self.parallel_map(
            candidates,
            |cand| cand.name.as_str(),
            |cand| cand.build().and_then(|cfg| self.try_evaluate_legacy(&cfg)),
        );
        self.collect_report(candidates, outcomes)
    }

    pub(crate) fn collect_report(
        &self,
        candidates: &[CandidateParams],
        outcomes: Vec<Result<EvaluatedDesign, AcsError>>,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        // One up-front allocation instead of log2(n) grow-and-copy
        // cycles over ~150-byte elements — measurable on large sweeps.
        report.designs.reserve(candidates.len());
        for (index, (cand, outcome)) in candidates.iter().zip(outcomes).enumerate() {
            match outcome {
                Ok(d) => report.designs.push((index, d)),
                Err(reason) => {
                    report.failures.push(DesignFailure { index, params: cand.name.clone(), reason });
                }
            }
        }
        self.report_telemetry(&report);
        report
    }

    /// Flush a finished sweep report's outcome counters. Shared by
    /// [`DseRunner::collect_report`] and the lattice path's direct
    /// assembly so both emit identical telemetry.
    pub(crate) fn report_telemetry(&self, report: &SweepReport) {
        if acs_telemetry::enabled() {
            acs_telemetry::count("dse.eval.ok", report.designs.len() as u64);
            acs_telemetry::count("dse.eval.failed", report.failures.len() as u64);
            // One registry lookup per failure *kind*, not per failure: a
            // sweep with thousands of broken points flushes a handful of
            // pre-aggregated counts.
            let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
            for failure in &report.failures {
                *by_kind.entry(failure.reason.kind()).or_insert(0) += 1;
            }
            for (kind, count) in by_kind {
                acs_telemetry::count(&format!("dse.eval.fail.{kind}"), count);
            }
        }
    }

    /// Order-preserving parallel map with per-item panic containment and
    /// work stealing. Workers claim small stripes of the input from a
    /// shared atomic cursor, so a run of cheap (or instantly failing)
    /// points on one side of the sweep cannot strand the expensive tail
    /// on a single thread the way static chunking did. `label` names the
    /// item in panic reports.
    pub(crate) fn parallel_map<T: Sync, U: Send + Sync>(
        &self,
        items: &[T],
        label: impl Fn(&T) -> &str + Sync,
        f: impl Fn(&T) -> Result<U, AcsError> + Sync,
    ) -> Vec<Result<U, AcsError>> {
        self.parallel_map_on(self.worker_count(), items, label, f)
    }

    /// The worker-thread count `parallel_map` will use: the runner's
    /// explicit override, else the machine default.
    pub(crate) fn worker_count(&self) -> usize {
        self.threads.unwrap_or_else(worker_threads)
    }

    fn parallel_map_on<T: Sync, U: Send + Sync>(
        &self,
        threads: usize,
        items: &[T],
        label: impl Fn(&T) -> &str + Sync,
        f: impl Fn(&T) -> Result<U, AcsError> + Sync,
    ) -> Vec<Result<U, AcsError>> {
        if items.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, items.len());
        acs_telemetry::set_gauge("dse.threads", threads as u64);
        if threads == 1 {
            // One worker needs no scope, no spawn/join, and no slot
            // claims — run the same per-item contained loop inline. On a
            // single-core host the spawn+join alone costs tens of
            // microseconds per sweep.
            let mut last = acs_telemetry::enabled().then(std::time::Instant::now);
            return items
                .iter()
                .map(|item| {
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(item))).unwrap_or_else(
                        |payload| {
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_owned())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_owned());
                            Err(AcsError::EvaluationPanic {
                                design: label(item).to_owned(),
                                message,
                            })
                        },
                    );
                    if let Some(t0) = last {
                        static POINT_US: acs_telemetry::GlobalHistogram =
                            acs_telemetry::GlobalHistogram::new("dse.eval.point_us");
                        let t1 = std::time::Instant::now();
                        POINT_US.record((t1 - t0).as_secs_f64() * 1e6);
                        last = Some(t1);
                    }
                    outcome
                })
                .collect();
        }
        // Stripes of a few items amortise the claim fetch while staying
        // small enough that no worker can hoard a long expensive run.
        let stripe = (items.len() / (threads * 8)).clamp(1, 64);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<OnceLock<Result<U, AcsError>>> = Vec::new();
        slots.resize_with(items.len(), OnceLock::new);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let f = &f;
                let label = &label;
                let next = &next;
                let slots = &slots;
                scope.spawn(move || {
                    // Per-point wall time goes to a histogram rather than
                    // a span: histogram merges are order-free, so the
                    // trace structure stays deterministic however the
                    // scheduler interleaves worker threads. Timestamps are
                    // chained — each point's end is the next point's start
                    // — so profiling costs one clock read per point, not
                    // two; the histogram's own count is the point count.
                    let mut last = acs_telemetry::enabled().then(std::time::Instant::now);
                    loop {
                        let start = next.fetch_add(stripe, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + stripe).min(items.len());
                        for (item, slot) in items[start..end].iter().zip(&slots[start..end]) {
                            let outcome = catch_unwind(AssertUnwindSafe(|| f(item)))
                                .unwrap_or_else(|payload| {
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| (*s).to_owned())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                                    Err(AcsError::EvaluationPanic {
                                        design: label(item).to_owned(),
                                        message,
                                    })
                                });
                            if let Some(t0) = last {
                                static POINT_US: acs_telemetry::GlobalHistogram =
                                    acs_telemetry::GlobalHistogram::new("dse.eval.point_us");
                                let t1 = std::time::Instant::now();
                                POINT_US.record((t1 - t0).as_secs_f64() * 1e6);
                                last = Some(t1);
                            }
                            // Each index is claimed by exactly one stripe,
                            // so the set cannot already be occupied.
                            let _ = slot.set(outcome);
                        }
                    }
                });
            }
        });
        // Every slot is filled by construction (the cursor hands each
        // index to exactly one worker); a hole would be a harness bug,
        // reported as a typed error rather than a panic.
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner().unwrap_or_else(|| {
                    Err(AcsError::EvaluationPanic {
                        design: label(&items[i]).to_owned(),
                        message: "parallel harness left a slot unfilled".to_owned(),
                    })
                })
            })
            .collect()
    }
}

/// Worker-thread count for [`DseRunner::parallel_map`]: the
/// `ACS_THREADS` environment variable when it parses as a positive
/// integer, otherwise the machine's available parallelism (4 when
/// unknown); capped at 32 either way. Surfaced per run as the
/// `dse.threads` gauge.
pub(crate) fn worker_threads() -> usize {
    std::env::var("ACS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
        .min(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    #[test]
    fn run_evaluates_every_feasible_point() {
        let designs = runner().run(&small_spec(), 4800.0);
        assert_eq!(designs.len(), 8);
        for d in &designs {
            assert!(d.ttft_s > 0.0 && d.tbt_s > 0.0);
            assert!(d.die_area_mm2 > 100.0);
            assert!(d.die_cost_usd > 0.0);
            assert!(d.good_die_cost_usd > d.die_cost_usd);
            assert!((d.perf_density - d.tpp / d.die_area_mm2).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_run_matches_serial_evaluation() {
        let r = runner();
        let configs = small_spec().configs(4800.0);
        let parallel = r.run_configs(&configs);
        assert_eq!(parallel.len(), configs.len());
        for (cfg, got) in configs.iter().zip(&parallel) {
            let serial = r.try_evaluate(cfg).unwrap();
            assert_eq!(&serial, got.as_ref().unwrap());
        }
    }

    #[test]
    fn run_report_isolates_bad_candidates() {
        let r = runner();
        let mut candidates = small_spec().candidates(4800.0);
        candidates[1].hbm_tb_s = 0.0; // injected fault
        candidates[3].lanes_per_core = 0; // injected fault
        let report = r.run_report(&candidates);
        assert_eq!(report.total(), candidates.len());
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].index, 1);
        assert_eq!(report.failures[1].index, 3);
        for f in &report.failures {
            assert_eq!(f.kind(), "invalid_config");
        }
        // Healthy points are unaffected by their broken neighbours.
        let healthy = r.run_report(&small_spec().candidates(4800.0));
        for (i, d) in &report.designs {
            let (_, expected) = healthy.designs.iter().find(|(j, _)| j == i).unwrap();
            assert_eq!(d, expected);
        }
    }

    #[test]
    fn zero_device_count_is_a_typed_error() {
        let r = runner().with_device_count(0);
        let cfg = DeviceConfig::a100_like();
        assert_eq!(r.try_evaluate(&cfg).unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn memory_bandwidth_separates_tbt_levels() {
        // Figure 6b/6e: decode latencies cluster by memory bandwidth.
        let designs = runner().run(&small_spec(), 4800.0);
        let slow: Vec<_> = designs.iter().filter(|d| d.params.hbm_tb_s == 2.0).collect();
        let fast: Vec<_> = designs.iter().filter(|d| d.params.hbm_tb_s == 3.2).collect();
        let max_fast = fast.iter().map(|d| d.tbt_s).fold(0.0, f64::max);
        let min_slow = slow.iter().map(|d| d.tbt_s).fold(f64::INFINITY, f64::min);
        assert!(
            max_fast < min_slow,
            "3.2 TB/s designs should all out-decode 2.0 TB/s designs"
        );
    }

    #[test]
    fn pd_compliance_depends_on_area() {
        // At 2400 TPP, small-die configs violate the PD floor (Fig. 7).
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![48],
            hbm_tb_s: vec![3.2],
            device_bw_gb_s: vec![600.0],
        };
        let designs = runner().run(&spec, 2400.0);
        let small_l1 = designs.iter().find(|d| d.params.l1_kib == 192).unwrap();
        let big_l1 = designs.iter().find(|d| d.params.l1_kib == 1024).unwrap();
        assert!(!small_l1.pd_unregulated_2023, "PD = {}", small_l1.perf_density);
        assert!(big_l1.die_area_mm2 > small_l1.die_area_mm2);
    }

    #[test]
    fn cached_runner_matches_uncached_and_hits_on_repeat() {
        let cache = Arc::new(ShardedCache::new(256));
        let plain = runner();
        let cached = runner().with_cache(Arc::clone(&cache));
        let configs = small_spec().configs(4800.0);
        for cfg in &configs {
            assert_eq!(cached.try_evaluate(cfg).unwrap(), plain.try_evaluate(cfg).unwrap());
        }
        let cold = cache.stats();
        assert_eq!(cold.misses as usize, configs.len());
        assert_eq!(cold.insertions as usize, configs.len());
        for cfg in &configs {
            cached.try_evaluate(cfg).unwrap();
        }
        let warm = cache.stats();
        assert_eq!(warm.hits as usize, configs.len(), "second pass should be all hits");
        assert_eq!(warm.insertions, cold.insertions);
    }

    #[test]
    fn cache_keys_separate_workloads_and_device_counts() {
        let cfg = DeviceConfig::a100_like();
        let base = runner();
        let other_workload =
            DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::new(8, 512, 128));
        let other_count = runner().with_device_count(8);
        let k0 = base.cache_key(&cfg);
        assert_ne!(k0.canonical(), other_workload.cache_key(&cfg).canonical());
        assert_ne!(k0.canonical(), other_count.cache_key(&cfg).canonical());
        // Same runner, same config: byte-identical canonical form.
        assert_eq!(k0.canonical(), runner().cache_key(&cfg).canonical());
        assert_eq!(k0.digest(), runner().cache_key(&cfg).digest());
    }

    #[test]
    fn cached_errors_are_not_memoised() {
        let cache = Arc::new(ShardedCache::new(64));
        let bad = runner().with_device_count(0).with_cache(Arc::clone(&cache));
        let cfg = DeviceConfig::a100_like();
        assert_eq!(bad.try_evaluate(&cfg).unwrap_err().kind(), "invalid_config");
        assert_eq!(cache.len(), 0, "failed evaluations must not occupy cache slots");
    }

    #[test]
    fn cost_products_multiply_out() {
        let d = runner().run(&small_spec(), 4800.0).remove(0);
        assert!((d.ttft_cost_product() - d.ttft_s * 1e3 * d.die_cost_usd).abs() < 1e-9);
        assert!((d.tbt_cost_product() - d.tbt_s * 1e3 * d.die_cost_usd).abs() < 1e-9);
    }

    #[test]
    fn planned_path_matches_legacy_reference() {
        let r = runner();
        for cfg in small_spec().configs(4800.0) {
            let planned = r.try_evaluate(&cfg).unwrap();
            let legacy = r.try_evaluate_legacy(&cfg).unwrap();
            assert_eq!(planned, legacy);
            assert_eq!(planned.ttft_s.to_bits(), legacy.ttft_s.to_bits());
            assert_eq!(planned.tbt_s.to_bits(), legacy.tbt_s.to_bits());
        }
    }

    #[test]
    fn datatype_override_retypes_evaluations() {
        let cfg = DeviceConfig::a100_like();
        let base = runner().try_evaluate(&cfg).unwrap();
        // An fp16 override is the identity on the fp16 template.
        let same = runner().with_datatype(acs_hw::DataType::Fp16).try_evaluate(&cfg).unwrap();
        assert_eq!(base, same);
        assert_eq!(base.ttft_s.to_bits(), same.ttft_s.to_bits());
        // Int4 sheds 3/4 of the TPP at constant silicon (Eq. 1).
        let narrow = runner().with_datatype(acs_hw::DataType::Int4);
        let int4 = narrow.try_evaluate(&cfg).unwrap();
        assert!((int4.tpp / base.tpp - 0.25).abs() < 0.01, "ratio {}", int4.tpp / base.tpp);
        assert_eq!(int4.params.core_count, base.params.core_count);
        // All three pricing paths agree under the override.
        let factored = narrow.try_evaluate_factored(&cfg).unwrap();
        let legacy = narrow.try_evaluate_legacy(&cfg).unwrap();
        assert_eq!(int4, factored);
        assert_eq!(int4.ttft_s.to_bits(), legacy.ttft_s.to_bits());
    }

    #[test]
    fn panic_reports_carry_the_design_label() {
        let r = runner();
        let items = vec!["alpha".to_owned(), "beta".to_owned()];
        let results = r.parallel_map(
            &items,
            |name| name.as_str(),
            |name: &String| -> Result<u32, AcsError> {
                if name == "beta" {
                    panic!("injected failure in {name}");
                }
                Ok(1)
            },
        );
        assert_eq!(results[0], Ok(1));
        match &results[1] {
            Err(AcsError::EvaluationPanic { design, message }) => {
                assert_eq!(design, "beta");
                assert!(message.contains("injected failure"), "{message}");
            }
            other => panic!("expected a labelled panic, got {other:?}"),
        }
    }

    #[test]
    fn work_stealing_spreads_a_skewed_tail() {
        // First half of the items fail instantly; second half each sleep.
        // Under the old static chunking (4 threads, 8 items -> chunks of
        // 2) the four sleepers land two-per-thread on the back half of
        // the pool: >= 2 sleeps of serial wall time. Stealing interleaves
        // claims, so every worker ends up with ~one sleeper and the wall
        // time stays near one sleep. The bound sits between the two
        // regimes; sleeps do not need CPU, so this holds on 1 core.
        let r = runner();
        let sleep = std::time::Duration::from_millis(100);
        let items: Vec<usize> = (0..8).collect();
        let started = std::time::Instant::now();
        let results = r.parallel_map_on(
            4,
            &items,
            |i| if *i < 4 { "fast" } else { "slow" },
            |i| {
                if *i < 4 {
                    panic!("instant failure");
                }
                std::thread::sleep(sleep);
                Ok(*i)
            },
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed < sleep + std::time::Duration::from_millis(70),
            "skewed sweep should finish in ~one sleep with stealing, took {elapsed:?}"
        );
        for (i, outcome) in results.iter().enumerate() {
            if i < 4 {
                assert!(matches!(outcome, Err(AcsError::EvaluationPanic { .. })));
            } else {
                assert_eq!(*outcome, Ok(i));
            }
        }
    }

    #[test]
    fn acs_threads_env_overrides_worker_count() {
        // Every transient value below is a valid positive count, so a
        // concurrently running parallel_map at worst sizes its pool
        // differently for one sweep — correctness never depends on it.
        let n = worker_threads();
        assert!((1..=32).contains(&n), "worker count out of range: {n}");
        std::env::set_var("ACS_THREADS", " 3 ");
        assert_eq!(worker_threads(), 3, "trimmed positive integers are honoured");
        std::env::set_var("ACS_THREADS", "99");
        assert_eq!(worker_threads(), 32, "overrides are capped at 32");
        std::env::set_var("ACS_THREADS", "0");
        assert!(worker_threads() >= 1, "zero falls back to the default");
        std::env::remove_var("ACS_THREADS");
        assert_eq!(worker_threads(), n);
    }
}
