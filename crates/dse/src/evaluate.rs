//! Design-point evaluation: latency, area, compliance, and cost.

use crate::report::{DesignFailure, SweepReport};
use crate::sweeps::{CandidateParams, SweepSpec};
use acs_cache::{CacheKey, ShardedCache};
use acs_errors::json::{object, Value};
use acs_errors::{guard, AcsError};
use acs_hw::{AreaModel, CostModel, DeviceConfig, SystemConfig, RETICLE_LIMIT_MM2};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_policy::Acr2023;
use acs_sim::{SimParams, Simulator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The swept architectural parameters of one design, kept alongside its
/// results so distributions can be grouped by a fixed parameter
/// (Figures 11 and 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweptParams {
    /// Square systolic dimension.
    pub systolic_dim: u32,
    /// Lanes per core.
    pub lanes_per_core: u32,
    /// Core count (solved from the TPP ceiling).
    pub core_count: u32,
    /// L1 per core in KiB.
    pub l1_kib: u32,
    /// L2 in MiB.
    pub l2_mib: u32,
    /// HBM bandwidth in TB/s.
    pub hbm_tb_s: f64,
    /// Device bandwidth in GB/s.
    pub device_bw_gb_s: f64,
}

impl SweptParams {
    /// Extract the swept parameters from a configuration.
    #[must_use]
    pub fn of(config: &DeviceConfig) -> Self {
        SweptParams {
            systolic_dim: config.systolic().x,
            lanes_per_core: config.lanes_per_core(),
            core_count: config.core_count(),
            l1_kib: config.l1_kib_per_core(),
            l2_mib: config.l2_mib(),
            hbm_tb_s: config.hbm().bandwidth_tb_s(),
            device_bw_gb_s: config.phy().total_gb_s(),
        }
    }
}

/// One fully evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedDesign {
    /// Design name.
    pub name: String,
    /// The swept parameters.
    pub params: SweptParams,
    /// Achieved TPP (just under the sweep's ceiling).
    pub tpp: f64,
    /// Modelled die area in mm².
    pub die_area_mm2: f64,
    /// Performance density (TPP / area).
    pub perf_density: f64,
    /// Raw silicon die cost in USD.
    pub die_cost_usd: f64,
    /// Yield-adjusted cost per good die in USD.
    pub good_die_cost_usd: f64,
    /// Per-layer prefill latency in seconds (TTFT).
    pub ttft_s: f64,
    /// Per-layer, per-token decode latency in seconds (TBT).
    pub tbt_s: f64,
    /// Whether the die fits the 860 mm² reticle.
    pub within_reticle: bool,
    /// Whether the design escapes the October 2023 data-center rule
    /// entirely (the DSE's compliance target, §4.3).
    pub pd_unregulated_2023: bool,
}

impl EvaluatedDesign {
    /// TTFT × raw die cost (ms·$), Figure 8's y-axis.
    #[must_use]
    pub fn ttft_cost_product(&self) -> f64 {
        self.ttft_s * 1e3 * self.die_cost_usd
    }

    /// TBT × raw die cost (ms·$).
    #[must_use]
    pub fn tbt_cost_product(&self) -> f64 {
        self.tbt_s * 1e3 * self.die_cost_usd
    }

    /// Manufacturable and (October 2023) unregulated.
    #[must_use]
    pub fn valid_2023(&self) -> bool {
        self.within_reticle && self.pd_unregulated_2023
    }
}

/// Evaluates sweeps of designs for one model/workload pair.
///
/// # Example
///
/// ```
/// use acs_dse::{DseRunner, SweepSpec};
/// use acs_llm::{ModelConfig, WorkloadConfig};
///
/// let runner = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default());
/// let spec = SweepSpec {
///     hbm_tb_s: vec![2.0, 3.2],
///     lanes_per_core: vec![4],
///     l1_kib: vec![192],
///     l2_mib: vec![40],
///     systolic_dims: vec![16],
///     device_bw_gb_s: vec![600.0],
/// };
/// let designs = runner.run(&spec, 4800.0);
/// assert_eq!(designs.len(), 2);
/// // More memory bandwidth always decodes faster.
/// assert!(designs[1].tbt_s != designs[0].tbt_s);
/// ```
#[derive(Debug, Clone)]
pub struct DseRunner {
    model: ModelConfig,
    workload: WorkloadConfig,
    device_count: u32,
    area_model: AreaModel,
    cost_model: CostModel,
    sim_params: SimParams,
    rule_2023: Acr2023,
    cache: Option<Arc<ShardedCache<EvaluatedDesign>>>,
}

impl DseRunner {
    /// Runner with the paper's defaults: a 4-device node, the calibrated
    /// 7 nm area/cost models, and published October 2023 thresholds.
    #[must_use]
    pub fn new(model: ModelConfig, workload: WorkloadConfig) -> Self {
        DseRunner {
            model,
            workload,
            device_count: 4,
            area_model: AreaModel::n7(),
            cost_model: CostModel::n7(),
            sim_params: SimParams::calibrated(),
            rule_2023: Acr2023::published(),
            cache: None,
        }
    }

    /// Override the tensor-parallel device count.
    #[must_use]
    pub fn with_device_count(mut self, n: u32) -> Self {
        self.device_count = n;
        self
    }

    /// Override the simulator calibration.
    #[must_use]
    pub fn with_sim_params(mut self, params: SimParams) -> Self {
        self.sim_params = params;
        self
    }

    /// Memoise evaluations through a shared content-addressed cache.
    /// Sweeps and repro runs that revisit a design point — or a service
    /// screening the same configuration twice — return the cached
    /// [`EvaluatedDesign`] instead of re-running the area, cost, and
    /// latency models. The key covers every input of the evaluation
    /// (device parameters, model, workload, device count, calibration),
    /// so sharing one cache across differently configured runners is
    /// safe.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ShardedCache<EvaluatedDesign>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The model being evaluated.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The content-addressed key for one configuration under this
    /// runner's model, workload, and calibration.
    #[must_use]
    pub fn cache_key(&self, config: &DeviceConfig) -> CacheKey {
        let n = Value::Number;
        let u = |x: u64| Value::Number(x as f64);
        let p = &self.sim_params;
        CacheKey::from_value(&object(vec![
            ("v", Value::String("dse-eval-v1".to_owned())),
            (
                "device",
                object(vec![
                    ("name", Value::String(config.name().to_owned())),
                    ("cores", u(u64::from(config.core_count()))),
                    ("lanes", u(u64::from(config.lanes_per_core()))),
                    ("sys_x", u(u64::from(config.systolic().x))),
                    ("sys_y", u(u64::from(config.systolic().y))),
                    ("vec", u(u64::from(config.vector_width()))),
                    ("ghz", n(config.frequency_ghz())),
                    ("l1_kib", u(u64::from(config.l1_kib_per_core()))),
                    ("l2_mib", u(u64::from(config.l2_mib()))),
                    ("hbm_gb_s", n(config.hbm().bandwidth_gb_s)),
                    ("hbm_gib", n(config.hbm().capacity_gib)),
                    ("phy_gb_s", n(config.phy().total_gb_s())),
                    ("dtype_bits", u(u64::from(config.datatype().bit_width()))),
                ]),
            ),
            ("device_count", u(u64::from(self.device_count))),
            (
                "model",
                object(vec![
                    ("name", Value::String(self.model.name().to_owned())),
                    ("layers", u(u64::from(self.model.num_layers()))),
                    ("d_model", u(self.model.d_model())),
                    ("d_ffn", u(self.model.d_ffn())),
                    ("heads", u(u64::from(self.model.num_heads()))),
                    ("kv_heads", u(u64::from(self.model.num_kv_heads()))),
                ]),
            ),
            (
                "workload",
                object(vec![
                    ("batch", u(self.workload.batch())),
                    ("input", u(self.workload.input_len())),
                    ("output", u(self.workload.output_len())),
                ]),
            ),
            (
                "params",
                object(vec![
                    ("dram_eff", n(p.dram_efficiency)),
                    ("dram_lat", n(p.dram_latency_s)),
                    ("op_ovh", n(p.op_overhead_s)),
                    ("l2_bpc", n(p.l2_bytes_per_lane_cycle)),
                    ("ar_step", n(p.allreduce_step_latency_s)),
                    ("l1_frac", n(p.l1_usable_fraction)),
                    ("l2_frac", n(p.l2_usable_fraction)),
                ]),
            ),
        ]))
    }

    /// Evaluate one configuration, enforcing the pipeline's numeric
    /// invariants at every boundary: the area, cost, and latency models
    /// may not emit NaN, infinity, or non-positive values.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] when the runner's device count
    /// is zero, and [`AcsError::NonFinite`] when any derived metric
    /// violates its contract.
    pub fn try_evaluate(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        match &self.cache {
            Some(cache) => {
                let key = self.cache_key(config);
                let (design, hit) =
                    cache.get_or_try_insert(&key, || self.evaluate_uncached(config))?;
                // Cached handles: per-point hot path (see parallel_map).
                static HITS: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.hits");
                static MISSES: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.misses");
                if hit {
                    HITS.add(1);
                } else {
                    MISSES.add(1);
                }
                Ok(design)
            }
            None => self.evaluate_uncached(config),
        }
    }

    fn evaluate_uncached(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        let ctx = format!("evaluate.{}", config.name());
        let area =
            guard::ensure_positive(&ctx, "die_area_mm2", self.area_model.die_area(config).total_mm2())?;
        let tpp = guard::ensure_positive(&ctx, "tpp", config.tpp().0)?;
        let pd = guard::ensure_positive(&ctx, "perf_density", tpp / area)?;
        let system = SystemConfig::new(config.clone(), self.device_count)?;
        let sim = Simulator::with_params(system, self.sim_params);
        Ok(EvaluatedDesign {
            name: config.name().to_owned(),
            params: SweptParams::of(config),
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd: guard::ensure_positive(
                &ctx,
                "die_cost_usd",
                self.cost_model.die_cost_usd(area),
            )?,
            good_die_cost_usd: guard::ensure_positive(
                &ctx,
                "good_die_cost_usd",
                self.cost_model.good_die_cost_usd(area),
            )?,
            ttft_s: sim.try_ttft_s(&self.model, &self.workload)?,
            tbt_s: sim.try_tbt_s(&self.model, &self.workload)?,
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        })
    }

    /// Evaluate a whole sweep at a TPP ceiling, in parallel across the
    /// machine's cores. Points that fail validation or evaluation are
    /// dropped; use [`DseRunner::run_report`] to keep the failure ledger.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec, tpp_target: f64) -> Vec<EvaluatedDesign> {
        self.run_report(&spec.candidates(tpp_target)).designs.into_iter().map(|(_, d)| d).collect()
    }

    /// Evaluate an explicit list of configurations in parallel, preserving
    /// order and length: `result[i]` is the outcome of `configs[i]`. Each
    /// point runs behind `catch_unwind`, so one pathological configuration
    /// cannot take down the batch.
    #[must_use]
    pub fn run_configs(&self, configs: &[DeviceConfig]) -> Vec<Result<EvaluatedDesign, AcsError>> {
        self.parallel_map(configs, |cfg| self.try_evaluate(cfg))
    }

    /// Evaluate raw sweep candidates with full fault isolation: each point
    /// is validated and evaluated behind `std::panic::catch_unwind`; a
    /// panic, an invalid candidate, or a numeric-invariant violation
    /// becomes a [`DesignFailure`] in the report instead of aborting the
    /// sweep.
    #[must_use]
    pub fn run_report(&self, candidates: &[CandidateParams]) -> SweepReport {
        let outcomes = self.parallel_map(candidates, |cand| cand.build().and_then(|cfg| self.try_evaluate(&cfg)));
        let mut report = SweepReport::default();
        for (index, (cand, outcome)) in candidates.iter().zip(outcomes).enumerate() {
            match outcome {
                Ok(d) => report.designs.push((index, d)),
                Err(reason) => {
                    report.failures.push(DesignFailure { index, params: cand.name.clone(), reason });
                }
            }
        }
        if acs_telemetry::enabled() {
            acs_telemetry::count("dse.eval.ok", report.designs.len() as u64);
            acs_telemetry::count("dse.eval.failed", report.failures.len() as u64);
            for failure in &report.failures {
                acs_telemetry::count(&format!("dse.eval.fail.{}", failure.reason.kind()), 1);
            }
        }
        report
    }

    /// Order-preserving parallel map with per-item panic containment.
    pub(crate) fn parallel_map<T: Sync, U: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> Result<U, AcsError> + Sync,
    ) -> Vec<Result<U, AcsError>> {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(32);
        let chunk = items.len().div_ceil(threads.max(1)).max(1);
        let mut results: Vec<Option<Result<U, AcsError>>> = Vec::new();
        results.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            for (items_chunk, results_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk))
            {
                let f = &f;
                scope.spawn(move || {
                    // Per-point wall time goes to a histogram rather than
                    // a span: histogram merges are order-free, so the
                    // trace structure stays deterministic however the
                    // scheduler interleaves worker threads. Timestamps are
                    // chained — each point's end is the next point's start
                    // — so profiling costs one clock read per point, not
                    // two; the histogram's own count is the point count.
                    let mut last = acs_telemetry::enabled().then(std::time::Instant::now);
                    for (item, slot) in items_chunk.iter().zip(results_chunk.iter_mut()) {
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(item)))
                            .unwrap_or_else(|payload| {
                                let message = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_owned())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                                Err(AcsError::EvaluationPanic { design: String::new(), message })
                            });
                        if let Some(t0) = last {
                            static POINT_US: acs_telemetry::GlobalHistogram =
                                acs_telemetry::GlobalHistogram::new("dse.eval.point_us");
                            let t1 = std::time::Instant::now();
                            POINT_US.record((t1 - t0).as_secs_f64() * 1e6);
                            last = Some(t1);
                        }
                        *slot = Some(outcome);
                    }
                });
            }
        });
        // Every slot is filled by construction (chunks partition both
        // slices identically); a hole would be a harness bug, reported as
        // a typed error rather than a panic.
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(AcsError::EvaluationPanic {
                        design: String::new(),
                        message: "parallel harness left a slot unfilled".to_owned(),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    #[test]
    fn run_evaluates_every_feasible_point() {
        let designs = runner().run(&small_spec(), 4800.0);
        assert_eq!(designs.len(), 8);
        for d in &designs {
            assert!(d.ttft_s > 0.0 && d.tbt_s > 0.0);
            assert!(d.die_area_mm2 > 100.0);
            assert!(d.die_cost_usd > 0.0);
            assert!(d.good_die_cost_usd > d.die_cost_usd);
            assert!((d.perf_density - d.tpp / d.die_area_mm2).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_run_matches_serial_evaluation() {
        let r = runner();
        let configs = small_spec().configs(4800.0);
        let parallel = r.run_configs(&configs);
        assert_eq!(parallel.len(), configs.len());
        for (cfg, got) in configs.iter().zip(&parallel) {
            let serial = r.try_evaluate(cfg).unwrap();
            assert_eq!(&serial, got.as_ref().unwrap());
        }
    }

    #[test]
    fn run_report_isolates_bad_candidates() {
        let r = runner();
        let mut candidates = small_spec().candidates(4800.0);
        candidates[1].hbm_tb_s = 0.0; // injected fault
        candidates[3].lanes_per_core = 0; // injected fault
        let report = r.run_report(&candidates);
        assert_eq!(report.total(), candidates.len());
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].index, 1);
        assert_eq!(report.failures[1].index, 3);
        for f in &report.failures {
            assert_eq!(f.kind(), "invalid_config");
        }
        // Healthy points are unaffected by their broken neighbours.
        let healthy = r.run_report(&small_spec().candidates(4800.0));
        for (i, d) in &report.designs {
            let (_, expected) = healthy.designs.iter().find(|(j, _)| j == i).unwrap();
            assert_eq!(d, expected);
        }
    }

    #[test]
    fn zero_device_count_is_a_typed_error() {
        let r = runner().with_device_count(0);
        let cfg = DeviceConfig::a100_like();
        assert_eq!(r.try_evaluate(&cfg).unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn memory_bandwidth_separates_tbt_levels() {
        // Figure 6b/6e: decode latencies cluster by memory bandwidth.
        let designs = runner().run(&small_spec(), 4800.0);
        let slow: Vec<_> = designs.iter().filter(|d| d.params.hbm_tb_s == 2.0).collect();
        let fast: Vec<_> = designs.iter().filter(|d| d.params.hbm_tb_s == 3.2).collect();
        let max_fast = fast.iter().map(|d| d.tbt_s).fold(0.0, f64::max);
        let min_slow = slow.iter().map(|d| d.tbt_s).fold(f64::INFINITY, f64::min);
        assert!(
            max_fast < min_slow,
            "3.2 TB/s designs should all out-decode 2.0 TB/s designs"
        );
    }

    #[test]
    fn pd_compliance_depends_on_area() {
        // At 2400 TPP, small-die configs violate the PD floor (Fig. 7).
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![48],
            hbm_tb_s: vec![3.2],
            device_bw_gb_s: vec![600.0],
        };
        let designs = runner().run(&spec, 2400.0);
        let small_l1 = designs.iter().find(|d| d.params.l1_kib == 192).unwrap();
        let big_l1 = designs.iter().find(|d| d.params.l1_kib == 1024).unwrap();
        assert!(!small_l1.pd_unregulated_2023, "PD = {}", small_l1.perf_density);
        assert!(big_l1.die_area_mm2 > small_l1.die_area_mm2);
    }

    #[test]
    fn cached_runner_matches_uncached_and_hits_on_repeat() {
        let cache = Arc::new(ShardedCache::new(256));
        let plain = runner();
        let cached = runner().with_cache(Arc::clone(&cache));
        let configs = small_spec().configs(4800.0);
        for cfg in &configs {
            assert_eq!(cached.try_evaluate(cfg).unwrap(), plain.try_evaluate(cfg).unwrap());
        }
        let cold = cache.stats();
        assert_eq!(cold.misses as usize, configs.len());
        assert_eq!(cold.insertions as usize, configs.len());
        for cfg in &configs {
            cached.try_evaluate(cfg).unwrap();
        }
        let warm = cache.stats();
        assert_eq!(warm.hits as usize, configs.len(), "second pass should be all hits");
        assert_eq!(warm.insertions, cold.insertions);
    }

    #[test]
    fn cache_keys_separate_workloads_and_device_counts() {
        let cfg = DeviceConfig::a100_like();
        let base = runner();
        let other_workload =
            DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::new(8, 512, 128));
        let other_count = runner().with_device_count(8);
        let k0 = base.cache_key(&cfg);
        assert_ne!(k0.canonical(), other_workload.cache_key(&cfg).canonical());
        assert_ne!(k0.canonical(), other_count.cache_key(&cfg).canonical());
        // Same runner, same config: byte-identical canonical form.
        assert_eq!(k0.canonical(), runner().cache_key(&cfg).canonical());
        assert_eq!(k0.digest(), runner().cache_key(&cfg).digest());
    }

    #[test]
    fn cached_errors_are_not_memoised() {
        let cache = Arc::new(ShardedCache::new(64));
        let bad = runner().with_device_count(0).with_cache(Arc::clone(&cache));
        let cfg = DeviceConfig::a100_like();
        assert_eq!(bad.try_evaluate(&cfg).unwrap_err().kind(), "invalid_config");
        assert_eq!(cache.len(), 0, "failed evaluations must not occupy cache slots");
    }

    #[test]
    fn cost_products_multiply_out() {
        let d = runner().run(&small_spec(), 4800.0).remove(0);
        assert!((d.ttft_cost_product() - d.ttft_s * 1e3 * d.die_cost_usd).abs() < 1e-9);
        assert!((d.tbt_cost_product() - d.tbt_s * 1e3 * d.die_cost_usd).abs() < 1e-9);
    }
}
