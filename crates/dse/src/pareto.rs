//! Pareto-front extraction for two-objective design studies
//! (e.g. TTFT vs TBT in Figures 6c/6f, latency vs cost in Figure 8).

/// Indices of the Pareto-optimal items when minimising both objectives.
///
/// An item is on the front when no other item is at least as good in both
/// objectives and strictly better in one. Non-finite objective values
/// exclude an item. The returned indices are in input order.
pub fn pareto_front<T>(
    items: &[T],
    obj_a: impl Fn(&T) -> f64,
    obj_b: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let vals: Vec<(f64, f64)> = items.iter().map(|t| (obj_a(t), obj_b(t))).collect();
    (0..items.len())
        .filter(|&i| {
            let (ai, bi) = vals[i];
            if !ai.is_finite() || !bi.is_finite() {
                return false;
            }
            !vals.iter().enumerate().any(|(j, &(aj, bj))| {
                j != i
                    && aj.is_finite()
                    && bj.is_finite()
                    && aj <= ai
                    && bj <= bi
                    && (aj < ai || bj < bi)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_front() {
        let pts = [(1.0, 5.0), (2.0, 2.0), (5.0, 1.0), (4.0, 4.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn dominated_duplicates_are_kept_together() {
        // Identical points do not dominate each other.
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn non_finite_points_are_excluded() {
        let pts = [(f64::INFINITY, 0.0), (1.0, 1.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn empty_input() {
        let pts: [(f64, f64); 0] = [];
        assert!(pareto_front(&pts, |p| p.0, |p| p.1).is_empty());
    }

    #[test]
    fn single_point_is_optimal() {
        let pts = [(3.0, 3.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![0]);
    }
}
