//! Pareto-front extraction for two-objective design studies
//! (e.g. TTFT vs TBT in Figures 6c/6f, latency vs cost in Figure 8).

use std::cmp::Ordering;

/// Indices of the Pareto-optimal items when minimising both objectives.
///
/// An item is on the front when no other item is at least as good in both
/// objectives and strictly better in one. Non-finite objective values
/// exclude an item; identical points do not dominate each other, so
/// duplicates of a front point are all kept. The returned indices are in
/// input order.
///
/// Runs in O(n log n): sort by the first objective (second as
/// tie-break), then sweep once tracking the best second objective seen
/// in strictly earlier groups — a point survives iff it carries its
/// group's minimal second objective and beats every earlier group.
/// Differentially tested against [`pareto_front_naive`] on randomized
/// point sets.
pub fn pareto_front<T>(
    items: &[T],
    obj_a: impl Fn(&T) -> f64,
    obj_b: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let mut pts: Vec<(f64, f64, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, t)| {
            let (a, b) = (obj_a(t), obj_b(t));
            (a.is_finite() && b.is_finite()).then_some((a, b, i))
        })
        .collect();
    pts.sort_by(|x, y| match x.0.total_cmp(&y.0) {
        Ordering::Equal => x.1.total_cmp(&y.1),
        other => other,
    });
    let mut front = Vec::new();
    // Minimum of the second objective over every strictly-smaller first
    // objective: any such point dominates (strict in a, <= in b).
    let mut best_b = f64::INFINITY;
    let mut group = 0;
    while group < pts.len() {
        let a = pts[group].0;
        // The group is sorted by b, so its head holds the group minimum;
        // group members with a larger b are dominated within the group.
        let group_min_b = pts[group].1;
        let mut end = group;
        while end < pts.len() && pts[end].0 == a {
            if pts[end].1 == group_min_b && group_min_b < best_b {
                front.push(pts[end].2);
            }
            end += 1;
        }
        if group_min_b < best_b {
            best_b = group_min_b;
        }
        group = end;
    }
    front.sort_unstable();
    front
}

/// The quadratic reference implementation of [`pareto_front`], retained
/// verbatim for differential testing: every point is checked against
/// every other point straight from the dominance definition.
pub fn pareto_front_naive<T>(
    items: &[T],
    obj_a: impl Fn(&T) -> f64,
    obj_b: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let vals: Vec<(f64, f64)> = items.iter().map(|t| (obj_a(t), obj_b(t))).collect();
    (0..items.len())
        .filter(|&i| {
            let (ai, bi) = vals[i];
            if !ai.is_finite() || !bi.is_finite() {
                return false;
            }
            !vals.iter().enumerate().any(|(j, &(aj, bj))| {
                j != i
                    && aj.is_finite()
                    && bj.is_finite()
                    && aj <= ai
                    && bj <= bi
                    && (aj < ai || bj < bi)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_front() {
        let pts = [(1.0, 5.0), (2.0, 2.0), (5.0, 1.0), (4.0, 4.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn dominated_duplicates_are_kept_together() {
        // Identical points do not dominate each other.
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn non_finite_points_are_excluded() {
        let pts = [(f64::INFINITY, 0.0), (1.0, 1.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn empty_input() {
        let pts: [(f64, f64); 0] = [];
        assert!(pareto_front(&pts, |p| p.0, |p| p.1).is_empty());
    }

    #[test]
    fn single_point_is_optimal() {
        let pts = [(3.0, 3.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![0]);
    }

    #[test]
    fn equal_first_objective_keeps_only_the_group_minimum() {
        // Same a: smaller b dominates the rest of the column.
        let pts = [(1.0, 3.0), (1.0, 2.0), (1.0, 2.0), (1.0, 5.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![1, 2]);
    }

    #[test]
    fn ties_on_both_objectives_keep_every_tied_member() {
        // Two distinct front values, each duplicated: all four are
        // mutually non-dominating and all four survive.
        let pts = [(1.0, 2.0), (2.0, 1.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_second_objective_across_groups_is_dominated() {
        // (2, 2) ties the best b but is strictly worse on a: dominated.
        // The equal-cost boundary case the screen's bound test mirrors —
        // domination requires one strict inequality, which (1, 2) has.
        let pts = [(1.0, 2.0), (2.0, 2.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![0]);
        // Flip the axes: same rule on the first objective.
        let pts = [(2.0, 1.0), (2.0, 2.0)];
        assert_eq!(pareto_front(&pts, |p| p.0, |p| p.1), vec![0]);
    }

    /// SplitMix64: tiny, dependency-free, deterministic.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn sweep_matches_naive_reference_on_random_point_sets() {
        let mut rng = SplitMix64(0xAC5_5EED_0001);
        for round in 0..200 {
            let n = (rng.next() % 60) as usize;
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    // A small discrete grid forces heavy ties and exact
                    // duplicates; a sprinkle of non-finite values checks
                    // the exclusion rule.
                    let coord = |r: &mut SplitMix64| match r.next() % 16 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        v => (v % 7) as f64,
                    };
                    (coord(&mut rng), coord(&mut rng))
                })
                .collect();
            let fast = pareto_front(&pts, |p| p.0, |p| p.1);
            let naive = pareto_front_naive(&pts, |p| p.0, |p| p.1);
            assert_eq!(fast, naive, "round {round}: {pts:?}");
        }
    }

    #[test]
    fn sweep_matches_naive_on_continuous_points() {
        let mut rng = SplitMix64(42);
        let unit = |r: &mut SplitMix64| (r.next() >> 11) as f64 / (1u64 << 53) as f64;
        for round in 0..50 {
            let n = 1 + (rng.next() % 200) as usize;
            let pts: Vec<(f64, f64)> =
                (0..n).map(|_| (unit(&mut rng), unit(&mut rng))).collect();
            let fast = pareto_front(&pts, |p| p.0, |p| p.1);
            let naive = pareto_front_naive(&pts, |p| p.0, |p| p.1);
            assert_eq!(fast, naive, "round {round}");
        }
    }
}
