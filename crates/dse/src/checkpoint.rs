//! Sweep checkpointing: incremental JSONL results with resume.
//!
//! [`DseRunner::run_report_resumable`] appends one JSON line per design
//! point as it completes, so an interrupted thousand-point sweep loses at
//! most the in-flight points. On restart with the same candidate list and
//! path, finished entries are loaded instead of re-evaluated and the
//! final [`SweepReport`] is identical to an uninterrupted run's.
//!
//! Entry format (one object per line, keyed by the candidate's position
//! in the deterministic sweep order):
//!
//! ```json
//! {"index":17,"design":"dse-s16-l4-...","status":"ok","result":{...}}
//! {"index":18,"design":"...!fault-nan","status":"failed","error":{"kind":"invalid_config",...}}
//! ```
//!
//! Failures are stored structurally (via [`AcsError::to_json_value`]) so
//! a resumed run reconstructs the failure ledger exactly. A torn final
//! line — the signature of a process killed mid-write — is tolerated and
//! re-evaluated; corruption anywhere else is a [`AcsError::Checkpoint`]
//! error, as is an entry whose design name disagrees with the candidate
//! list (a checkpoint from a different sweep).

use crate::evaluate::{DseRunner, EvaluatedDesign, SweptParams};
use crate::report::{DesignFailure, SweepReport};
use crate::sweeps::CandidateParams;
use acs_errors::json::{self, Value};
use acs_errors::AcsError;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

fn io_err(path: &Path, e: &std::io::Error) -> AcsError {
    AcsError::Io { path: path.display().to_string(), reason: e.to_string() }
}

fn corrupt(path: &Path, reason: String) -> AcsError {
    AcsError::Checkpoint { path: path.display().to_string(), reason }
}

fn u32_member(v: &Value, key: &str) -> Result<u32, AcsError> {
    u32::try_from(v.require_u64(key)?)
        .map_err(|_| AcsError::Json { reason: format!("member {key:?} exceeds u32 range") })
}

impl SweptParams {
    /// Structural JSON form for checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] if a bandwidth is non-finite (valid
    /// configurations never are).
    pub fn to_json_value(&self) -> Result<Value, AcsError> {
        Ok(json::object(vec![
            ("systolic_dim", Value::Number(f64::from(self.systolic_dim))),
            ("lanes_per_core", Value::Number(f64::from(self.lanes_per_core))),
            ("core_count", Value::Number(f64::from(self.core_count))),
            ("l1_kib", Value::Number(f64::from(self.l1_kib))),
            ("l2_mib", Value::Number(f64::from(self.l2_mib))),
            ("hbm_tb_s", Value::from_f64(self.hbm_tb_s)?),
            ("device_bw_gb_s", Value::from_f64(self.device_bw_gb_s)?),
        ]))
    }

    /// Parse the structural form emitted by [`SweptParams::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] on a missing or mistyped member.
    pub fn from_json_value(v: &Value) -> Result<Self, AcsError> {
        Ok(SweptParams {
            systolic_dim: u32_member(v, "systolic_dim")?,
            lanes_per_core: u32_member(v, "lanes_per_core")?,
            core_count: u32_member(v, "core_count")?,
            l1_kib: u32_member(v, "l1_kib")?,
            l2_mib: u32_member(v, "l2_mib")?,
            hbm_tb_s: v.require_f64("hbm_tb_s")?,
            device_bw_gb_s: v.require_f64("device_bw_gb_s")?,
        })
    }
}

impl EvaluatedDesign {
    /// Structural JSON form for checkpoints. Rust's shortest-round-trip
    /// float formatting makes the cycle bit-exact, which is what lets a
    /// resumed report compare equal to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] if a metric is non-finite (the
    /// evaluation guards make that unreachable for real results).
    pub fn to_json_value(&self) -> Result<Value, AcsError> {
        Ok(json::object(vec![
            ("name", Value::String(self.name.clone())),
            ("params", self.params.to_json_value()?),
            ("tpp", Value::from_f64(self.tpp)?),
            ("die_area_mm2", Value::from_f64(self.die_area_mm2)?),
            ("perf_density", Value::from_f64(self.perf_density)?),
            ("die_cost_usd", Value::from_f64(self.die_cost_usd)?),
            ("good_die_cost_usd", Value::from_f64(self.good_die_cost_usd)?),
            ("ttft_s", Value::from_f64(self.ttft_s)?),
            ("tbt_s", Value::from_f64(self.tbt_s)?),
            ("within_reticle", Value::Bool(self.within_reticle)),
            ("pd_unregulated_2023", Value::Bool(self.pd_unregulated_2023)),
        ]))
    }

    /// Parse the structural form emitted by
    /// [`EvaluatedDesign::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Json`] on a missing or mistyped member.
    pub fn from_json_value(v: &Value) -> Result<Self, AcsError> {
        Ok(EvaluatedDesign {
            name: v.require_str("name")?.to_owned(),
            params: SweptParams::from_json_value(v.require("params")?)?,
            tpp: v.require_f64("tpp")?,
            die_area_mm2: v.require_f64("die_area_mm2")?,
            perf_density: v.require_f64("perf_density")?,
            die_cost_usd: v.require_f64("die_cost_usd")?,
            good_die_cost_usd: v.require_f64("good_die_cost_usd")?,
            ttft_s: v.require_f64("ttft_s")?,
            tbt_s: v.require_f64("tbt_s")?,
            within_reticle: v.require_bool("within_reticle")?,
            pd_unregulated_2023: v.require_bool("pd_unregulated_2023")?,
        })
    }
}

/// Serialise one checkpoint entry (without the trailing newline).
fn entry_line(
    index: usize,
    design: &str,
    outcome: &Result<EvaluatedDesign, AcsError>,
) -> Result<String, AcsError> {
    let mut members = vec![
        ("index", Value::Number(index as f64)),
        ("design", Value::String(design.to_owned())),
    ];
    match outcome {
        Ok(d) => {
            members.push(("status", Value::String("ok".to_owned())));
            members.push(("result", d.to_json_value()?));
        }
        Err(e) => {
            members.push(("status", Value::String("failed".to_owned())));
            members.push(("error", e.to_json_value()));
        }
    }
    Ok(json::object(members).to_json())
}

/// Parse one checkpoint entry into `(index, design name, outcome)`.
fn parse_entry(line: &str) -> Result<(usize, String, Result<EvaluatedDesign, AcsError>), AcsError> {
    let v = json::parse(line)?;
    let index = usize::try_from(v.require_u64("index")?)
        .map_err(|_| AcsError::Json { reason: "entry index exceeds usize".to_owned() })?;
    let design = v.require_str("design")?.to_owned();
    let outcome = match v.require_str("status")? {
        "ok" => Ok(EvaluatedDesign::from_json_value(v.require("result")?)?),
        "failed" => Err(AcsError::from_json_value(v.require("error")?)?),
        other => return Err(AcsError::Json { reason: format!("unknown entry status {other:?}") }),
    };
    Ok((index, design, outcome))
}

/// Load finished entries from a checkpoint file, validating each against
/// the candidate list. A missing file is an empty checkpoint. A torn
/// *final* line (interrupted write) is dropped; any earlier corruption,
/// an out-of-range index, or a design-name mismatch is a
/// [`AcsError::Checkpoint`] error.
///
/// Returns the finished entries plus the byte length of the valid prefix.
/// When a torn final line was dropped the prefix ends before it, and a
/// resuming writer must truncate the file to that length before appending
/// — otherwise the next entry would concatenate with the torn fragment
/// and corrupt the checkpoint mid-file.
///
/// # Errors
///
/// See above; I/O failures surface as [`AcsError::Io`].
pub fn load_checkpoint(
    path: &Path,
    candidates: &[CandidateParams],
) -> Result<(BTreeMap<usize, Result<EvaluatedDesign, AcsError>>, u64), AcsError> {
    let mut done = BTreeMap::new();
    if !path.exists() {
        return Ok((done, 0));
    }
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let segments: Vec<&str> = text.split_inclusive('\n').collect();
    let mut valid_bytes = 0u64;
    for (lineno, segment) in segments.iter().enumerate() {
        let line = segment.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            valid_bytes += segment.len() as u64;
            continue;
        }
        match parse_entry(line) {
            Ok((index, design, outcome)) => {
                let cand = candidates.get(index).ok_or_else(|| {
                    corrupt(
                        path,
                        format!(
                            "line {}: index {index} out of range for {} candidates",
                            lineno + 1,
                            candidates.len()
                        ),
                    )
                })?;
                if cand.name != design {
                    return Err(corrupt(
                        path,
                        format!(
                            "line {}: entry is for design {design:?} but candidate #{index} \
                             is {:?} — checkpoint belongs to a different sweep",
                            lineno + 1,
                            cand.name
                        ),
                    ));
                }
                done.insert(index, outcome);
                valid_bytes += segment.len() as u64;
            }
            // A malformed last line is the signature of an interrupted
            // write; the point is simply re-evaluated. Anywhere else it
            // is corruption.
            Err(e) if lineno + 1 == segments.len() => {
                let _ = e;
                break;
            }
            Err(e) => return Err(corrupt(path, format!("line {}: {e}", lineno + 1))),
        }
    }
    Ok((done, valid_bytes))
}

fn record_first(slot: &Mutex<Option<AcsError>>, e: AcsError) {
    let mut s = slot.lock().unwrap_or_else(PoisonError::into_inner);
    if s.is_none() {
        *s = Some(e);
    }
}

fn push_outcome(
    report: &mut SweepReport,
    index: usize,
    name: &str,
    outcome: Result<EvaluatedDesign, AcsError>,
) {
    match outcome {
        Ok(d) => report.designs.push((index, d)),
        Err(reason) => {
            report.failures.push(DesignFailure { index, params: name.to_owned(), reason });
        }
    }
}

impl DseRunner {
    /// [`DseRunner::run_report`] with checkpointing: every completed point
    /// is appended to the JSONL file at `path` (flushed per line), and
    /// points already present there are loaded instead of re-evaluated.
    /// Candidate order is the deterministic sweep order, so the same
    /// spec + path resumes exactly where an interrupted run stopped and
    /// produces an identical report.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::Checkpoint`] for a corrupt or mismatched
    /// checkpoint and [`AcsError::Io`] when the file cannot be read,
    /// created, or appended. Per-design failures do *not* abort the run —
    /// they land in the report's failure ledger.
    pub fn run_report_resumable(
        &self,
        candidates: &[CandidateParams],
        path: &Path,
    ) -> Result<SweepReport, AcsError> {
        let (done, valid_bytes) = {
            let _load_span = acs_telemetry::span("dse.checkpoint.load");
            load_checkpoint(path, candidates)?
        };
        if acs_telemetry::enabled() {
            acs_telemetry::count("dse.checkpoint.loaded", done.len() as u64);
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, &e))?;
            }
        }
        // Drop a torn final line before appending, or the next entry would
        // fuse with the fragment and corrupt the checkpoint mid-file.
        match std::fs::metadata(path) {
            Ok(meta) if meta.len() > valid_bytes => {
                let repair = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err(path, &e))?;
                repair.set_len(valid_bytes).map_err(|e| io_err(path, &e))?;
            }
            _ => {}
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        let sink = Mutex::new(BufWriter::new(file));
        let write_failure: Mutex<Option<AcsError>> = Mutex::new(None);

        let pending: Vec<(usize, CandidateParams)> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| !done.contains_key(i))
            .map(|(i, c)| (i, c.clone()))
            .collect();

        let fresh = self.parallel_map(&pending, |(_, cand)| cand.name.as_str(), |(index, cand)| {
            let outcome = cand.build().and_then(|cfg| self.try_evaluate(&cfg));
            match entry_line(*index, &cand.name, &outcome) {
                Ok(line) => {
                    let mut w = sink.lock().unwrap_or_else(PoisonError::into_inner);
                    // Flush per entry: an interrupted run may tear at most
                    // the line being written, which resume tolerates.
                    let t0 = acs_telemetry::enabled().then(std::time::Instant::now);
                    let wrote = writeln!(w, "{line}").and_then(|()| w.flush());
                    if let Some(t0) = t0 {
                        acs_telemetry::observe(
                            "dse.checkpoint.write_us",
                            t0.elapsed().as_secs_f64() * 1e6,
                        );
                        acs_telemetry::count("dse.checkpoint.appended", 1);
                    }
                    if let Err(e) = wrote {
                        record_first(&write_failure, io_err(path, &e));
                    }
                }
                Err(e) => record_first(&write_failure, e),
            }
            outcome
        });
        if let Some(e) = write_failure.lock().unwrap_or_else(PoisonError::into_inner).take() {
            return Err(e);
        }

        let mut report = SweepReport::default();
        for (index, outcome) in done {
            push_outcome(&mut report, index, &candidates[index].name, outcome);
        }
        for ((index, cand), outcome) in pending.iter().zip(fresh) {
            push_outcome(&mut report, *index, &cand.name, outcome);
        }
        report.normalise();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::SweepSpec;
    use acs_llm::{ModelConfig, WorkloadConfig};
    use std::path::PathBuf;

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("acs-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn evaluated_design_round_trips_bit_exactly() {
        let r = runner();
        let cands = spec().candidates(4800.0);
        let d = r.try_evaluate(&cands[0].build().unwrap()).unwrap();
        let text = d.to_json_value().unwrap().to_json();
        let back = EvaluatedDesign::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.ttft_s.to_bits(), d.ttft_s.to_bits());
    }

    #[test]
    fn entries_round_trip_both_statuses() {
        let r = runner();
        let cands = spec().candidates(4800.0);
        let ok = r.try_evaluate(&cands[1].build().unwrap());
        let line = entry_line(1, &cands[1].name, &ok).unwrap();
        let (i, name, outcome) = parse_entry(&line).unwrap();
        assert_eq!((i, name.as_str()), (1, cands[1].name.as_str()));
        assert_eq!(outcome.unwrap(), ok.unwrap());

        let failed: Result<EvaluatedDesign, AcsError> =
            Err(AcsError::invalid_config("hbm.bandwidth_gb_s", "must be positive"));
        let line = entry_line(7, "bad-cand", &failed).unwrap();
        let (i, name, outcome) = parse_entry(&line).unwrap();
        assert_eq!((i, name.as_str()), (7, "bad-cand"));
        assert_eq!(outcome.unwrap_err(), failed.unwrap_err());
    }

    #[test]
    fn fresh_run_writes_one_entry_per_candidate() {
        let path = temp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let cands = spec().candidates(4800.0);
        let report = runner().run_report_resumable(&cands, &path).unwrap();
        assert_eq!(report.total(), cands.len());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), cands.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interrupted_run_resumes_to_identical_report() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let r = runner();
        let cands = spec().candidates(4800.0);
        let clean = r.run_report(&cands);

        // Simulate an interruption: checkpoint only the first three
        // entries, the last one torn mid-write.
        let mut partial = String::new();
        for (i, cand) in cands.iter().take(3).enumerate() {
            let outcome = cand.build().and_then(|cfg| r.try_evaluate(&cfg));
            partial.push_str(&entry_line(i, &cand.name, &outcome).unwrap());
            partial.push('\n');
        }
        let torn = entry_line(3, &cands[3].name, &Ok(clean.designs[3].1.clone())).unwrap();
        partial.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, &partial).unwrap();

        let resumed = r.run_report_resumable(&cands, &path).unwrap();
        assert_eq!(resumed, clean);
        // The torn line was truncated before appending, leaving a clean
        // file that now covers every point.
        let (done, _) = load_checkpoint(&path, &cands).unwrap();
        assert_eq!(done.len(), cands.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_skips_finished_entries() {
        let path = temp_path("skip");
        let _ = std::fs::remove_file(&path);
        let cands = spec().candidates(4800.0);
        let r = runner();
        let first = r.run_report_resumable(&cands, &path).unwrap();
        let lines_after_first = std::fs::read_to_string(&path).unwrap().lines().count();
        let second = r.run_report_resumable(&cands, &path).unwrap();
        // Nothing was re-evaluated, so nothing was appended.
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), lines_after_first);
        assert_eq!(first, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let path = temp_path("mismatch");
        let cands = spec().candidates(4800.0);
        let failed: Result<EvaluatedDesign, AcsError> =
            Err(AcsError::invalid_config("f", "r"));
        let line = entry_line(0, "some-other-sweep-design", &failed).unwrap();
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let err = runner().run_report_resumable(&cands, &path).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        assert!(err.to_string().contains("different sweep"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_before_the_last_line_is_an_error() {
        let path = temp_path("corrupt");
        let cands = spec().candidates(4800.0);
        let failed: Result<EvaluatedDesign, AcsError> =
            Err(AcsError::invalid_config("f", "r"));
        let good = entry_line(0, &cands[0].name, &failed).unwrap();
        std::fs::write(&path, format!("not json\n{good}\n")).unwrap();
        let err = load_checkpoint(&path, &cands).unwrap_err();
        assert_eq!(err.kind(), "checkpoint");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_checkpoint() {
        let path = temp_path("missing-never-created");
        let _ = std::fs::remove_file(&path);
        let (done, valid_bytes) = load_checkpoint(&path, &spec().candidates(4800.0)).unwrap();
        assert!(done.is_empty());
        assert_eq!(valid_bytes, 0);
    }
}
