//! `acs-dse` — run a design-space sweep from the command line.
//!
//! ```text
//! acs-dse [--sweep table3-fig6|table3-fig7|table5] [--tpp 4800]
//!         [--model llama3-8b] [--device-count 4] [--limit N]
//!         [--checkpoint PATH] [--inject-faults STRIDE] [--cache]
//!         [--profile] [--trace PATH]
//! ```
//!
//! Prints the sweep report summary. `--checkpoint` makes the run
//! resumable (see DESIGN.md §9), `--inject-faults N` perturbs every Nth
//! candidate with the fault-injection harness, `--cache` memoises point
//! evaluations through the content-addressed cache, and `--profile`
//! enables the global telemetry registry, writes a deterministic JSONL
//! trace (default `results/trace_dse.jsonl`, honouring
//! `ACS_RESULTS_DIR`), and prints the per-stage summary table
//! (DESIGN.md §11).

use acs_dse::{inject_faults, CandidateParams, DseRunner, SweepSpec};
use acs_llm::{ModelConfig, WorkloadConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    sweep: String,
    tpp: f64,
    model: String,
    device_count: u32,
    limit: Option<usize>,
    checkpoint: Option<PathBuf>,
    inject_faults: Option<usize>,
    cache: bool,
    profile: bool,
    trace: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        sweep: "table3-fig6".to_owned(),
        tpp: 4800.0,
        model: "llama3-8b".to_owned(),
        device_count: 4,
        limit: None,
        checkpoint: None,
        inject_faults: None,
        cache: false,
        profile: false,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--sweep" => args.sweep = value("--sweep")?,
            "--tpp" => {
                args.tpp = value("--tpp")?.parse().map_err(|e| format!("--tpp: {e}"))?;
            }
            "--model" => args.model = value("--model")?,
            "--device-count" => {
                args.device_count = value("--device-count")?
                    .parse()
                    .map_err(|e| format!("--device-count: {e}"))?;
            }
            "--limit" => {
                args.limit =
                    Some(value("--limit")?.parse().map_err(|e| format!("--limit: {e}"))?);
            }
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--inject-faults" => {
                let stride: usize = value("--inject-faults")?
                    .parse()
                    .map_err(|e| format!("--inject-faults: {e}"))?;
                if stride == 0 {
                    return Err("--inject-faults: stride must be nonzero".to_owned());
                }
                args.inject_faults = Some(stride);
            }
            "--cache" => args.cache = true,
            "--profile" => args.profile = true,
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some(args))
}

fn usage() {
    eprintln!(
        "usage: acs-dse [--sweep table3-fig6|table3-fig7|table5] [--tpp F] \
         [--model NAME] [--device-count N] [--limit N] [--checkpoint PATH] \
         [--inject-faults STRIDE] [--cache] [--profile] [--trace PATH]"
    );
}

fn resolve_sweep(name: &str) -> Result<SweepSpec, String> {
    match name {
        "table3-fig6" => Ok(SweepSpec::table3_fig6()),
        "table3-fig7" => Ok(SweepSpec::table3_fig7()),
        "table5" => Ok(SweepSpec::table5()),
        other => Err(format!("unknown sweep {other:?} (expected table3-fig6, table3-fig7, or table5)")),
    }
}

/// Case- and punctuation-insensitive model lookup over the llm presets,
/// mirroring the serve endpoint's spelling rules.
fn resolve_model(name: &str) -> Result<ModelConfig, String> {
    let canon = |s: &str| -> String {
        s.chars().filter(char::is_ascii_alphanumeric).collect::<String>().to_ascii_lowercase()
    };
    let presets = [
        ModelConfig::gpt3_13b(),
        ModelConfig::gpt3_175b(),
        ModelConfig::llama3_8b(),
        ModelConfig::llama3_70b(),
        ModelConfig::mixtral_8x7b(),
    ];
    let wanted = canon(name);
    presets
        .into_iter()
        .find(|p| canon(p.name()) == wanted)
        .ok_or_else(|| format!("unknown model {name:?}"))
}

fn results_dir() -> PathBuf {
    std::env::var_os("ACS_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

fn run(args: &Args) -> Result<(), String> {
    let spec = resolve_sweep(&args.sweep)?;
    let model = resolve_model(&args.model)?;
    if args.profile {
        acs_telemetry::global().enable();
    }
    let _main_span = acs_telemetry::span("dse.main");

    let mut candidates: Vec<CandidateParams> = {
        let _span = acs_telemetry::span("dse.candidates");
        spec.candidates(args.tpp)
    };
    if let Some(limit) = args.limit {
        candidates.truncate(limit);
    }
    if let Some(stride) = args.inject_faults {
        let injected = inject_faults(&mut candidates, stride);
        println!("injected {} faults (stride {stride})", injected.len());
    }

    let mut runner = DseRunner::new(model, WorkloadConfig::paper_default())
        .with_device_count(args.device_count);
    if args.cache {
        runner = runner.with_cache(Arc::new(acs_cache::ShardedCache::new(4096)));
    }

    let report = {
        let _span = acs_telemetry::span("dse.sweep");
        match &args.checkpoint {
            Some(path) => runner
                .run_report_resumable(&candidates, path)
                .map_err(|e| format!("checkpoint run failed: {e}"))?,
            None => runner.run_report(&candidates),
        }
    };
    println!("{}", report.summary());

    if args.profile {
        let trace_path =
            args.trace.clone().unwrap_or_else(|| results_dir().join("trace_dse.jsonl"));
        // Close the CLI-stage spans before exporting so the trace is
        // complete; the export itself is not part of the measured run.
        drop(_main_span);
        let registry = acs_telemetry::global();
        acs_telemetry::write_trace(registry, &trace_path)
            .map_err(|e| format!("cannot write trace {}: {e}", trace_path.display()))?;
        println!("trace written to {}", trace_path.display());
        println!();
        print!("{}", acs_telemetry::summary_table(registry));
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(Some(args)) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => {
            usage();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
