//! One-at-a-time sensitivity analysis.
//!
//! Complements the fixed-parameter distributions of §5.3 with elasticities:
//! how many percent does a latency move per percent of parameter change,
//! holding everything else at a reference design? Regulators can read an
//! elasticity table directly: a knob with near-zero elasticity (device
//! bandwidth for decoding) is a poor policy lever; one near −1 (memory
//! bandwidth for decoding) is a precise throttle.

use acs_errors::AcsError;
use acs_hw::{DeviceConfig, SystemConfig};
use acs_llm::{ModelConfig, WorkloadConfig};
use acs_sim::{SimParams, Simulator};
use std::fmt;

/// Which latency the elasticity is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Prefill latency.
    Ttft,
    /// Decode latency.
    Tbt,
}

/// A parameter's measured elasticity on a latency target.
#[derive(Debug, Clone, PartialEq)]
pub struct Elasticity {
    /// Parameter name.
    pub parameter: &'static str,
    /// Latency target.
    pub target: Target,
    /// `d ln(latency) / d ln(parameter)` around the reference design
    /// (negative: increasing the parameter speeds the workload up).
    pub value: f64,
}

impl fmt::Display for Elasticity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {:?}: {:+.3}", self.parameter, self.target, self.value)
    }
}

fn latency(
    device: &DeviceConfig,
    model: &ModelConfig,
    work: &WorkloadConfig,
    t: Target,
) -> Result<f64, AcsError> {
    let sim = Simulator::with_params(SystemConfig::quad(device.clone())?, SimParams::calibrated());
    match t {
        Target::Ttft => sim.try_ttft_s(model, work),
        Target::Tbt => sim.try_tbt_s(model, work),
    }
}

/// Central-difference log-log elasticity of each scalable architectural
/// parameter around `reference`, for `model` under the paper workload.
///
/// Parameters are scaled ±25 % (discrete ones to the nearest valid value),
/// so the figures are local to the reference design.
///
/// # Errors
///
/// Returns [`AcsError`] when a scaled variant fails validation or its
/// simulated latency violates the finite-positive contract — a reference
/// design at the edge of the valid domain surfaces here as a typed error
/// rather than a panic.
pub fn elasticities(
    reference: &DeviceConfig,
    model: &ModelConfig,
    work: &WorkloadConfig,
    target: Target,
) -> Result<Vec<Elasticity>, AcsError> {
    let scale = 1.25_f64;
    let mut out = Vec::new();
    let mut push = |name: &'static str,
                    up: Result<DeviceConfig, acs_hw::HwError>,
                    down: Result<DeviceConfig, acs_hw::HwError>,
                    ratio: f64|
     -> Result<(), AcsError> {
        let hi = latency(&up?, model, work, target)?;
        let lo = latency(&down?, model, work, target)?;
        let value = (hi / lo).ln() / ratio.ln();
        out.push(Elasticity { parameter: name, target, value });
        Ok(())
    };

    let scaled_u32 = |v: u32, s: f64| ((f64::from(v) * s).round() as u32).max(1);

    push(
        "core_count",
        reference.to_builder().core_count(scaled_u32(reference.core_count(), scale)).build(),
        reference.to_builder().core_count(scaled_u32(reference.core_count(), 1.0 / scale)).build(),
        f64::from(scaled_u32(reference.core_count(), scale))
            / f64::from(scaled_u32(reference.core_count(), 1.0 / scale)),
    )?;
    push(
        "l1_kib_per_core",
        reference
            .to_builder()
            .l1_kib_per_core(scaled_u32(reference.l1_kib_per_core(), scale))
            .build(),
        reference
            .to_builder()
            .l1_kib_per_core(scaled_u32(reference.l1_kib_per_core(), 1.0 / scale))
            .build(),
        f64::from(scaled_u32(reference.l1_kib_per_core(), scale))
            / f64::from(scaled_u32(reference.l1_kib_per_core(), 1.0 / scale)),
    )?;
    push(
        "l2_mib",
        reference.to_builder().l2_mib(scaled_u32(reference.l2_mib(), scale)).build(),
        reference.to_builder().l2_mib(scaled_u32(reference.l2_mib(), 1.0 / scale)).build(),
        f64::from(scaled_u32(reference.l2_mib(), scale))
            / f64::from(scaled_u32(reference.l2_mib(), 1.0 / scale)),
    )?;
    push(
        "hbm_bandwidth",
        reference.to_builder().hbm_bandwidth_tb_s(reference.hbm().bandwidth_tb_s() * scale).build(),
        reference.to_builder().hbm_bandwidth_tb_s(reference.hbm().bandwidth_tb_s() / scale).build(),
        scale * scale,
    )?;
    push(
        "device_bandwidth",
        reference
            .to_builder()
            .device_bandwidth_gb_s(reference.phy().total_gb_s() * scale)
            .build(),
        reference
            .to_builder()
            .device_bandwidth_gb_s(reference.phy().total_gb_s() / scale)
            .build(),
        scale * scale,
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn by_name<'a>(es: &'a [Elasticity], name: &str) -> &'a Elasticity {
        es.iter().find(|e| e.parameter == name).unwrap()
    }

    #[test]
    fn decode_is_elastic_in_memory_bandwidth_only() {
        let es = elasticities(
            &reference(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            Target::Tbt,
        )
        .unwrap();
        let hbm = by_name(&es, "hbm_bandwidth").value;
        assert!(hbm < -0.5, "TBT elasticity on HBM BW = {hbm}");
        let dev = by_name(&es, "device_bandwidth").value;
        assert!(dev.abs() < 0.05, "TBT elasticity on device BW = {dev}");
        let cores = by_name(&es, "core_count").value;
        assert!(cores.abs() < 0.3, "TBT elasticity on cores = {cores}");
        assert!(hbm < dev && hbm < cores);
    }

    #[test]
    fn prefill_is_elastic_in_compute() {
        let es = elasticities(
            &reference(),
            &ModelConfig::gpt3_175b(),
            &WorkloadConfig::paper_default(),
            Target::Ttft,
        )
        .unwrap();
        let cores = by_name(&es, "core_count").value;
        assert!(cores < -0.5, "TTFT elasticity on cores = {cores}");
        let hbm = by_name(&es, "hbm_bandwidth").value;
        assert!(hbm > cores, "prefill cares more about compute than bandwidth");
        // L1 helps prefill (negative), bounded by its fill/drain role.
        let l1 = by_name(&es, "l1_kib_per_core").value;
        assert!(l1 < 0.01, "TTFT elasticity on L1 = {l1}");
    }

    #[test]
    fn every_parameter_yields_a_finite_elasticity() {
        for target in [Target::Ttft, Target::Tbt] {
            let es = elasticities(
                &reference(),
                &ModelConfig::llama3_8b(),
                &WorkloadConfig::paper_default(),
                target,
            )
            .unwrap();
            assert_eq!(es.len(), 5);
            for e in &es {
                assert!(e.value.is_finite(), "{e}");
                assert!(e.value.abs() < 3.0, "implausible elasticity: {e}");
            }
        }
    }
}
