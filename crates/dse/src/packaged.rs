//! Chiplet-aware design evaluation.
//!
//! The monolithic DSE (§4) drops every design over the 860 mm² reticle.
//! Advanced packaging dissolves that constraint: an over-reticle design
//! can ship as a multi-chip module, at a packaging premium and a die-to-
//! die PHY tax. This module re-evaluates a design space with each point
//! packaged optimally, so the "manufacturable" set — and the best
//! achievable latencies under a rule — can be compared with and without
//! chiplets.

use crate::evaluate::{DseRunner, EvaluatedDesign};
use acs_hw::chiplet::{ChipletPackage, PackagingModel};
use acs_hw::{AreaModel, CostModel, DeviceConfig, RETICLE_LIMIT_MM2};

/// A design realised as its cheapest manufacturable package.
#[derive(Debug, Clone, PartialEq)]
pub struct PackagedDesign {
    /// The monolithic evaluation (latencies, logical metrics).
    pub design: EvaluatedDesign,
    /// Chiplets in the chosen package (1 = monolithic).
    pub chiplets: u32,
    /// Total package silicon in mm² (includes D2D PHY tax).
    pub package_area_mm2: f64,
    /// Package cost in USD (known-good dies + assembly / bond yield).
    pub package_cost_usd: f64,
    /// Package-level performance density (TPP / package area).
    pub package_pd: f64,
}

impl PackagedDesign {
    /// Whether each die of the chosen package fits the reticle.
    #[must_use]
    pub fn manufacturable(&self) -> bool {
        self.package_area_mm2 / f64::from(self.chiplets) <= RETICLE_LIMIT_MM2
    }
}

/// Evaluate `configs` with optimal packaging over `candidates` chiplet
/// counts (counts that do not divide a design's cores are skipped for
/// that design). Performance is taken from the logical (monolithic)
/// evaluation — the package implements the same architecture; the D2D
/// hop cost is assumed hidden under the existing interconnect model.
/// Configurations whose monolithic evaluation fails are dropped, like
/// designs with no manufacturable package.
#[must_use]
pub fn run_packaged(
    runner: &DseRunner,
    configs: &[DeviceConfig],
    candidates: &[u32],
    packaging: PackagingModel,
) -> Vec<PackagedDesign> {
    let am = AreaModel::n7();
    let cm = CostModel::n7();
    let evaluated = runner.run_configs(configs);
    evaluated
        .into_iter()
        .zip(configs)
        .filter_map(|(outcome, cfg)| {
            let design = outcome.ok()?;
            let best = candidates
                .iter()
                .filter_map(|&n| ChipletPackage::new(cfg.clone(), n, packaging).ok())
                .filter(|p| p.manufacturable(&am))
                .min_by(|a, b| {
                    a.package_cost_usd(&am, &cm).total_cmp(&b.package_cost_usd(&am, &cm))
                })?;
            let area = best.package_area_mm2(&am);
            Some(PackagedDesign {
                package_pd: design.tpp / area,
                package_cost_usd: best.package_cost_usd(&am, &cm),
                package_area_mm2: area,
                chiplets: best.chiplets(),
                design,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::SweepSpec;
    use acs_llm::{ModelConfig, WorkloadConfig};

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![1, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    #[test]
    fn packaging_recovers_over_reticle_designs() {
        let configs = spec().configs(4800.0);
        let packaged = run_packaged(&runner(), &configs, &[1, 2, 4, 8], PackagingModel::advanced());
        // Every design gets a manufacturable realisation.
        assert_eq!(packaged.len(), configs.len());
        let multi: Vec<_> = packaged.iter().filter(|p| p.chiplets > 1).collect();
        assert!(!multi.is_empty(), "1-lane 1024K designs exceed the reticle");
        for p in &packaged {
            assert!(p.manufacturable());
            assert!(p.package_cost_usd.is_finite() && p.package_cost_usd > 0.0);
            // Packaged PD never exceeds the monolithic PD (D2D tax adds area).
            assert!(p.package_pd <= p.design.perf_density + 1e-9);
        }
    }

    #[test]
    fn monolithic_designs_stay_monolithic_when_cheapest() {
        // A small design should usually package as 1–2 dies, not 8.
        let small = DeviceConfig::builder()
            .core_count(64)
            .l1_kib_per_core(192)
            .l2_mib(16)
            .build()
            .unwrap();
        let packaged =
            run_packaged(&runner(), &[small], &[1, 2, 4, 8], PackagingModel::advanced());
        assert_eq!(packaged.len(), 1);
        assert!(packaged[0].chiplets <= 2, "chiplets = {}", packaged[0].chiplets);
    }

    #[test]
    fn prime_core_counts_still_package() {
        // 103 cores is prime: uneven splits fuse off the remainder.
        let cfg = DeviceConfig::builder().core_count(103).build().unwrap();
        let packaged =
            run_packaged(&runner(), &[cfg], &[1, 2, 4], PackagingModel::advanced());
        assert_eq!(packaged.len(), 1);
        assert!(packaged[0].manufacturable());
        // The logical TPP is preserved regardless of the split.
        let cfg2 = DeviceConfig::builder().core_count(103).build().unwrap();
        assert!((packaged[0].design.tpp - cfg2.tpp().0).abs() < 1e-9);
    }
}
