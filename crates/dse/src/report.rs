//! Fault-isolated sweep results: successes plus a structured failure
//! ledger.
//!
//! A thousand-point sweep must not die because one design point panics or
//! trips a numeric invariant. [`crate::DseRunner::run_report`] evaluates
//! every point behind `std::panic::catch_unwind` and collects the outcome
//! of each into a [`SweepReport`]: evaluated designs in deterministic
//! sweep order, and one [`DesignFailure`] per bad point, carrying the
//! typed [`AcsError`] that explains it.

use crate::evaluate::EvaluatedDesign;
use acs_errors::AcsError;
use std::collections::BTreeMap;
use std::fmt;

/// One design point that could not be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignFailure {
    /// Position in the sweep's candidate list (deterministic ordering;
    /// checkpoints key on it).
    pub index: usize,
    /// The candidate's name/parameter summary.
    pub params: String,
    /// Why the point failed.
    pub reason: AcsError,
}

impl DesignFailure {
    /// Stable tag of the failure's error variant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.reason.kind()
    }
}

impl fmt::Display for DesignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}: {}", self.index, self.params, self.reason)
    }
}

/// The outcome of a fault-isolated sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Successfully evaluated designs with their sweep indices, in
    /// ascending index order.
    pub designs: Vec<(usize, EvaluatedDesign)>,
    /// Failed points in ascending index order.
    pub failures: Vec<DesignFailure>,
}

impl SweepReport {
    /// Total points covered (successes + failures).
    #[must_use]
    pub fn total(&self) -> usize {
        self.designs.len() + self.failures.len()
    }

    /// The evaluated designs without their indices, in sweep order.
    pub fn successes(&self) -> impl Iterator<Item = &EvaluatedDesign> {
        self.designs.iter().map(|(_, d)| d)
    }

    /// Failure counts grouped by error kind (deterministic order).
    #[must_use]
    pub fn failure_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.failures {
            *counts.entry(f.kind()).or_insert(0) += 1;
        }
        counts
    }

    /// One-line summary for logs: `"1037 ok, 43 failed (invalid_config: 31, …)"`.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!("{} ok, {} failed", self.designs.len(), self.failures.len());
        if !self.failures.is_empty() {
            let parts: Vec<String> = self
                .failure_counts()
                .iter()
                .map(|(kind, n)| format!("{kind}: {n}"))
                .collect();
            s.push_str(&format!(" ({})", parts.join(", ")));
        }
        s
    }

    /// Sort both ledgers by index (used after parallel/resumed assembly).
    pub fn normalise(&mut self) {
        self.designs.sort_by_key(|(i, _)| *i);
        self.failures.sort_by_key(|f| f.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure(index: usize, reason: AcsError) -> DesignFailure {
        DesignFailure { index, params: format!("cand-{index}"), reason }
    }

    #[test]
    fn counts_group_by_kind() {
        let report = SweepReport {
            designs: vec![],
            failures: vec![
                failure(0, AcsError::invalid_config("a", "r")),
                failure(2, AcsError::invalid_config("b", "r")),
                failure(5, AcsError::non_finite("sim", "tbt_s", f64::NAN)),
            ],
        };
        let counts = report.failure_counts();
        assert_eq!(counts.get("invalid_config"), Some(&2));
        assert_eq!(counts.get("non_finite"), Some(&1));
        assert_eq!(report.total(), 3);
        let s = report.summary();
        assert!(s.contains("0 ok"));
        assert!(s.contains("invalid_config: 2"));
    }

    #[test]
    fn normalise_orders_by_index() {
        let mut report = SweepReport {
            designs: vec![],
            failures: vec![
                failure(5, AcsError::invalid_config("a", "r")),
                failure(1, AcsError::invalid_config("a", "r")),
            ],
        };
        report.normalise();
        assert_eq!(report.failures[0].index, 1);
        assert_eq!(report.failures[1].index, 5);
    }

    #[test]
    fn display_names_the_point() {
        let f = failure(7, AcsError::invalid_config("lanes_per_core", "must be nonzero"));
        let s = f.to_string();
        assert!(s.contains("#7"));
        assert!(s.contains("lanes_per_core"));
        assert_eq!(f.kind(), "invalid_config");
    }
}
