//! Design-space exploration under advanced computing sanctions.
//!
//! Builds the paper's parameter sweeps (Tables 3 and 5), solves each sweep
//! point's core count against a TPP ceiling (Eq. 1), evaluates every design
//! with the analytical simulator plus the area/cost models, and provides
//! the distribution statistics behind the architecture-first-indicator
//! analysis (Figures 11 and 12).
//!
//! # Example
//!
//! ```
//! use acs_dse::prelude::*;
//! use acs_llm::{ModelConfig, WorkloadConfig};
//!
//! // A small custom sweep at the October 2022 TPP ceiling.
//! let spec = SweepSpec {
//!     systolic_dims: vec![16],
//!     lanes_per_core: vec![2, 4],
//!     l1_kib: vec![192],
//!     l2_mib: vec![40],
//!     hbm_tb_s: vec![2.0],
//!     device_bw_gb_s: vec![600.0],
//! };
//! let runner = DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default());
//! let designs = runner.run(&spec, 4800.0);
//! assert_eq!(designs.len(), 2);
//! assert!(designs.iter().all(|d| d.tpp < 4800.0));
//! ```

pub mod checkpoint;
pub mod evaluate;
pub mod factored;
pub mod faultinject;
pub mod lattice;
pub mod packaged;
pub mod pareto;
pub mod report;
pub mod sensitivity;
pub mod stats;
pub mod sweeps;

pub use evaluate::{DseRunner, EvaluatedDesign, SweptParams};
pub use faultinject::{inject_faults, FaultClass};
pub use lattice::{bound_is_dominated, LatticeScreen, LatticeScreenOptions, LatticeStats};
pub use packaged::{run_packaged, PackagedDesign};
pub use pareto::pareto_front;
pub use report::{DesignFailure, SweepReport};
pub use sensitivity::{elasticities, Elasticity};
pub use stats::{narrowing_factor, Distribution};
pub use sweeps::{CandidateParams, SweepSpec};

/// Commonly used items.
pub mod prelude {
    pub use crate::evaluate::{DseRunner, EvaluatedDesign, SweptParams};
    pub use crate::lattice::{LatticeScreen, LatticeScreenOptions, LatticeStats};
    pub use crate::pareto::pareto_front;
    pub use crate::report::{DesignFailure, SweepReport};
    pub use crate::stats::{narrowing_factor, Distribution};
    pub use crate::sweeps::{CandidateParams, SweepSpec};
}
