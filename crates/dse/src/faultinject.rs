//! Fault injection for the sweep pipeline.
//!
//! The robustness contract of [`crate::DseRunner::run_report`] is that a
//! sweep seeded with pathological design points completes, with each bad
//! point reported as a typed [`crate::DesignFailure`] rather than a
//! panic or a silent drop. This module produces those pathological points
//! deterministically so tests (and `tests/fault_injection.rs` at the
//! workspace root) can assert the contract over thousand-point sweeps.

use crate::sweeps::CandidateParams;
use std::fmt;

/// A class of pathological input, applied to a [`CandidateParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// HBM bandwidth forced to zero — must be rejected at validation.
    ZeroBandwidth,
    /// HBM bandwidth forced to NaN — must be rejected at validation.
    NanParam,
    /// Lanes per core forced to zero — must be rejected at validation.
    ZeroLanes,
    /// L1 inflated until the die dwarfs the 860 mm² reticle. The config
    /// is *valid* and evaluation should succeed with
    /// `within_reticle == false`: graceful degradation, not an error.
    ReticleOverflow,
    /// Core count forced to `u32::MAX`. Either the models keep every
    /// metric finite (success) or the numeric guards/panic containment
    /// convert the blow-up into a typed error.
    OverflowCores,
}

impl FaultClass {
    /// Every class, in injection order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::ZeroBandwidth,
        FaultClass::NanParam,
        FaultClass::ZeroLanes,
        FaultClass::ReticleOverflow,
        FaultClass::OverflowCores,
    ];

    /// Short stable tag, appended to faulted candidates' names.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            FaultClass::ZeroBandwidth => "zero-bw",
            FaultClass::NanParam => "nan",
            FaultClass::ZeroLanes => "zero-lanes",
            FaultClass::ReticleOverflow => "reticle",
            FaultClass::OverflowCores => "overflow-cores",
        }
    }

    /// Corrupt `candidate` with this fault, marking its name with
    /// `!fault-<tag>` so checkpoints and failure ledgers identify it.
    pub fn apply(&self, candidate: &mut CandidateParams) {
        match self {
            FaultClass::ZeroBandwidth => candidate.hbm_tb_s = 0.0,
            FaultClass::NanParam => candidate.hbm_tb_s = f64::NAN,
            FaultClass::ZeroLanes => candidate.lanes_per_core = 0,
            FaultClass::ReticleOverflow => candidate.l1_kib = 262_144,
            FaultClass::OverflowCores => candidate.core_count = u32::MAX,
        }
        candidate.name.push_str("!fault-");
        candidate.name.push_str(self.tag());
    }

    /// Whether a successful evaluation is an acceptable outcome for this
    /// class (degradation classes), as opposed to a mandatory failure.
    #[must_use]
    pub fn may_succeed(&self) -> bool {
        matches!(self, FaultClass::ReticleOverflow | FaultClass::OverflowCores)
    }

    /// The [`acs_errors::AcsError::kind`] tags an evaluation failure of a
    /// candidate with this fault is allowed to carry.
    #[must_use]
    pub fn allowed_failure_kinds(&self) -> &'static [&'static str] {
        match self {
            FaultClass::ZeroBandwidth | FaultClass::NanParam | FaultClass::ZeroLanes => {
                &["invalid_config"]
            }
            FaultClass::ReticleOverflow => &["non_finite", "infeasible"],
            FaultClass::OverflowCores => {
                &["non_finite", "infeasible", "invalid_config", "evaluation_panic"]
            }
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Corrupt every `every`-th candidate in place (indices 0, `every`,
/// 2·`every`, …), cycling through [`FaultClass::ALL`]. Deterministic:
/// the same input always receives the same faults. Returns the injection
/// ledger as `(index, class)` pairs.
///
/// # Panics
///
/// Panics if `every` is zero (a harness-usage bug, not a data fault).
pub fn inject_faults(candidates: &mut [CandidateParams], every: usize) -> Vec<(usize, FaultClass)> {
    assert!(every > 0, "injection stride must be nonzero");
    let mut injected = Vec::new();
    for (slot, index) in (0..candidates.len()).step_by(every).enumerate() {
        let class = FaultClass::ALL[slot % FaultClass::ALL.len()];
        class.apply(&mut candidates[index]);
        injected.push((index, class));
    }
    if acs_telemetry::enabled() {
        acs_telemetry::count("dse.faults.injected", injected.len() as u64);
        for (_, class) in &injected {
            acs_telemetry::count(&format!("dse.faults.class.{}", class.tag()), 1);
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::SweepSpec;

    fn candidates() -> Vec<CandidateParams> {
        SweepSpec::table3_fig6().candidates(4800.0)
    }

    #[test]
    fn injection_is_deterministic_and_cycles_classes() {
        let mut a = candidates();
        let mut b = candidates();
        let la = inject_faults(&mut a, 7);
        let lb = inject_faults(&mut b, 7);
        assert_eq!(la, lb);
        // NaN faults defeat whole-struct PartialEq; names capture the
        // injection pattern.
        let names = |v: &[CandidateParams]| v.iter().map(|c| c.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        assert_eq!(la.len(), a.len().div_ceil(7));
        // All five classes appear.
        for class in FaultClass::ALL {
            assert!(la.iter().any(|(_, c)| *c == class), "{class} missing");
        }
        // Faulted names are marked.
        for (i, class) in &la {
            assert!(a[*i].name.ends_with(&format!("!fault-{}", class.tag())), "{}", a[*i].name);
        }
    }

    #[test]
    fn validation_faults_fail_the_build_with_expected_kinds() {
        let mut cands = candidates();
        let ledger = inject_faults(&mut cands, 11);
        for (i, class) in &ledger {
            match cands[*i].build() {
                Ok(_) => assert!(class.may_succeed(), "{class} must not build"),
                Err(e) => {
                    // Build-time rejections must be invalid_config; the
                    // other classes only fail later, in evaluation.
                    assert_eq!(e.kind(), "invalid_config", "{class}: {e}");
                    assert!(
                        class.allowed_failure_kinds().contains(&e.kind()),
                        "{class} may not fail with {}",
                        e.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn untouched_candidates_are_untouched() {
        let clean = candidates();
        let mut faulted = clean.clone();
        let ledger = inject_faults(&mut faulted, 5);
        let hit: std::collections::BTreeSet<usize> = ledger.iter().map(|(i, _)| *i).collect();
        for (i, (c, f)) in clean.iter().zip(&faulted).enumerate() {
            if !hit.contains(&i) {
                assert_eq!(c, f);
            }
        }
    }
}
