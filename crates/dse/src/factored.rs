//! Factored sweep evaluation: dependency-keyed leg memoization over the
//! sweep lattice.
//!
//! A sweep walks a dense Cartesian grid, but each priced cost leg reads
//! only a subset of the axes (see `acs_sim::legs`): over the 1536-point
//! reference sweep the compute leg takes ~32 distinct values, the DRAM
//! leg 16, and the collective leg 3. The planned path still re-prices
//! every operator at every point; this module prices each distinct leg
//! once, stores it in a small per-key table shared across the
//! work-stealing workers, and reduces a grid point to a few hash
//! lookups plus the fused `max()` combine loop in
//! [`Simulator::try_ttft_factored`].
//!
//! Because the tables are keyed by *value-derived* dependency keys
//! ([`LegKeys`], built from the concrete device, not from the sweep
//! axes), a permuted `SweepSpec` hits the same entries, and a faulted
//! candidate either fails validation before pricing or perturbs its key
//! — so the factored path produces bit-identical `EvaluatedDesign`
//! totals and failure ledgers to [`DseRunner::run_report`], a guarantee
//! pinned by `tests/factored_equivalence.rs` with the same golden-digest
//! discipline as `tests/plan_equivalence.rs`.

use crate::evaluate::{DseRunner, EvaluatedDesign, SweptParams};
use crate::report::SweepReport;
use crate::sweeps::{CandidateParams, SweepSpec};
use acs_errors::{guard, AcsError};
use acs_hw::{DeviceConfig, SystemConfig, RETICLE_LIMIT_MM2};
use acs_sim::{ComputeLeg, LayerPlan, LegKeys, MemoryLeg, Simulator};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, PoisonError, RwLock};

/// A multiply-rotate hasher (the FxHash construction) for the leg
/// tables. The table lookup sits on the per-point hot path — six hashes
/// per evaluated design — and the default SipHash costs more than the
/// whole `max()` combine; these keys are small fixed tuples of trusted
/// internal values, so HashDoS resistance buys nothing here.
#[derive(Debug, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The three per-key leg maps of one phase, behind a single lock (one
/// acquisition covers all three lookups of a point).
#[derive(Debug, Default)]
struct LegMaps {
    compute: FxMap<acs_sim::ComputeKey, Arc<Vec<ComputeLeg>>>,
    memory: FxMap<acs_sim::MemoryKey, Arc<Vec<MemoryLeg>>>,
    comm: FxMap<acs_sim::CommKey, Arc<Vec<f64>>>,
}

/// Per-phase leg tables shared by every point of a sweep. One table per
/// leg kind, each keyed by exactly the parameters that leg reads, so
/// distinct axes never alias and identical sub-tuples never re-price.
#[derive(Debug, Default)]
pub(crate) struct LegTables(RwLock<LegMaps>);

/// The leg tables of one runner: prefill and decode phases are priced
/// against different plans, so they memoize independently. Reset
/// whenever the runner's device count or calibration changes (both are
/// baked into the priced legs but deliberately absent from the keys —
/// they are runner-level constants, not sweep axes).
#[derive(Debug, Default)]
pub(crate) struct FactoredSlot {
    pub(crate) prefill: LegTables,
    pub(crate) decode: LegTables,
}

impl LegTables {
    /// Run `combine` over the three leg vectors of `plan` for the node
    /// described by `keys`. On the hot path — every table hit — the
    /// combine executes under the read guard itself, borrowing the legs
    /// straight out of the maps: no Arc refcount traffic at all. Misses
    /// fall back to [`LegTables::legs_for`], which prices and installs
    /// the missing entries.
    pub(crate) fn with_legs<R>(
        &self,
        sim: &Simulator,
        plan: &LayerPlan,
        keys: &LegKeys,
        combine: impl FnOnce(&[ComputeLeg], &[MemoryLeg], &[f64]) -> R,
    ) -> R {
        static HITS: acs_telemetry::GlobalCounter =
            acs_telemetry::GlobalCounter::new("dse.factored.leg_hit");
        {
            let maps = self.0.read().unwrap_or_else(PoisonError::into_inner);
            if let (Some(c), Some(m), Some(w)) = (
                maps.compute.get(&keys.compute),
                maps.memory.get(&keys.memory),
                maps.comm.get(&keys.comm),
            ) {
                HITS.add(3);
                return combine(c, m, w);
            }
        }
        let (c, m, w) = self.legs_for(sim, plan, keys);
        combine(&c, &m, &w)
    }

    /// Fetch (or price and install) the three leg vectors of `plan` for
    /// the node described by `keys`. The hot path is one read-locked
    /// triple of hash lookups; on any miss the plan is priced once — a
    /// single graph walk covers all three legs — and only the missing
    /// tables are filled. A racing builder loses: `entry` keeps the
    /// first insertion so every reader shares one allocation.
    pub(crate) fn legs_for(
        &self,
        sim: &Simulator,
        plan: &LayerPlan,
        keys: &LegKeys,
    ) -> (Arc<Vec<ComputeLeg>>, Arc<Vec<MemoryLeg>>, Arc<Vec<f64>>) {
        // Cached handles: per-point hot path (see parallel_map).
        static HITS: acs_telemetry::GlobalCounter =
            acs_telemetry::GlobalCounter::new("dse.factored.leg_hit");
        static MISSES: acs_telemetry::GlobalCounter =
            acs_telemetry::GlobalCounter::new("dse.factored.leg_miss");
        let (compute, memory, comm) = {
            let maps = self.0.read().unwrap_or_else(PoisonError::into_inner);
            (
                maps.compute.get(&keys.compute).cloned(),
                maps.memory.get(&keys.memory).cloned(),
                maps.comm.get(&keys.comm).cloned(),
            )
        };
        let hits =
            u64::from(compute.is_some()) + u64::from(memory.is_some()) + u64::from(comm.is_some());
        HITS.add(hits);
        MISSES.add(3 - hits);
        if let (Some(c), Some(m), Some(w)) = (compute, memory, comm) {
            return (c, m, w);
        }
        let priced = sim.price_plan_legs(plan);
        let mut maps = self.0.write().unwrap_or_else(PoisonError::into_inner);
        let c = Arc::clone(
            maps.compute.entry(keys.compute).or_insert_with(|| Arc::new(priced.compute)),
        );
        let m =
            Arc::clone(maps.memory.entry(keys.memory).or_insert_with(|| Arc::new(priced.memory)));
        let w = Arc::clone(maps.comm.entry(keys.comm).or_insert_with(|| Arc::new(priced.comm)));
        (c, m, w)
    }

    /// Pure lookup: the already-priced leg vectors for `keys`, or `None`
    /// when any of the three is absent. Never prices — the lattice
    /// engine's fused-table builder uses this after its representative
    /// pricing pass, so a pricing failure there degrades to a per-point
    /// fallback instead of silently pricing against the wrong simulator.
    pub(crate) fn get(
        &self,
        keys: &LegKeys,
    ) -> Option<(Arc<Vec<ComputeLeg>>, Arc<Vec<MemoryLeg>>, Arc<Vec<f64>>)> {
        let maps = self.0.read().unwrap_or_else(PoisonError::into_inner);
        Some((
            Arc::clone(maps.compute.get(&keys.compute)?),
            Arc::clone(maps.memory.get(&keys.memory)?),
            Arc::clone(maps.comm.get(&keys.comm)?),
        ))
    }

    fn reserve(&self, compute: usize, memory: usize, comm: usize) {
        let mut maps = self.0.write().unwrap_or_else(PoisonError::into_inner);
        maps.compute.reserve(compute);
        maps.memory.reserve(memory);
        maps.comm.reserve(comm);
    }
}

impl FactoredSlot {
    /// Pre-size both phases' tables for a known lattice shape, so the
    /// miss-path insertions of a sweep never rehash mid-run.
    pub(crate) fn reserve(&self, compute: usize, memory: usize, comm: usize) {
        self.prefill.reserve(compute, memory, comm);
        self.decode.reserve(compute, memory, comm);
    }
}

impl DseRunner {
    /// [`DseRunner::try_evaluate`] through the factored pricing path:
    /// leg tables instead of per-point graph walks, bit-identical
    /// results. Useful on its own for single points (a service screening
    /// one design reuses the legs of every earlier request); the sweep
    /// drivers use [`DseRunner::run_report_factored`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_factored(&self, config: &DeviceConfig) -> Result<EvaluatedDesign, AcsError> {
        self.try_evaluate_factored_shared(&Arc::new(config.clone()))
    }

    /// [`DseRunner::try_evaluate_factored`] for a configuration that is
    /// already shared (the sweep drivers' form). Consults the runner's
    /// evaluation cache, when configured, under the same key as the
    /// planned path — safe because the two paths produce bit-identical
    /// designs.
    ///
    /// # Errors
    ///
    /// Same contract as [`DseRunner::try_evaluate`].
    pub fn try_evaluate_factored_shared(
        &self,
        config: &Arc<DeviceConfig>,
    ) -> Result<EvaluatedDesign, AcsError> {
        let retyped = self.retyped(config)?;
        let config = retyped.as_ref().unwrap_or(config);
        match &self.cache {
            Some(cache) => {
                let key = self.cache_key(config);
                let (design, hit) =
                    cache.get_or_try_insert(&key, || self.evaluate_factored(config))?;
                // Same counters as the planned path: callers care about
                // evaluation-cache traffic, not which pricing path filled
                // a miss.
                static HITS: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.hits");
                static MISSES: acs_telemetry::GlobalCounter =
                    acs_telemetry::GlobalCounter::new("dse.cache.misses");
                if hit {
                    HITS.add(1);
                } else {
                    MISSES.add(1);
                }
                Ok(design)
            }
            None => self.evaluate_factored(config),
        }
    }

    /// The factored mirror of `evaluate_uncached`: identical guard
    /// contexts in identical order (area, TPP, perf density, system,
    /// plans, die costs, TTFT, TBT), with only the latency pricing
    /// swapped for table lookups — so errors, failure kinds, and every
    /// result bit match the planned path.
    pub(crate) fn evaluate_factored(
        &self,
        config: &Arc<DeviceConfig>,
    ) -> Result<EvaluatedDesign, AcsError> {
        let ctx = || format!("evaluate.{}", config.name());
        let area = guard::ensure_positive_with(
            ctx,
            "die_area_mm2",
            self.area_model.die_area(config).total_mm2(),
        )?;
        let tpp = guard::ensure_positive_with(ctx, "tpp", config.tpp().0)?;
        let pd = guard::ensure_positive_with(ctx, "perf_density", tpp / area)?;
        let system = SystemConfig::shared(Arc::clone(config), self.device_count)?;
        let sim = Simulator::with_params(system, self.sim_params);
        let plans = self.plans_for(config.datatype().bytes())?;
        let die_cost_usd =
            guard::ensure_positive_with(ctx, "die_cost_usd", self.cost_model.die_cost_usd(area))?;
        let good_die_cost_usd = guard::ensure_positive_with(
            ctx,
            "good_die_cost_usd",
            self.cost_model.good_die_cost_usd(area),
        )?;
        let mut keys = LegKeys::of(sim.system());
        // The comm leg of an expert-parallel plan includes the
        // dispatch/combine all-to-alls, whose payloads depend on the
        // group width — fold it into the key so differently grouped
        // runners sharing a node shape never alias (dense plans keep the
        // key's historical value of 1).
        keys.comm.expert_parallel = plans.prefill.expert_parallel();
        // Legs are fetched lazily per phase, prefill before decode, so a
        // cost-model failure surfaces at the same phase as on the
        // planned path.
        let ttft_s = self.factored.prefill.with_legs(&sim, &plans.prefill, &keys, |c, m, w| {
            sim.try_ttft_factored(&plans.prefill, c, m, w)
        })?;
        let tbt_s = self.factored.decode.with_legs(&sim, &plans.decode, &keys, |c, m, w| {
            sim.try_tbt_factored(&plans.decode, c, m, w)
        })?;
        Ok(EvaluatedDesign {
            name: config.name().to_owned(),
            params: SweptParams::of(config),
            tpp,
            die_area_mm2: area,
            perf_density: pd,
            die_cost_usd,
            good_die_cost_usd,
            ttft_s,
            tbt_s,
            within_reticle: area <= RETICLE_LIMIT_MM2,
            pd_unregulated_2023: self.rule_2023.is_unregulated_dc(tpp, pd),
        })
    }

    /// [`DseRunner::run_report`] through the factored pricing path. Same
    /// fault isolation (every point behind `catch_unwind`), same
    /// work-stealing schedule, same designs and failure ledger bit for
    /// bit; the leg tables are shared across the workers through the
    /// runner.
    #[must_use]
    pub fn run_report_factored(&self, candidates: &[CandidateParams]) -> SweepReport {
        let outcomes = self.parallel_map(
            candidates,
            |cand| cand.name.as_str(),
            |cand| {
                cand.build().map(Arc::new).and_then(|cfg| self.try_evaluate_factored_shared(&cfg))
            },
        );
        self.collect_report(candidates, outcomes)
    }

    /// [`DseRunner::run_configs`] through the factored pricing path:
    /// order- and length-preserving, one `Result` per configuration.
    #[must_use]
    pub fn run_configs_factored(
        &self,
        configs: &[DeviceConfig],
    ) -> Vec<Result<EvaluatedDesign, AcsError>> {
        self.parallel_map(configs, |cfg| cfg.name(), |cfg| self.try_evaluate_factored(cfg))
    }

    /// Evaluate a whole sweep at a TPP ceiling through the factored
    /// path. The lattice shape is read off the spec before the run: the
    /// compute leg varies with the systolic dimension, lane count, and
    /// L1 axes (the solved core count is a function of the first two),
    /// the DRAM leg with the L2 and HBM axes, and the collective leg
    /// with the device-bandwidth axis — so the tables are pre-sized to
    /// exactly the lattice's distinct key counts and never rehash
    /// mid-sweep.
    #[must_use]
    pub fn run_factored(&self, spec: &SweepSpec, tpp_target: f64) -> SweepReport {
        self.factored.reserve(
            spec.systolic_dims.len() * spec.lanes_per_core.len() * spec.l1_kib.len(),
            spec.l2_mib.len() * spec.hbm_tb_s.len(),
            spec.device_bw_gb_s.len(),
        );
        self.run_report_factored(&spec.candidates(tpp_target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_llm::{ModelConfig, WorkloadConfig};

    fn runner() -> DseRunner {
        DseRunner::new(ModelConfig::gpt3_175b(), WorkloadConfig::paper_default())
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![2, 4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    #[test]
    fn factored_sweep_is_bit_identical_to_planned() {
        let r = runner();
        let candidates = small_spec().candidates(4800.0);
        let planned = r.run_report(&candidates);
        let factored = r.run_report_factored(&candidates);
        assert_eq!(planned.designs.len(), factored.designs.len());
        assert!(planned.failures.is_empty() && factored.failures.is_empty());
        for ((i, p), (j, f)) in planned.designs.iter().zip(&factored.designs) {
            assert_eq!(i, j);
            assert_eq!(p, f);
            assert_eq!(p.ttft_s.to_bits(), f.ttft_s.to_bits());
            assert_eq!(p.tbt_s.to_bits(), f.tbt_s.to_bits());
        }
    }

    #[test]
    fn run_factored_reports_the_whole_lattice() {
        let report = runner().run_factored(&small_spec(), 4800.0);
        assert_eq!(report.total(), 8);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn leg_tables_stay_small() {
        let r = runner();
        let spec = small_spec();
        let _ = r.run_factored(&spec, 4800.0);
        // 1 dim x 2 lanes x 2 l1 = 4 compute keys; 1 l2 x 2 hbm = 2
        // memory keys; 1 bandwidth = 1 comm key — per phase.
        let slot = &r.factored;
        for tables in [&slot.prefill, &slot.decode] {
            let maps = tables.0.read().unwrap();
            assert_eq!(maps.compute.len(), 4);
            assert_eq!(maps.memory.len(), 2);
            assert_eq!(maps.comm.len(), 1);
        }
    }

    #[test]
    fn faulted_candidates_fail_identically_on_both_paths() {
        let r = runner();
        let mut candidates = small_spec().candidates(4800.0);
        candidates[1].hbm_tb_s = 0.0;
        candidates[3].lanes_per_core = 0;
        let planned = r.run_report(&candidates);
        let factored = r.run_report_factored(&candidates);
        assert_eq!(planned.failures.len(), factored.failures.len());
        for (p, f) in planned.failures.iter().zip(&factored.failures) {
            assert_eq!((p.index, p.kind()), (f.index, f.kind()));
            assert_eq!(p.params, f.params);
        }
    }

    #[test]
    fn calibration_change_resets_the_leg_tables() {
        let r = runner();
        let _ = r.run_factored(&small_spec(), 4800.0);
        let base = r.try_evaluate_factored(&small_spec().configs(4800.0)[0]).unwrap();
        // A different overhead calibration must not see the old legs.
        let mut params = acs_sim::SimParams::calibrated();
        params.op_overhead_s *= 2.0;
        let recal = r.clone().with_sim_params(params);
        let shifted = recal.try_evaluate_factored(&small_spec().configs(4800.0)[0]).unwrap();
        assert!(shifted.ttft_s > base.ttft_s);
        assert_eq!(
            shifted.ttft_s.to_bits(),
            recal.try_evaluate(&small_spec().configs(4800.0)[0]).unwrap().ttft_s.to_bits()
        );
    }
}
