//! Sweep specifications (the paper's Tables 3 and 5).

use acs_errors::AcsError;
use acs_hw::tpp::cores_for_tpp;
use acs_hw::{DataType, DeviceConfig, SystolicDims};
use std::fmt;

/// The raw, *pre-validation* parameters of one sweep point.
///
/// A [`DeviceConfig`] is valid by construction, so a candidate that holds
/// pathological values (zero bandwidth, NaN, overflow-scale counts) can
/// only exist in this form. The sweep pipeline carries candidates, not
/// configs: validation happens inside the fault-isolated evaluation of
/// each point, and a bad candidate becomes a structured
/// [`crate::DesignFailure`] instead of a panic or a skipped row.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateParams {
    /// Design name (unique within a sweep; checkpoints key on it).
    pub name: String,
    /// Square systolic dimension.
    pub systolic_dim: u32,
    /// Lanes per core.
    pub lanes_per_core: u32,
    /// Core count.
    pub core_count: u32,
    /// L1 per core in KiB.
    pub l1_kib: u32,
    /// L2 in MiB.
    pub l2_mib: u32,
    /// HBM bandwidth in TB/s.
    pub hbm_tb_s: f64,
    /// Aggregate bidirectional device bandwidth in GB/s.
    pub device_bw_gb_s: f64,
}

impl CandidateParams {
    /// Validate and materialise the device this candidate describes.
    ///
    /// # Errors
    ///
    /// Returns [`AcsError::InvalidConfig`] for any out-of-domain field —
    /// this is the boundary where injected faults surface as typed errors.
    pub fn build(&self) -> Result<DeviceConfig, AcsError> {
        let mut b = DeviceConfig::builder();
        b.name(self.name.clone())
            .core_count(self.core_count)
            .lanes_per_core(self.lanes_per_core)
            .systolic(SystolicDims::square(self.systolic_dim))
            .l1_kib_per_core(self.l1_kib)
            .l2_mib(self.l2_mib)
            .hbm_bandwidth_tb_s(self.hbm_tb_s)
            .device_bandwidth_gb_s(self.device_bw_gb_s);
        Ok(b.build()?)
    }
}

impl fmt::Display for CandidateParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}x{} x {}l x {}c, L1 {}K, L2 {}M, {} TB/s, {} GB/s]",
            self.name,
            self.systolic_dim,
            self.systolic_dim,
            self.lanes_per_core,
            self.core_count,
            self.l1_kib,
            self.l2_mib,
            self.hbm_tb_s,
            self.device_bw_gb_s
        )
    }
}

/// The architectural parameters a DSE sweeps. The cartesian product of all
/// lists, with the core count solved per point to sit just under a TPP
/// ceiling, forms the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Square systolic-array dimensions to try.
    pub systolic_dims: Vec<u32>,
    /// Lanes per core.
    pub lanes_per_core: Vec<u32>,
    /// Private L1 per core in KiB.
    pub l1_kib: Vec<u32>,
    /// Shared L2 in MiB.
    pub l2_mib: Vec<u32>,
    /// HBM bandwidth in TB/s.
    pub hbm_tb_s: Vec<f64>,
    /// Aggregate bidirectional device bandwidth in GB/s.
    pub device_bw_gb_s: Vec<f64>,
}

impl SweepSpec {
    /// Table 3's sweep with device bandwidth pinned at 600 GB/s — the
    /// October 2022 DSE of Figure 6 (512 designs at one TPP target).
    #[must_use]
    pub fn table3_fig6() -> Self {
        SweepSpec {
            systolic_dims: vec![16, 32],
            lanes_per_core: vec![1, 2, 4, 8],
            l1_kib: vec![192, 256, 512, 1024],
            l2_mib: vec![32, 48, 64, 80],
            hbm_tb_s: vec![2.0, 2.4, 2.8, 3.2],
            device_bw_gb_s: vec![600.0],
        }
    }

    /// Table 3's sweep with device bandwidth ∈ {500, 700, 900} GB/s — the
    /// October 2023 DSE of Figure 7 (1536 designs per TPP target).
    #[must_use]
    pub fn table3_fig7() -> Self {
        SweepSpec { device_bw_gb_s: vec![500.0, 700.0, 900.0], ..Self::table3_fig6() }
    }

    /// Table 5's down-scaled sweep for the restriction study of Figure 12
    /// (2304 configurations).
    #[must_use]
    pub fn table5() -> Self {
        SweepSpec {
            systolic_dims: vec![4, 8, 16],
            lanes_per_core: vec![1, 2, 4, 8],
            l1_kib: vec![32, 64, 128, 192],
            l2_mib: vec![8, 16, 32, 40],
            hbm_tb_s: vec![0.8, 1.2, 1.6, 2.0],
            device_bw_gb_s: vec![400.0, 500.0, 600.0],
        }
    }

    /// A 4096-point synthetic design fleet for fleet-scale policy
    /// what-ifs (`acs-whatif`): four values on every axis, spanning the
    /// Table 3 and Table 5 ranges so the fleet mixes designs on both
    /// sides of the published thresholds. Every (dim, lanes) pair is
    /// feasible at the 4800-TPP operating point, so the fleet
    /// materialises in full.
    #[must_use]
    pub fn synthetic_fleet() -> Self {
        SweepSpec {
            systolic_dims: vec![8, 16, 24, 32],
            lanes_per_core: vec![1, 2, 4, 8],
            l1_kib: vec![64, 192, 512, 1024],
            l2_mib: vec![16, 32, 48, 80],
            hbm_tb_s: vec![0.8, 1.6, 2.4, 3.2],
            device_bw_gb_s: vec![400.0, 600.0, 800.0, 1000.0],
        }
    }

    /// Number of sweep points (before TPP feasibility filtering).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.systolic_dims.len()
            * self.lanes_per_core.len()
            * self.l1_kib.len()
            * self.l2_mib.len()
            * self.hbm_tb_s.len()
            * self.device_bw_gb_s.len()
    }

    /// Materialise the sweep as raw candidates, core counts solved to sit
    /// just under `tpp_target` at the A100's 1.41 GHz FP16 operating
    /// point (§3.3). Sweep points for which no core count fits (huge
    /// arrays against a small budget) are skipped; every other point is
    /// emitted *unvalidated* — validation happens per point inside the
    /// fault-isolated evaluation, so one bad list entry cannot take down
    /// a sweep.
    ///
    /// Ordering is the deterministic row-major cartesian order of the
    /// spec's lists; checkpoints rely on it.
    #[must_use]
    pub fn candidates(&self, tpp_target: f64) -> Vec<CandidateParams> {
        let mut out = Vec::with_capacity(self.cardinality());
        for &dim in &self.systolic_dims {
            for &lanes in &self.lanes_per_core {
                let dims = SystolicDims::square(dim);
                let Ok(cores) = cores_for_tpp(tpp_target, 1.41, DataType::Fp16, dims, lanes)
                else {
                    continue;
                };
                for &l1 in &self.l1_kib {
                    for &l2 in &self.l2_mib {
                        for &hbm in &self.hbm_tb_s {
                            for &dev_bw in &self.device_bw_gb_s {
                                out.push(CandidateParams {
                                    name: format!(
                                        "dse-{tpp_target:.0}-{dim}x{dim}-{lanes}l-{l1}k-{l2}m-{hbm}t-{dev_bw:.0}g"
                                    ),
                                    systolic_dim: dim,
                                    lanes_per_core: lanes,
                                    core_count: cores,
                                    l1_kib: l1,
                                    l2_mib: l2,
                                    hbm_tb_s: hbm,
                                    device_bw_gb_s: dev_bw,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Materialise validated device configurations (the historical API).
    /// Candidates that fail validation are dropped — for a failure ledger
    /// instead of silent drops, use [`SweepSpec::candidates`] with
    /// [`crate::DseRunner::run_report`].
    #[must_use]
    pub fn configs(&self, tpp_target: f64) -> Vec<DeviceConfig> {
        self.candidates(tpp_target).iter().filter_map(|c| c.build().ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_cardinalities_match_paper() {
        assert_eq!(SweepSpec::table3_fig6().cardinality(), 512);
        assert_eq!(SweepSpec::table3_fig7().cardinality(), 1536);
        assert_eq!(SweepSpec::table5().cardinality(), 2304);
    }

    #[test]
    fn synthetic_fleet_materialises_in_full() {
        let spec = SweepSpec::synthetic_fleet();
        assert_eq!(spec.cardinality(), 4096);
        assert_eq!(spec.candidates(4800.0).len(), 4096);
    }

    #[test]
    fn all_generated_configs_sit_under_the_ceiling() {
        for cfg in SweepSpec::table3_fig6().configs(4800.0) {
            assert!(cfg.tpp().0 < 4800.0, "{}: {}", cfg.name(), cfg.tpp());
            // And close to it (within one core's worth of TPP).
            let per_core = cfg.tpp().0 / f64::from(cfg.core_count());
            assert!(cfg.tpp().0 + per_core >= 4800.0 - 1e-6, "{}", cfg.name());
        }
    }

    #[test]
    fn full_sweep_materialises_when_feasible() {
        let spec = SweepSpec::table3_fig6();
        assert_eq!(spec.configs(4800.0).len(), 512);
        assert_eq!(SweepSpec::table3_fig7().configs(2400.0).len(), 1536);
    }

    #[test]
    fn infeasible_points_are_skipped() {
        // 1600 TPP cannot host 32×32 arrays with 8 lanes? 32*32*8 = 8192
        // MACs/core; 1600 TPP allows 35,460 — feasible. Use a tiny budget.
        let spec = SweepSpec {
            systolic_dims: vec![128],
            lanes_per_core: vec![8],
            l1_kib: vec![192],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0],
            device_bw_gb_s: vec![600.0],
        };
        assert!(spec.configs(100.0).is_empty());
    }

    #[test]
    fn candidates_and_configs_agree_one_to_one() {
        let spec = SweepSpec::table3_fig6();
        let cands = spec.candidates(4800.0);
        let cfgs = spec.configs(4800.0);
        assert_eq!(cands.len(), 512);
        assert_eq!(cands.len(), cfgs.len());
        for (c, cfg) in cands.iter().zip(&cfgs) {
            assert_eq!(c.name, cfg.name());
            assert_eq!(c.core_count, cfg.core_count());
            assert_eq!(c.build().unwrap(), *cfg);
        }
    }

    #[test]
    fn pathological_candidates_build_to_typed_errors() {
        let mut c = SweepSpec::table3_fig6().candidates(4800.0).remove(0);
        c.hbm_tb_s = 0.0;
        assert_eq!(c.build().unwrap_err().kind(), "invalid_config");
        c.hbm_tb_s = f64::NAN;
        assert_eq!(c.build().unwrap_err().kind(), "invalid_config");
        c.hbm_tb_s = 2.0;
        c.lanes_per_core = 0;
        assert_eq!(c.build().unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn paper_4800_16x16_4lane_point_has_103_cores() {
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0],
            device_bw_gb_s: vec![600.0],
        };
        let cfgs = spec.configs(4800.0);
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].core_count(), 103);
    }
}
