//! Sharded, content-addressed evaluation cache.
//!
//! The analytical evaluation pipeline is deterministic and pure: the same
//! (accelerator config, workload, policy vintage) always yields the same
//! TTFT/TBT/area/cost. That makes the hot path ideal for content-addressed
//! memoization behind a long-lived service — repeated points in sweeps,
//! repro runs, and near-duplicate service queries are served from memory.
//!
//! Keys are built from the canonical (byte-deterministic) JSON encoding of
//! the inputs via [`CacheKey::from_value`]; the 64-bit FNV-1a digest
//! selects a shard and a bucket, while the canonical encoding itself is
//! stored and compared on lookup, so a digest collision can never return
//! the wrong result.
//!
//! Concurrency model: a fixed number of shards, each behind its own
//! `Mutex`, so concurrent sweep threads contend only when they touch the
//! same shard. Eviction is per-shard LRU, bounded by
//! `capacity / shard_count` entries per shard. Hit/miss/insert/evict
//! counters are lock-free atomics, exported for the service's
//! `/v1/metrics` endpoint.
//!
//! # Example
//!
//! ```
//! use acs_cache::{CacheKey, ShardedCache};
//! use acs_errors::json::{object, Value};
//!
//! let cache: ShardedCache<f64> = ShardedCache::new(1024);
//! let key = CacheKey::from_value(&object(vec![("tpp", Value::Number(4800.0))]));
//! let (v, hit) = cache
//!     .get_or_try_insert(&key, || Ok::<_, std::convert::Infallible>(42.0))
//!     .unwrap();
//! assert!((v, hit) == (42.0, false));
//! let (v, hit) = cache
//!     .get_or_try_insert(&key, || Ok::<_, std::convert::Infallible>(0.0))
//!     .unwrap();
//! assert!((v, hit) == (42.0, true), "second lookup is served from memory");
//! assert_eq!(cache.stats().hits, 1);
//! ```

use acs_errors::hash::{canonical_digest, fnv1a_64};
use acs_errors::json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. A power of two so the digest's
/// low bits select a shard without a division.
pub const SHARD_COUNT: usize = 16;

/// A content-addressed cache key: the canonical JSON encoding of the
/// inputs plus its FNV-1a digest.
///
/// The canonical encoding is the true key; the digest is an index. Two
/// keys are equal iff their canonical encodings are byte-identical, so
/// callers must emit key material with a fixed member order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    digest: u64,
    canon: String,
}

impl CacheKey {
    /// Key a JSON value by its canonical encoding.
    #[must_use]
    pub fn from_value(value: &Value) -> Self {
        CacheKey { digest: canonical_digest(value), canon: value.to_json() }
    }

    /// Key raw canonical text directly (the caller guarantees the text is
    /// byte-deterministic for identical inputs).
    #[must_use]
    pub fn from_canonical(canon: String) -> Self {
        CacheKey { digest: fnv1a_64(canon.as_bytes()), canon }
    }

    /// The FNV-1a digest of the canonical encoding.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The canonical encoding the key addresses.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canon
    }

    /// Fixed-width hex rendering of a digest, for embedding one key's
    /// digest as a component of another key. Canonical JSON numbers are
    /// `f64`, which cannot represent every 64-bit digest exactly, so
    /// composed keys must carry digests as strings.
    #[must_use]
    pub fn digest_hex(digest: u64) -> String {
        format!("{digest:016x}")
    }
}

/// A worker's view of the shard space: worker `worker` of `of` owns the
/// shards `{i : i % of == worker}`.
///
/// The event-loop serve tier hashes connections to workers by digest, so
/// each worker's traffic lands on a private slice of every cache and the
/// shard mutexes are never contended across workers. `None` (no lane)
/// keeps the historical digest-low-bits placement used by the worker
/// pool and the sweep engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLane {
    worker: usize,
    of: usize,
}

impl CacheLane {
    /// Lane for worker `worker` of an `of`-worker tier. `of` is clamped
    /// to `1..=SHARD_COUNT` and `worker` is reduced modulo the clamped
    /// count, so any (worker, of) pair yields a valid non-empty slice.
    #[must_use]
    pub fn new(worker: usize, of: usize) -> Self {
        let of = of.clamp(1, SHARD_COUNT);
        CacheLane { worker: worker % of, of }
    }

    /// The worker index this lane belongs to (already reduced mod `of`).
    #[must_use]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// How many shards this lane owns.
    #[must_use]
    pub fn owned_shards(&self) -> usize {
        (SHARD_COUNT - 1 - self.worker) / self.of + 1
    }

    /// Map a digest onto one of this lane's owned shards. The low digest
    /// bits already routed the connection to the worker, so shard choice
    /// within the slice uses the high bits for independent spread.
    #[must_use]
    pub fn shard_index(&self, digest: u64) -> usize {
        self.worker + self.of * ((digest >> 32) as usize % self.owned_shards())
    }
}

/// Monotonic cache counters (since construction).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Last-access tick for LRU ordering (global monotonic counter).
    stamp: u64,
}

/// A sharded, capacity-bounded, LRU-evicting map from [`CacheKey`] to `V`.
///
/// `V` is cloned out on hits; evaluation results in this workspace are
/// small `Copy`-ish structs, so the clone is cheap relative to the
/// evaluation it saves.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<HashMap<String, Entry<V>>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// A cache holding at most `capacity` entries (clamped to at least
    /// one per shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARD_COUNT).max(1);
        let mut shards = Vec::with_capacity(SHARD_COUNT);
        for _ in 0..SHARD_COUNT {
            shards.push(Mutex::new(HashMap::new()));
        }
        ShardedCache {
            shards,
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry bound (per-shard bound × shard count).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARD_COUNT
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a key, refreshing its LRU stamp on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.get_in(key, None)
    }

    /// [`ShardedCache::get`] restricted to a lane's shard slice (or the
    /// full digest-low-bits placement when `lane` is `None`).
    #[must_use]
    pub fn get_in(&self, key: &CacheKey, lane: Option<CacheLane>) -> Option<V> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.lock(self.shard_in(key, lane));
        match shard.get_mut(key.canonical()) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stats-neutral lookup: no hit/miss accounting and no LRU refresh.
    /// The admission controller uses this to classify a queued request as
    /// cheap (cache-resident) or expensive without skewing the counters
    /// that `/v1/metrics` and the cache-behavior tests observe.
    #[must_use]
    pub fn peek(&self, key: &CacheKey, lane: Option<CacheLane>) -> Option<V> {
        let shard = self.lock(self.shard_in(key, lane));
        shard.get(key.canonical()).map(|entry| entry.value.clone())
    }

    /// Store a value, evicting the shard's least-recently-used entry when
    /// the shard is full. Replacing an existing key never evicts.
    pub fn insert(&self, key: &CacheKey, value: V) {
        self.insert_in(key, value, None);
    }

    /// [`ShardedCache::insert`] restricted to a lane's shard slice.
    pub fn insert_in(&self, key: &CacheKey, value: V, lane: Option<CacheLane>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.lock(self.shard_in(key, lane));
        if !shard.contains_key(key.canonical()) && shard.len() >= self.per_shard_capacity {
            // O(shard len) scan: shards are small (capacity / 16), and
            // eviction only runs once the shard is full.
            if let Some(lru) = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                shard.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(key.canonical().to_owned(), Entry { value, stamp });
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a key; on a miss, compute the value with `f`, store it, and
    /// return it. Returns `(value, was_hit)`.
    ///
    /// The shard lock is **not** held while `f` runs, so a slow evaluation
    /// never blocks unrelated lookups; if two threads race on the same
    /// missing key, both compute and the later insert wins — harmless for
    /// the pure evaluations this cache is built for.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error without caching anything.
    pub fn get_or_try_insert<E>(
        &self,
        key: &CacheKey,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        self.get_or_try_insert_in(key, None, f)
    }

    /// [`ShardedCache::get_or_try_insert`] restricted to a lane's shard
    /// slice.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error without caching anything.
    pub fn get_or_try_insert_in<E>(
        &self,
        key: &CacheKey,
        lane: Option<CacheLane>,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if let Some(v) = self.get_in(key, lane) {
            return Ok((v, true));
        }
        let value = f()?;
        self.insert_in(key, value.clone(), lane);
        Ok((value, false))
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            self.lock(shard).clear();
        }
    }

    fn shard_in(
        &self,
        key: &CacheKey,
        lane: Option<CacheLane>,
    ) -> &Mutex<HashMap<String, Entry<V>>> {
        let index = match lane {
            Some(lane) => lane.shard_index(key.digest()),
            None => (key.digest() as usize) & (SHARD_COUNT - 1),
        };
        &self.shards[index]
    }

    /// Poison-tolerant lock: a panicked writer cannot corrupt a map of
    /// immutable results, so a poisoned shard stays usable.
    fn lock<'a>(
        &self,
        shard: &'a Mutex<HashMap<String, Entry<V>>>,
    ) -> std::sync::MutexGuard<'a, HashMap<String, Entry<V>>> {
        shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::{object, Value};

    fn key(i: u64) -> CacheKey {
        CacheKey::from_value(&object(vec![("i", Value::Number(i as f64))]))
    }

    #[test]
    fn miss_then_hit_with_counters() {
        let cache: ShardedCache<u64> = ShardedCache::new(64);
        let k = key(7);
        assert_eq!(cache.get(&k), None);
        cache.insert(&k, 99);
        assert_eq!(cache.get(&k), Some(99));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_bounded_and_evictions_are_counted() {
        let cache: ShardedCache<u64> = ShardedCache::new(32);
        assert_eq!(cache.capacity(), 32);
        for i in 0..500 {
            cache.insert(&key(i), i);
        }
        assert!(cache.len() <= cache.capacity(), "len {} > cap", cache.len());
        let s = cache.stats();
        assert_eq!(s.insertions, 500);
        assert_eq!(s.evictions as usize, 500 - cache.len());
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        // Capacity 16 ⇒ one entry per shard: inserting a second key into
        // an occupied shard must evict the older, untouched one.
        let cache: ShardedCache<u64> = ShardedCache::new(16);
        // Find two keys landing in the same shard.
        let base = key(0);
        let shard_of = |k: &CacheKey| (k.digest() as usize) & (SHARD_COUNT - 1);
        let sibling = (1..)
            .map(key)
            .find(|k| shard_of(k) == shard_of(&base))
            .unwrap();
        cache.insert(&base, 1);
        assert_eq!(cache.get(&base), Some(1)); // refresh base's stamp
        cache.insert(&sibling, 2);
        // base was more recently used than nothing else in the shard, so
        // it was the only candidate and is gone; sibling is resident.
        assert_eq!(cache.get(&sibling), Some(2));
        assert_eq!(cache.get(&base), None);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn lru_order_respects_access_recency() {
        // Force all traffic into one logical shard by using capacity 16
        // and three same-shard keys: after touching the first, the second
        // (stale) one is evicted.
        let cache: ShardedCache<u64> = ShardedCache::new(32); // 2 per shard
        let shard_of = |k: &CacheKey| (k.digest() as usize) & (SHARD_COUNT - 1);
        let a = key(0);
        let mut same: Vec<CacheKey> =
            (1..).map(key).filter(|k| shard_of(k) == shard_of(&a)).take(2).collect();
        let c = same.pop().unwrap();
        let b = same.pop().unwrap();
        cache.insert(&a, 1);
        cache.insert(&b, 2);
        assert_eq!(cache.get(&a), Some(1)); // a is now fresher than b
        cache.insert(&c, 3); // shard full: b is the LRU victim
        assert_eq!(cache.get(&a), Some(1));
        assert_eq!(cache.get(&c), Some(3));
        assert_eq!(cache.get(&b), None);
    }

    #[test]
    fn get_or_try_insert_computes_once() {
        let cache: ShardedCache<String> = ShardedCache::new(64);
        let k = key(1);
        let mut calls = 0;
        for expect_hit in [false, true, true] {
            let (v, hit) = cache
                .get_or_try_insert(&k, || {
                    calls += 1;
                    Ok::<_, std::convert::Infallible>("result".to_owned())
                })
                .unwrap();
            assert_eq!(v, "result");
            assert_eq!(hit, expect_hit);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: ShardedCache<u64> = ShardedCache::new(64);
        let k = key(1);
        let r: Result<(u64, bool), &str> = cache.get_or_try_insert(&k, || Err("boom"));
        assert_eq!(r, Err("boom"));
        // The failure was not memoised: a later success is stored.
        let (v, hit) = cache.get_or_try_insert(&k, || Ok::<_, &str>(5)).unwrap();
        assert_eq!((v, hit), (5, false));
        assert_eq!(cache.get(&k), Some(5));
    }

    #[test]
    fn digest_collisions_cannot_alias() {
        // Two distinct canonical encodings forced onto the same digest
        // path: the canonical string is the map key, so they coexist.
        let a = CacheKey::from_canonical("{\"x\":1}".to_owned());
        let b = CacheKey::from_canonical("{\"x\":2}".to_owned());
        let cache: ShardedCache<u64> = ShardedCache::new(64);
        cache.insert(&a, 1);
        cache.insert(&b, 2);
        assert_eq!(cache.get(&a), Some(1));
        assert_eq!(cache.get(&b), Some(2));
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let cache: ShardedCache<u64> = ShardedCache::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = key(i);
                        let (v, _) = cache
                            .get_or_try_insert(&k, || Ok::<_, std::convert::Infallible>(i * 10))
                            .unwrap();
                        assert_eq!(v, i * 10, "thread {t}");
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
        assert!(s.hits > 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: ShardedCache<u64> = ShardedCache::new(64);
        cache.insert(&key(1), 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn lanes_partition_the_shard_space() {
        // Every shard is owned by exactly one worker, for every tier size.
        for of in 1..=SHARD_COUNT {
            let mut owned = vec![0usize; SHARD_COUNT];
            for worker in 0..of {
                let lane = CacheLane::new(worker, of);
                for high in 0..64u64 {
                    let digest = high << 32 | worker as u64;
                    let shard = lane.shard_index(digest);
                    assert_eq!(shard % of, worker, "of={of} worker={worker}");
                    owned[shard] += 1;
                }
            }
            assert!(owned.iter().all(|&n| n > 0), "of={of}: unowned shard");
        }
    }

    #[test]
    fn lane_parameters_are_clamped_to_valid_slices() {
        // Oversized tiers and out-of-range workers still yield usable
        // lanes: worker reduces mod the clamped tier size.
        let lane = CacheLane::new(37, 5 * SHARD_COUNT);
        assert_eq!(lane.worker(), 37 % SHARD_COUNT);
        assert!(lane.owned_shards() >= 1);
        for digest in [0, u64::MAX, 1 << 53] {
            assert!(lane.shard_index(digest) < SHARD_COUNT);
        }
        let degenerate = CacheLane::new(3, 0);
        assert_eq!((degenerate.worker(), degenerate.owned_shards()), (0, SHARD_COUNT));
    }

    #[test]
    fn lane_scoped_operations_round_trip_and_count() {
        let cache: ShardedCache<u64> = ShardedCache::new(256);
        let lane = Some(CacheLane::new(2, 4));
        let k = key(11);
        assert_eq!(cache.get_in(&k, lane), None);
        cache.insert_in(&k, 42, lane);
        assert_eq!(cache.get_in(&k, lane), Some(42));
        let (v, hit) = cache
            .get_or_try_insert_in(&k, lane, || Ok::<_, std::convert::Infallible>(0))
            .unwrap();
        assert_eq!((v, hit), (42, true));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 1));
    }

    #[test]
    fn peek_is_stats_neutral_and_does_not_refresh_lru() {
        let cache: ShardedCache<u64> = ShardedCache::new(64);
        let k = key(3);
        assert_eq!(cache.peek(&k, None), None);
        cache.insert(&k, 9);
        assert_eq!(cache.peek(&k, None), Some(9));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn distinct_lanes_are_disjoint_keyspaces() {
        // An entry inserted through worker 0's lane is invisible through
        // worker 1's: shard affinity replaces cross-worker sharing.
        let cache: ShardedCache<u64> = ShardedCache::new(256);
        let a = Some(CacheLane::new(0, 2));
        let b = Some(CacheLane::new(1, 2));
        let k = key(5);
        cache.insert_in(&k, 7, a);
        assert_eq!(cache.peek(&k, a), Some(7));
        assert_eq!(cache.peek(&k, b), None);
    }

    #[test]
    fn digest_hex_is_fixed_width_and_lossless() {
        assert_eq!(CacheKey::digest_hex(0), "0000000000000000");
        assert_eq!(CacheKey::digest_hex(u64::MAX), "ffffffffffffffff");
        // Digests above 2^53 are exactly the ones f64 would mangle.
        let big = (1u64 << 53) + 1;
        assert_eq!(u64::from_str_radix(&CacheKey::digest_hex(big), 16).unwrap(), big);
        assert_eq!(CacheKey::digest_hex(big).len(), 16);
    }
}
