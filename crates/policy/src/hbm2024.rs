//! The December 2024 HBM export control (§2.1).
//!
//! Commodity HBM packages with a *memory bandwidth density* — package
//! bandwidth divided by package area — greater than 2 GB/s/mm² are
//! export-controlled; packages below 3.3 GB/s/mm² may apply for licence
//! exception *HBM*. The rule does not apply to HBM already installed in
//! computing devices before export.

use std::fmt;

/// One commodity HBM package.
#[derive(Debug, Clone, PartialEq)]
pub struct HbmPackage {
    /// Package name.
    pub name: String,
    /// Package bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Package area in mm².
    pub area_mm2: f64,
}

impl HbmPackage {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, bandwidth_gb_s: f64, area_mm2: f64) -> Self {
        HbmPackage { name: name.into(), bandwidth_gb_s, area_mm2 }
    }

    /// Memory bandwidth density in GB/s/mm².
    ///
    /// Returns 0 for degenerate (non-positive-area) packages.
    #[must_use]
    pub fn bandwidth_density(&self) -> f64 {
        if self.area_mm2 <= 0.0 {
            0.0
        } else {
            self.bandwidth_gb_s / self.area_mm2
        }
    }
}

/// Outcome of the December 2024 HBM rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HbmClassification {
    /// Below the 2 GB/s/mm² control threshold.
    NotControlled,
    /// Controlled, but below 3.3 GB/s/mm²: may apply for licence
    /// exception HBM.
    ExceptionEligible,
    /// Controlled with no exception path.
    Controlled,
}

impl fmt::Display for HbmClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbmClassification::NotControlled => write!(f, "not controlled"),
            HbmClassification::ExceptionEligible => write!(f, "license exception HBM eligible"),
            HbmClassification::Controlled => write!(f, "controlled"),
        }
    }
}

/// The December 2024 HBM rule thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmRule2024 {
    /// Control threshold in GB/s/mm² (2.0).
    pub control_density: f64,
    /// Licence-exception ceiling in GB/s/mm² (3.3).
    pub exception_density: f64,
}

impl HbmRule2024 {
    /// The thresholds as published in December 2024.
    #[must_use]
    pub fn published() -> Self {
        HbmRule2024 { control_density: 2.0, exception_density: 3.3 }
    }

    /// Classify a commodity HBM package.
    #[must_use]
    pub fn classify(&self, package: &HbmPackage) -> HbmClassification {
        let density = package.bandwidth_density();
        if density <= self.control_density {
            HbmClassification::NotControlled
        } else if density < self.exception_density {
            HbmClassification::ExceptionEligible
        } else {
            HbmClassification::Controlled
        }
    }
}

impl Default for HbmRule2024 {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_tiers() {
        let rule = HbmRule2024::published();
        // HBM2e-class: ~460 GB/s on a ~100 mm² package: density 4.6.
        let hbm2e = HbmPackage::new("HBM2e", 460.0, 100.0);
        assert_eq!(rule.classify(&hbm2e), HbmClassification::Controlled);
        // A hypothetical derated stack at 2.5 GB/s/mm²: exception-eligible.
        let derated = HbmPackage::new("derated", 250.0, 100.0);
        assert_eq!(rule.classify(&derated), HbmClassification::ExceptionEligible);
        // Plain DDR-class package density: not controlled.
        let slow = HbmPackage::new("slow", 150.0, 100.0);
        assert_eq!(rule.classify(&slow), HbmClassification::NotControlled);
    }

    #[test]
    fn boundary_values() {
        let rule = HbmRule2024::published();
        // "greater than 2" controls: exactly 2.0 is not controlled.
        assert_eq!(
            rule.classify(&HbmPackage::new("edge", 200.0, 100.0)),
            HbmClassification::NotControlled
        );
        // "less than 3.3" is exception-eligible: exactly 3.3 is not.
        assert_eq!(
            rule.classify(&HbmPackage::new("edge", 330.0, 100.0)),
            HbmClassification::Controlled
        );
    }

    #[test]
    fn degenerate_package_is_uncontrolled() {
        let rule = HbmRule2024::published();
        assert_eq!(
            rule.classify(&HbmPackage::new("zero", 500.0, 0.0)),
            HbmClassification::NotControlled
        );
    }

    #[test]
    fn ordering_reflects_restrictiveness() {
        assert!(HbmClassification::NotControlled < HbmClassification::ExceptionEligible);
        assert!(HbmClassification::ExceptionEligible < HbmClassification::Controlled);
    }
}
