//! The datasheet quantities export-control rules reference.

use crate::classification::MarketSegment;
use acs_hw::{AreaModel, DeviceConfig, PerfDensity, Tpp};
use std::fmt;

/// Export-control-relevant metrics of one device.
///
/// Both real products (from `acs-devices`) and synthetic DSE designs (from
/// `acs-dse`) are classified through this type, so policy code never cares
/// where a device came from.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMetrics {
    name: String,
    tpp: Tpp,
    device_bw_gb_s: f64,
    die_area_mm2: f64,
    non_planar: bool,
    market: MarketSegment,
    mem_capacity_gib: f64,
    mem_bw_gb_s: f64,
}

impl DeviceMetrics {
    /// Construct metrics from datasheet values.
    ///
    /// `die_area_mm2` is the total die area of the package;
    /// `non_planar` records whether the dies use FinFET/GAA transistors
    /// (planar dies have no "applicable die area" and hence no
    /// performance density under the October 2023 rule).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        tpp: f64,
        device_bw_gb_s: f64,
        die_area_mm2: f64,
        non_planar: bool,
        market: MarketSegment,
    ) -> Self {
        DeviceMetrics {
            name: name.into(),
            tpp: Tpp(tpp),
            device_bw_gb_s,
            die_area_mm2,
            non_planar,
            market,
            mem_capacity_gib: 0.0,
            mem_bw_gb_s: 0.0,
        }
    }

    /// Attach memory capacity (GiB) and bandwidth (GB/s) — used by the
    /// paper's architecture-based classification (Figure 10).
    #[must_use]
    pub fn with_memory(mut self, capacity_gib: f64, bandwidth_gb_s: f64) -> Self {
        self.mem_capacity_gib = capacity_gib;
        self.mem_bw_gb_s = bandwidth_gb_s;
        self
    }

    /// Derive metrics from a hardware configuration: TPP from Eq. 1,
    /// performance density from the given die area and the configuration's
    /// process planarity.
    #[must_use]
    pub fn from_config(
        config: &DeviceConfig,
        die_area_mm2: f64,
        market: MarketSegment,
    ) -> Self {
        DeviceMetrics {
            name: config.name().to_owned(),
            tpp: config.tpp(),
            device_bw_gb_s: config.phy().total_gb_s(),
            die_area_mm2,
            non_planar: config.process().is_non_planar(),
            market,
            mem_capacity_gib: config.hbm().capacity_gib,
            mem_bw_gb_s: config.hbm().bandwidth_gb_s,
        }
    }

    /// Derive metrics from a configuration, modelling its die area with
    /// the calibrated 7 nm area model.
    #[must_use]
    pub fn from_config_with_model(config: &DeviceConfig, market: MarketSegment) -> Self {
        let area = AreaModel::n7().die_area(config).total_mm2();
        Self::from_config(config, area, market)
    }

    /// Device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total Processing Performance.
    #[must_use]
    pub fn tpp(&self) -> Tpp {
        self.tpp
    }

    /// Aggregate bidirectional device-to-device bandwidth in GB/s.
    #[must_use]
    pub fn device_bw_gb_s(&self) -> f64 {
        self.device_bw_gb_s
    }

    /// Total die area in mm².
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_area_mm2
    }

    /// Whether the dies use non-planar transistors.
    #[must_use]
    pub fn non_planar(&self) -> bool {
        self.non_planar
    }

    /// Marketed segment.
    #[must_use]
    pub fn market(&self) -> MarketSegment {
        self.market
    }

    /// Memory capacity in GiB (0 when unknown).
    #[must_use]
    pub fn mem_capacity_gib(&self) -> f64 {
        self.mem_capacity_gib
    }

    /// Memory bandwidth in GB/s (0 when unknown).
    #[must_use]
    pub fn mem_bw_gb_s(&self) -> f64 {
        self.mem_bw_gb_s
    }

    /// Performance density (TPP / applicable die area); `None` for planar
    /// dies or unknown area.
    #[must_use]
    pub fn performance_density(&self) -> Option<PerfDensity> {
        if self.non_planar && self.die_area_mm2 > 0.0 {
            Some(PerfDensity(self.tpp.0 / self.die_area_mm2))
        } else {
            None
        }
    }

    /// A copy rebranded into the opposite market segment (Figure 9's
    /// counterfactual).
    #[must_use]
    pub fn rebranded(&self) -> Self {
        let mut m = self.clone();
        m.market = self.market.opposite();
        m
    }
}

impl fmt::Display for DeviceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}, {:.0} GB/s dev BW, {:.0} mm2",
            self.name, self.market, self.tpp, self.device_bw_gb_s, self.die_area_mm2
        )?;
        if let Some(pd) = self.performance_density() {
            write!(f, ", {pd}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_config_yields_paper_metrics() {
        let cfg = DeviceConfig::a100_like();
        let m = DeviceMetrics::from_config(&cfg, 826.0, MarketSegment::DataCenter);
        assert!((m.tpp().0 - 4992.0).abs() < 25.0);
        assert!((m.device_bw_gb_s() - 600.0).abs() < 1e-9);
        let pd = m.performance_density().unwrap();
        assert!((pd.0 - 6.04).abs() < 0.1);
    }

    #[test]
    fn planar_devices_have_no_pd() {
        let m = DeviceMetrics::new("old", 100.0, 32.0, 400.0, false, MarketSegment::NonDataCenter);
        assert_eq!(m.performance_density(), None);
    }

    #[test]
    fn zero_area_has_no_pd() {
        let m = DeviceMetrics::new("x", 100.0, 32.0, 0.0, true, MarketSegment::NonDataCenter);
        assert_eq!(m.performance_density(), None);
    }

    #[test]
    fn rebranding_flips_only_the_market() {
        let m = DeviceMetrics::new("x", 5285.0, 32.0, 608.0, true, MarketSegment::NonDataCenter);
        let r = m.rebranded();
        assert_eq!(r.market(), MarketSegment::DataCenter);
        assert_eq!(r.tpp(), m.tpp());
        assert_eq!(r.rebranded(), m);
    }

    #[test]
    fn from_config_with_model_uses_area_model() {
        let cfg = DeviceConfig::a100_like();
        let m = DeviceMetrics::from_config_with_model(&cfg, MarketSegment::DataCenter);
        assert!(m.die_area_mm2() > 500.0 && m.die_area_mm2() < 900.0);
    }

    #[test]
    fn display_shows_pd_for_finfet() {
        let m = DeviceMetrics::new("A800", 4992.0, 400.0, 826.0, true, MarketSegment::DataCenter);
        assert!(m.to_string().contains("TPP/mm2"));
    }
}
