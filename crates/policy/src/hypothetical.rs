//! Hypothetical rule variants the paper's §5 floats but no regulation
//! has enacted — parameterized so the what-if engine (`acs-whatif`) can
//! sweep them next to the published generations.

use crate::classification::Classification;
use crate::metrics::DeviceMetrics;

/// A hypothetical device-level memory-bandwidth control: license
/// required for any device whose *memory* bandwidth (HBM/GDDR, not the
/// interconnect bandwidth the 2022 rule reads) exceeds a threshold.
///
/// The paper discusses an 800 GB/s variant that would catch consumer
/// GDDR6X parts the TPP rules miss. The threshold is exclusive — a
/// device is controlled only when it sits strictly *above* the line —
/// matching the "above a hypothetical threshold" framing of §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemBwRule {
    /// License threshold on device memory bandwidth in GB/s (exclusive).
    pub license_threshold_gb_s: f64,
}

impl MemBwRule {
    /// The §5 discussion value: 800 GB/s.
    #[must_use]
    pub fn published() -> Self {
        MemBwRule { license_threshold_gb_s: 800.0 }
    }

    /// Classify a device on its memory bandwidth alone.
    #[must_use]
    pub fn classify(&self, metrics: &DeviceMetrics) -> Classification {
        if metrics.mem_bw_gb_s() > self.license_threshold_gb_s {
            Classification::LicenseRequired
        } else {
            Classification::NotApplicable
        }
    }
}

impl Default for MemBwRule {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::MarketSegment;

    fn dev(mem_bw: f64) -> DeviceMetrics {
        DeviceMetrics::new("d", 1000.0, 400.0, 300.0, true, MarketSegment::NonDataCenter)
            .with_memory(16.0, mem_bw)
    }

    #[test]
    fn threshold_is_exclusive() {
        let rule = MemBwRule::published();
        assert_eq!(rule.classify(&dev(800.0)), Classification::NotApplicable);
        assert_eq!(rule.classify(&dev(800.1)), Classification::LicenseRequired);
        assert_eq!(rule.classify(&dev(2039.0)), Classification::LicenseRequired);
    }

    #[test]
    fn zero_threshold_catches_any_device_with_memory() {
        let rule = MemBwRule { license_threshold_gb_s: 0.0 };
        assert_eq!(rule.classify(&dev(1.0)), Classification::LicenseRequired);
        // A device with no recorded memory bandwidth stays out even at 0.
        assert_eq!(rule.classify(&dev(0.0)), Classification::NotApplicable);
    }
}
