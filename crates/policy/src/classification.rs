//! Classification outcomes and market segments.

use std::fmt;

/// Export-control outcome for a device under an ACR generation.
///
/// Ordered by restrictiveness: `NotApplicable < NacEligible <
/// LicenseRequired`, so the strictest outcome of several rules is simply
/// the `max`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum Classification {
    /// The rule does not apply; the device exports freely.
    NotApplicable,
    /// Eligible for the Notified Advanced Computing licence exception
    /// (October 2023 rule only). Exports may still be denied case-by-case.
    NacEligible,
    /// A regular export licence is required.
    LicenseRequired,
}

impl Classification {
    /// Whether the device faces any export restriction at all.
    #[must_use]
    pub fn is_restricted(self) -> bool {
        self != Classification::NotApplicable
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::NotApplicable => write!(f, "Not Applicable"),
            Classification::NacEligible => write!(f, "NAC Eligible"),
            Classification::LicenseRequired => write!(f, "License Required"),
        }
    }
}

/// How a device is designed/marketed — the distinction the October 2023
/// rule (and §5.2's critique of it) hinges on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarketSegment {
    /// Designed or marketed for data centers.
    DataCenter,
    /// Consumer / workstation ("non-data center") devices.
    NonDataCenter,
}

impl MarketSegment {
    /// The opposite segment — used for the paper's "what if it were
    /// rebranded" analysis (Figure 9).
    #[must_use]
    pub fn opposite(self) -> Self {
        match self {
            MarketSegment::DataCenter => MarketSegment::NonDataCenter,
            MarketSegment::NonDataCenter => MarketSegment::DataCenter,
        }
    }
}

impl fmt::Display for MarketSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketSegment::DataCenter => write!(f, "data center"),
            MarketSegment::NonDataCenter => write!(f, "non-data center"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_reflects_restrictiveness() {
        assert!(Classification::NotApplicable < Classification::NacEligible);
        assert!(Classification::NacEligible < Classification::LicenseRequired);
        let strictest = [Classification::NacEligible, Classification::NotApplicable]
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(strictest, Classification::NacEligible);
    }

    #[test]
    fn restriction_predicate() {
        assert!(!Classification::NotApplicable.is_restricted());
        assert!(Classification::NacEligible.is_restricted());
        assert!(Classification::LicenseRequired.is_restricted());
    }

    #[test]
    fn opposite_is_involutive() {
        for m in [MarketSegment::DataCenter, MarketSegment::NonDataCenter] {
            assert_eq!(m.opposite().opposite(), m);
        }
    }

    #[test]
    fn display_matches_figure_legends() {
        assert_eq!(Classification::NacEligible.to_string(), "NAC Eligible");
        assert_eq!(Classification::LicenseRequired.to_string(), "License Required");
        assert_eq!(Classification::NotApplicable.to_string(), "Not Applicable");
    }
}
