//! The regulatory timeline.
//!
//! §2.5 notes that chip design cycles span years while the rules changed
//! within one; this module lets callers ask "how would this device have
//! been classified as of a given month?" across the three regimes the
//! paper spans: before October 2022, the October 2022 rule, and the
//! October 2023 rule (still in effect through the paper's horizon —
//! the December 2024 HBM rule regulates memory packages, not devices).

use crate::classification::Classification;
use crate::metrics::DeviceMetrics;
use crate::oct2022::Acr2022;
use crate::oct2023::Acr2023;
use std::fmt;

/// Which device-level rule generation applies at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleGeneration {
    /// Before the October 2022 Advanced Computing Rule.
    PreAcr,
    /// October 2022 – September 2023.
    Oct2022,
    /// October 2023 onward.
    Oct2023,
}

impl fmt::Display for RuleGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleGeneration::PreAcr => write!(f, "pre-ACR"),
            RuleGeneration::Oct2022 => write!(f, "October 2022 rule"),
            RuleGeneration::Oct2023 => write!(f, "October 2023 rule"),
        }
    }
}

/// The rule generation in force in `(year, month)` (month 1–12).
///
/// # Example
///
/// ```
/// use acs_policy::{generation_as_of, RuleGeneration};
///
/// assert_eq!(generation_as_of(2023, 3), RuleGeneration::Oct2022);
/// assert_eq!(generation_as_of(2024, 3), RuleGeneration::Oct2023);
/// ```
#[must_use]
pub fn generation_as_of(year: u16, month: u8) -> RuleGeneration {
    let stamp = u32::from(year) * 12 + u32::from(month.clamp(1, 12)) - 1;
    let oct_2022 = 2022 * 12 + 9; // October 2022
    let oct_2023 = 2023 * 12 + 9;
    if stamp < oct_2022 {
        RuleGeneration::PreAcr
    } else if stamp < oct_2023 {
        RuleGeneration::Oct2022
    } else {
        RuleGeneration::Oct2023
    }
}

/// Classify a device under the rule generation in force at `(year, month)`.
#[must_use]
pub fn classify_as_of(device: &DeviceMetrics, year: u16, month: u8) -> Classification {
    match generation_as_of(year, month) {
        RuleGeneration::PreAcr => Classification::NotApplicable,
        RuleGeneration::Oct2022 => Acr2022::published().classify(device),
        RuleGeneration::Oct2023 => Acr2023::published().classify(device),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::MarketSegment;

    fn a800() -> DeviceMetrics {
        DeviceMetrics::new("A800", 4992.0, 400.0, 826.0, true, MarketSegment::DataCenter)
    }

    #[test]
    fn generation_boundaries() {
        assert_eq!(generation_as_of(2022, 9), RuleGeneration::PreAcr);
        assert_eq!(generation_as_of(2022, 10), RuleGeneration::Oct2022);
        assert_eq!(generation_as_of(2023, 9), RuleGeneration::Oct2022);
        assert_eq!(generation_as_of(2023, 10), RuleGeneration::Oct2023);
        assert_eq!(generation_as_of(2025, 1), RuleGeneration::Oct2023);
        assert_eq!(generation_as_of(2018, 1), RuleGeneration::PreAcr);
    }

    #[test]
    fn the_a800_lifecycle() {
        // Launched compliant (Aug 2022, pre-ACR), stayed compliant under
        // the October 2022 rule, caught in October 2023 (§2.2).
        let d = a800();
        assert_eq!(classify_as_of(&d, 2022, 8), Classification::NotApplicable);
        assert_eq!(classify_as_of(&d, 2023, 3), Classification::NotApplicable);
        assert_eq!(classify_as_of(&d, 2023, 10), Classification::LicenseRequired);
    }

    #[test]
    fn out_of_range_months_clamp() {
        assert_eq!(generation_as_of(2023, 0), generation_as_of(2023, 1));
        assert_eq!(generation_as_of(2023, 13), generation_as_of(2023, 12));
    }

    #[test]
    fn display_names() {
        assert_eq!(RuleGeneration::Oct2022.to_string(), "October 2022 rule");
    }
}
