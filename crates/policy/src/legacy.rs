//! Legacy export-control performance metrics (§6.1).
//!
//! The TPP metric descends from a 30-year lineage:
//!
//! * **Composite Theoretical Performance** (CTP, 1991) measured millions
//!   of theoretical operations per second with a word-length adjustment
//!   `L/3 × (1/3 + L/96)` in the original rule; the commonly used
//!   simplification (applied here) scales an operation rate by
//!   `0.3 + 0.7·L/64` so a 64-bit operation counts fully and narrower
//!   operations are discounted but never below 30 %.
//! * **Adjusted Peak Performance** (APP, 2006) replaced CTP with
//!   64-bit FLOP/s weighted by processor type: 0.9 for vector processors,
//!   0.3 for non-vector processors, expressed in Weighted TeraFLOPS (WT).
//!
//! These are provided for comparison studies; they are *simplified*
//! reconstructions of the regulatory formulas, not compliance tools.


/// Word-length adjustment used by the simplified CTP model:
/// `0.3 + 0.7 · bits / 64`, so 64-bit ops weigh 1.0 and 8-bit ops 0.3875.
#[must_use]
pub fn ctp_word_length_factor(bits: u32) -> f64 {
    0.3 + 0.7 * f64::from(bits) / 64.0
}

/// Simplified Composite Theoretical Performance in MTOPS: an operation
/// rate (`tera_ops_per_s`, theoretical peak) at a given operand width.
#[must_use]
pub fn ctp_mtops(tera_ops_per_s: f64, bits: u32) -> f64 {
    tera_ops_per_s * 1e6 * ctp_word_length_factor(bits)
}

/// Processor category for APP weighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProcessorKind {
    /// Vector processors (weighting 0.9).
    Vector,
    /// Non-vector processors (weighting 0.3).
    NonVector,
}

impl AppProcessorKind {
    /// The APP weighting factor.
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            AppProcessorKind::Vector => 0.9,
            AppProcessorKind::NonVector => 0.3,
        }
    }
}

/// Adjusted Peak Performance in Weighted TeraFLOPS: 64-bit FLOP rate
/// weighted by processor kind.
#[must_use]
pub fn app_wt(tera_flops_64bit: f64, kind: AppProcessorKind) -> f64 {
    tera_flops_64bit * kind.weight()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_length_factor_full_at_64_bits() {
        assert!((ctp_word_length_factor(64) - 1.0).abs() < 1e-12);
        assert!((ctp_word_length_factor(32) - 0.65).abs() < 1e-12);
        assert!(ctp_word_length_factor(8) > 0.3);
    }

    #[test]
    fn ctp_discounts_narrow_ops_tpp_rewards_them_less() {
        // The same 312 TOPS device: CTP at fp16 vs fp64.
        let narrow = ctp_mtops(312.0, 16);
        let wide = ctp_mtops(312.0, 64);
        assert!(narrow < wide);
        // TPP instead scales linearly in bitwidth: 16-bit counts 1/4 of
        // 64-bit — a different (steeper) discount, which is the point of
        // the §6.1 comparison.
        let tpp_ratio = 16.0 / 64.0;
        let ctp_ratio = narrow / wide;
        assert!(ctp_ratio > tpp_ratio);
    }

    #[test]
    fn app_weighting() {
        assert!((app_wt(10.0, AppProcessorKind::Vector) - 9.0).abs() < 1e-12);
        assert!((app_wt(10.0, AppProcessorKind::NonVector) - 3.0).abs() < 1e-12);
    }
}
