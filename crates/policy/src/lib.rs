//! The Advanced Computing Rule (ACR) engine: US export-control
//! classification of accelerator devices.
//!
//! Implements, as data-driven rule objects, the three generations of
//! controls the paper analyses:
//!
//! * [`Acr2022`] — October 2022 (Table 1a): license required when
//!   `TPP ≥ 4800` **and** aggregate bidirectional device bandwidth
//!   `≥ 600 GB/s`.
//! * [`Acr2023`] — October 2023 (Table 1b): performance-density tiers with
//!   separate data-center / non-data-center guidelines and Notified
//!   Advanced Computing (NAC) license exceptions.
//! * [`HbmRule2024`] — December 2024: memory-bandwidth-density thresholds
//!   on commodity HBM packages.
//!
//! plus the legacy metrics they descend from ([`legacy`]: 1991's Composite
//! Theoretical Performance and 2006's Adjusted Peak Performance) and the
//! area-floor arithmetic of the paper's Figure 2 ([`thresholds`]).
//!
//! The rule inputs are [`DeviceMetrics`] — the datasheet quantities the
//! regulations reference — so real devices (`acs-devices`) and synthetic
//! DSE designs (`acs-dse`) classify through the same code path.
//!
//! # Example
//!
//! ```
//! use acs_policy::{Acr2022, Acr2023, Classification, DeviceMetrics, MarketSegment};
//!
//! // The NVIDIA A100: TPP 4992, 600 GB/s NVLink, 826 mm² FinFET die.
//! let a100 = DeviceMetrics::new("A100", 4992.0, 600.0, 826.0, true, MarketSegment::DataCenter)
//!     .with_memory(80.0, 2039.0);
//! assert_eq!(Acr2022::default().classify(&a100), Classification::LicenseRequired);
//! assert_eq!(Acr2023::default().classify(&a100), Classification::LicenseRequired);
//!
//! // The A800 cut device bandwidth to 400 GB/s and escaped the 2022 rule…
//! let a800 = DeviceMetrics::new("A800", 4992.0, 400.0, 826.0, true, MarketSegment::DataCenter);
//! assert_eq!(Acr2022::default().classify(&a800), Classification::NotApplicable);
//! // …but the 2023 performance-density rule catches it (PD 6.04 ≥ 5.92).
//! assert_eq!(Acr2023::default().classify(&a800), Classification::LicenseRequired);
//! ```

pub mod classification;
pub mod diffusion2025;
pub mod hbm2024;
pub mod hypothetical;
pub mod legacy;
pub mod metrics;
pub mod oct2022;
pub mod oct2023;
pub mod thresholds;
pub mod timeline;

pub use classification::{Classification, MarketSegment};
pub use diffusion2025::{DiffusionQuota, ExportLedger};
pub use hbm2024::{HbmClassification, HbmPackage, HbmRule2024};
pub use hypothetical::MemBwRule;
pub use metrics::DeviceMetrics;
pub use oct2022::Acr2022;
pub use oct2023::Acr2023;
pub use timeline::{classify_as_of, generation_as_of, RuleGeneration};
