//! Area-floor arithmetic of the October 2023 rule (Figure 2).
//!
//! The performance-density metric acts as a *floor on die area*: a device
//! can escape the rule by keeping TPP constant and growing its die. These
//! helpers compute the floors the paper quotes in §2.5.

use crate::oct2023::Acr2023;

/// Minimum total die area (mm²) for a data-center device of `tpp` to be
/// completely unregulated under `rule` (strictly outside both the licence
/// and NAC tiers). Returns `f64::INFINITY` when no area suffices
/// (`TPP ≥ 4800`), and `0.0` when any area works (`TPP < 1600`).
#[must_use]
pub fn min_area_unregulated_dc(rule: &Acr2023, tpp: f64) -> f64 {
    if tpp >= rule.tpp_license {
        return f64::INFINITY;
    }
    if tpp < rule.tpp_floor {
        return 0.0;
    }
    // Must stay under every PD floor whose TPP clause binds.
    let pd_ceiling = if tpp >= rule.tpp_nac { rule.pd_nac_low } else { rule.pd_nac_high };
    tpp / pd_ceiling
}

/// Minimum total die area (mm²) for a data-center device of `tpp` to be at
/// worst NAC-eligible (i.e. not licence-required). `f64::INFINITY` when
/// `TPP ≥ 4800`; `0.0` when `TPP < 1600`.
#[must_use]
pub fn min_area_nac_dc(rule: &Acr2023, tpp: f64) -> f64 {
    if tpp >= rule.tpp_license {
        return f64::INFINITY;
    }
    if tpp < rule.tpp_floor {
        return 0.0;
    }
    tpp / rule.pd_license
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section_2_5_floors() {
        let rule = Acr2023::published();
        // "a device with 2399 TPP … needs to have a die area greater than
        // 750 mm²" — below the 2400 NAC floor, the binding ceiling is the
        // PD 3.2 clause: 2399 / 3.2 ≈ 750.
        let floor = min_area_unregulated_dc(&rule, 2399.0);
        assert!((floor - 2399.0 / 3.2).abs() < 1.0, "floor = {floor}");
        assert!(floor > 749.0 && floor < 751.0);
        // "For a 1600 TPP device to be NAC eligible, it needs … greater
        // than 270 mm²."
        let nac = min_area_nac_dc(&rule, 1600.0);
        assert!((nac - 1600.0 / 5.92).abs() < 1.0, "nac = {nac}");
        assert!(nac > 269.0 && nac < 272.0);
        // "For a 4799 TPP design to avoid export restrictions, the device
        // must have total die area greater than 3000 mm²."
        let big = min_area_unregulated_dc(&rule, 4799.0);
        assert!(big > 2999.0 && big < 3001.0, "big = {big}");
    }

    #[test]
    fn no_escape_at_or_above_4800() {
        let rule = Acr2023::published();
        assert!(min_area_unregulated_dc(&rule, 4800.0).is_infinite());
        assert!(min_area_nac_dc(&rule, 15824.0).is_infinite());
    }

    #[test]
    fn small_devices_need_no_area() {
        let rule = Acr2023::published();
        assert_eq!(min_area_unregulated_dc(&rule, 1000.0), 0.0);
        assert_eq!(min_area_nac_dc(&rule, 1599.0), 0.0);
    }

    #[test]
    fn floors_are_consistent_with_the_classifier() {
        let rule = Acr2023::published();
        for tpp in [1700.0, 2399.0, 2400.0, 3000.0, 4799.0] {
            let floor = min_area_unregulated_dc(&rule, tpp);
            assert!(rule.is_unregulated_dc(tpp, tpp / (floor * 1.001)));
            assert!(!rule.is_unregulated_dc(tpp, tpp / (floor * 0.999)));
        }
    }
}
