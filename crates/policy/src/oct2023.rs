//! The October 2023 Advanced Computing Rule (Table 1b).
//!
//! Data-center devices:
//!
//! * **Licence required**: `TPP ≥ 4800`, or `TPP ≥ 1600 ∧ PD ≥ 5.92`.
//! * **NAC eligible**: `4800 > TPP ≥ 2400 ∧ 5.92 > PD ≥ 1.6`, or
//!   `TPP ≥ 1600 ∧ 5.92 > PD ≥ 3.2`.
//!
//! Non-data-center devices: **NAC eligible** when `TPP ≥ 4800`.
//!
//! Planar-transistor dies contribute no applicable die area, so such
//! devices have no performance density and only the TPP clauses can bind.

use crate::classification::{Classification, MarketSegment};
use crate::metrics::DeviceMetrics;

/// The October 2023 rule, parameterised for what-if studies.
///
/// # Example
///
/// ```
/// use acs_policy::{Acr2023, Classification, DeviceMetrics, MarketSegment};
///
/// let rule = Acr2023::published();
/// let l40 = DeviceMetrics::new("L40", 2896.0, 32.0, 608.5, true,
///     MarketSegment::DataCenter);
/// assert_eq!(rule.classify(&l40), Classification::NacEligible);
/// // Rebranded as a consumer part it would escape entirely (§5.2).
/// assert_eq!(
///     rule.classify_as(&l40, MarketSegment::NonDataCenter),
///     Classification::NotApplicable
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acr2023 {
    /// Unconditional licence TPP threshold (4800).
    pub tpp_license: f64,
    /// TPP floor of the density-based licence clause (1600).
    pub tpp_floor: f64,
    /// NAC TPP floor of the first NAC clause (2400).
    pub tpp_nac: f64,
    /// PD at/above which a licence is required (5.92).
    pub pd_license: f64,
    /// PD floor of the second NAC clause (3.2).
    pub pd_nac_high: f64,
    /// PD floor of the first NAC clause (1.6).
    pub pd_nac_low: f64,
}

impl Acr2023 {
    /// The thresholds as published in October 2023.
    #[must_use]
    pub fn published() -> Self {
        Acr2023 {
            tpp_license: 4800.0,
            tpp_floor: 1600.0,
            tpp_nac: 2400.0,
            pd_license: 5.92,
            pd_nac_high: 3.2,
            pd_nac_low: 1.6,
        }
    }

    /// Classify a device under its marketed segment.
    #[must_use]
    pub fn classify(&self, device: &DeviceMetrics) -> Classification {
        self.classify_as(device, device.market())
    }

    /// Classify a device *as if* marketed in `segment` — the
    /// counterfactual behind the paper's false-data-center /
    /// false-non-data-center analysis (Figure 9).
    #[must_use]
    pub fn classify_as(&self, device: &DeviceMetrics, segment: MarketSegment) -> Classification {
        let tpp = device.tpp().0;
        match segment {
            MarketSegment::NonDataCenter => {
                if tpp >= self.tpp_license {
                    Classification::NacEligible
                } else {
                    Classification::NotApplicable
                }
            }
            MarketSegment::DataCenter => {
                let pd = device.performance_density().map_or(0.0, |p| p.0);
                if tpp >= self.tpp_license || (tpp >= self.tpp_floor && pd >= self.pd_license) {
                    return Classification::LicenseRequired;
                }
                let nac_mid = tpp >= self.tpp_nac && pd >= self.pd_nac_low;
                let nac_dense = tpp >= self.tpp_floor && pd >= self.pd_nac_high;
                if nac_mid || nac_dense {
                    Classification::NacEligible
                } else {
                    Classification::NotApplicable
                }
            }
        }
    }

    /// Whether a data-center (TPP, PD) point escapes the rule entirely —
    /// the strictest compliance target the paper's Oct-2023 DSE uses,
    /// since NAC-eligible devices "may not always be granted export
    /// licenses" (§4.3).
    #[must_use]
    pub fn is_unregulated_dc(&self, tpp: f64, pd: f64) -> bool {
        let probe = DeviceMetrics::new(
            "probe",
            tpp,
            0.0,
            if pd > 0.0 { tpp / pd } else { 0.0 },
            pd > 0.0,
            MarketSegment::DataCenter,
        );
        self.classify_as(&probe, MarketSegment::DataCenter) == Classification::NotApplicable
    }
}

impl Default for Acr2023 {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(name: &str, tpp: f64, area: f64) -> DeviceMetrics {
        DeviceMetrics::new(name, tpp, 600.0, area, true, MarketSegment::DataCenter)
    }

    fn consumer(name: &str, tpp: f64, area: f64) -> DeviceMetrics {
        DeviceMetrics::new(name, tpp, 32.0, area, true, MarketSegment::NonDataCenter)
    }

    #[test]
    fn paper_named_devices_classify_as_figure_1b() {
        let rule = Acr2023::published();
        // H100/H800: TPP 15824 — licence regardless of PD.
        assert_eq!(rule.classify(&dc("H100", 15824.0, 814.0)), Classification::LicenseRequired);
        // A800: TPP 4992 ≥ 4800 — now caught (§2.2).
        assert_eq!(rule.classify(&dc("A800", 4992.0, 826.0)), Classification::LicenseRequired);
        // MI210: TPP 2896, PD 3.76 — NAC (§2.2).
        let mi210 = dc("MI210", 2896.0, 2896.0 / 3.76);
        assert_eq!(rule.classify(&mi210), Classification::NacEligible);
        // RTX 4090 (consumer): TPP 5285 ≥ 4800 — NAC (§2.2).
        assert_eq!(rule.classify(&consumer("RTX 4090", 5285.0, 608.5)), Classification::NacEligible);
        // RTX 4090D: TPP 4708 < 4800 — unregulated (§2.2).
        assert_eq!(rule.classify(&consumer("RTX 4090D", 4708.0, 608.5)), Classification::NotApplicable);
        // H20: TPP 2368 < 2400 with PD ≈ 2.91 < 3.2 — designed to escape
        // the rule entirely (it shipped to sanctioned markets).
        assert_eq!(rule.classify(&dc("H20", 2368.0, 814.0)), Classification::NotApplicable);
    }

    #[test]
    fn dense_low_tpp_devices_hit_the_second_nac_clause() {
        let rule = Acr2023::published();
        // TPP 1800 on a tiny 400 mm² die: PD 4.5 ∈ [3.2, 5.92) => NAC.
        assert_eq!(rule.classify(&dc("dense", 1800.0, 400.0)), Classification::NacEligible);
        // Same TPP spread over 1200 mm²: PD 1.5 < 1.6 => unregulated.
        assert_eq!(rule.classify(&dc("sparse", 1800.0, 1200.0)), Classification::NotApplicable);
    }

    #[test]
    fn density_license_clause_requires_tpp_floor() {
        let rule = Acr2023::published();
        // PD 8 but TPP 1000 < 1600: no clause binds.
        assert_eq!(rule.classify(&dc("tiny", 1000.0, 125.0)), Classification::NotApplicable);
        // PD 8 with TPP 1600: licence.
        assert_eq!(rule.classify(&dc("dense1600", 1600.0, 200.0)), Classification::LicenseRequired);
    }

    #[test]
    fn planar_dies_have_no_density_clauses() {
        let rule = Acr2023::published();
        let planar =
            DeviceMetrics::new("planar", 3000.0, 600.0, 100.0, false, MarketSegment::DataCenter);
        // PD would be 30 on a FinFET die; planar escapes with TPP < 4800.
        assert_eq!(rule.classify(&planar), Classification::NotApplicable);
    }

    #[test]
    fn non_dc_ignores_density_entirely() {
        let rule = Acr2023::published();
        // Extremely dense consumer part, TPP < 4800: unregulated.
        assert_eq!(rule.classify(&consumer("dense", 4700.0, 100.0)), Classification::NotApplicable);
        // TPP over 4800: NAC, never a regular licence.
        assert_eq!(rule.classify(&consumer("big", 20000.0, 100.0)), Classification::NacEligible);
    }

    #[test]
    fn paper_area_floors_hold() {
        // §2.5: 2399 TPP escapes with area > 750 mm²; 4799 TPP needs
        // > 3000 mm²; 1600 TPP is NAC-free… below PD 5.92 only.
        let rule = Acr2023::published();
        assert!(rule.is_unregulated_dc(2399.0, 2399.0 / 751.0));
        assert!(!rule.is_unregulated_dc(2399.0, 2399.0 / 749.0));
        assert!(rule.is_unregulated_dc(4799.0, 4799.0 / 3001.0));
        assert!(!rule.is_unregulated_dc(4799.0, 4799.0 / 2999.0));
    }

    #[test]
    fn classify_as_supports_rebranding_counterfactuals() {
        let rule = Acr2023::published();
        // The RTX 4090 would require a licence if marketed as DC
        // (TPP 5285 ≥ 4800).
        let rtx4090 = consumer("RTX 4090", 5285.0, 608.5);
        assert_eq!(
            rule.classify_as(&rtx4090, MarketSegment::DataCenter),
            Classification::LicenseRequired
        );
        // The L40 (DC, TPP 2896, PD ≈ 4.77) is NAC as DC but free as
        // consumer — a "false data center" device (§5.2).
        let l40 = dc("L40", 2896.0, 608.5);
        assert_eq!(rule.classify(&l40), Classification::NacEligible);
        assert_eq!(
            rule.classify_as(&l40, MarketSegment::NonDataCenter),
            Classification::NotApplicable
        );
    }
}
