//! The January 2025 "AI diffusion" framework's quantity controls (§2.1).
//!
//! Beyond per-device rules, the proposed January 2025 framework capped the
//! *cumulative compute* (expressed in TPP) that may be exported to
//! non-sanctioned destinations without further licensing. This module
//! models that accounting: a destination holds a TPP allocation; exports
//! draw it down device by device.

use crate::metrics::DeviceMetrics;

/// A destination's cumulative TPP allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionQuota {
    /// Total TPP that may be shipped.
    pub tpp_allocation: f64,
}

impl DiffusionQuota {
    /// The framework's headline country allocation: about 790 million TPP
    /// through 2027 (≈ 50,000 H100-class devices).
    #[must_use]
    pub fn tier2_country() -> Self {
        DiffusionQuota { tpp_allocation: 790.0e6 }
    }

    /// Maximum units of a device this allocation covers.
    #[must_use]
    pub fn max_units(&self, device: &DeviceMetrics) -> u64 {
        if device.tpp().0 <= 0.0 {
            return u64::MAX;
        }
        (self.tpp_allocation / device.tpp().0).floor() as u64
    }
}

/// Running export ledger against a quota.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportLedger {
    quota: DiffusionQuota,
    consumed_tpp: f64,
    shipments: Vec<(String, u64)>,
}

impl ExportLedger {
    /// Open a ledger against `quota`.
    #[must_use]
    pub fn new(quota: DiffusionQuota) -> Self {
        ExportLedger { quota, consumed_tpp: 0.0, shipments: Vec::new() }
    }

    /// Remaining TPP headroom.
    #[must_use]
    pub fn remaining_tpp(&self) -> f64 {
        (self.quota.tpp_allocation - self.consumed_tpp).max(0.0)
    }

    /// Try to record a shipment of `units` devices; returns the number of
    /// units actually covered (possibly fewer than requested when the
    /// allocation runs out).
    pub fn ship(&mut self, device: &DeviceMetrics, units: u64) -> u64 {
        let per_unit = device.tpp().0.max(0.0);
        let covered = if per_unit == 0.0 {
            units
        } else {
            units.min((self.remaining_tpp() / per_unit).floor() as u64)
        };
        self.consumed_tpp += covered as f64 * per_unit;
        if covered > 0 {
            self.shipments.push((device.name().to_owned(), covered));
        }
        covered
    }

    /// Shipments recorded so far: `(device name, units)`.
    #[must_use]
    pub fn shipments(&self) -> &[(String, u64)] {
        &self.shipments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::MarketSegment;

    fn h100() -> DeviceMetrics {
        DeviceMetrics::new("H100", 15824.0, 900.0, 814.0, true, MarketSegment::DataCenter)
    }

    fn h20() -> DeviceMetrics {
        DeviceMetrics::new("H20", 2368.0, 900.0, 814.0, true, MarketSegment::DataCenter)
    }

    #[test]
    fn tier2_quota_covers_about_fifty_thousand_h100s() {
        let q = DiffusionQuota::tier2_country();
        let units = q.max_units(&h100());
        assert!(units > 45_000 && units < 55_000, "units = {units}");
        // Compute-capped devices stretch the same allocation ~6.7x.
        assert!(q.max_units(&h20()) > 6 * units);
    }

    #[test]
    fn ledger_enforces_the_cap() {
        let mut ledger = ExportLedger::new(DiffusionQuota { tpp_allocation: 100_000.0 });
        // 6 H100s fit (94,944 TPP); a 7th does not.
        assert_eq!(ledger.ship(&h100(), 7), 6);
        let after_h100 = ledger.remaining_tpp();
        assert!((after_h100 - (100_000.0 - 6.0 * 15_824.0)).abs() < 1e-6);
        // Top-up with smaller devices until exhaustion.
        let extra = ledger.ship(&h20(), 100);
        assert_eq!(extra, (after_h100 / 2368.0).floor() as u64);
        assert!(ledger.remaining_tpp() < 2368.0);
        assert_eq!(ledger.shipments().len(), 2);
        // Nothing more fits.
        assert_eq!(ledger.ship(&h100(), 1), 0);
    }

    #[test]
    fn zero_tpp_devices_are_unconstrained() {
        let q = DiffusionQuota { tpp_allocation: 10.0 };
        let legacy =
            DeviceMetrics::new("vga", 0.0, 1.0, 100.0, false, MarketSegment::NonDataCenter);
        assert_eq!(q.max_units(&legacy), u64::MAX);
    }
}
