//! The October 2022 Advanced Computing Rule (Table 1a).
//!
//! A regular export licence is required for devices that achieve an
//! aggregate bidirectional I/O transfer rate over 600 GB/s **and**
//! aggregate Total Processing Performance of 4800 or more. There is no
//! NAC tier and no market-segment distinction.

use crate::classification::Classification;
use crate::metrics::DeviceMetrics;

/// The October 2022 rule, parameterised so "what-if" thresholds can be
/// explored (§5's policy design studies).
///
/// # Example
///
/// ```
/// use acs_policy::{Acr2022, Classification, DeviceMetrics, MarketSegment};
///
/// let rule = Acr2022::published();
/// let h800 = DeviceMetrics::new("H800", 15824.0, 400.0, 814.0, true,
///     MarketSegment::DataCenter);
/// // The bandwidth cut alone escapes the 2022 rule.
/// assert_eq!(rule.classify(&h800), Classification::NotApplicable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acr2022 {
    /// TPP threshold (inclusive). Regulation value: 4800.
    pub tpp_threshold: f64,
    /// Aggregate bidirectional device bandwidth threshold in GB/s
    /// (inclusive). Regulation value: 600.
    pub device_bw_threshold_gb_s: f64,
}

impl Acr2022 {
    /// The thresholds as published in October 2022.
    #[must_use]
    pub fn published() -> Self {
        Acr2022 { tpp_threshold: 4800.0, device_bw_threshold_gb_s: 600.0 }
    }

    /// Classify a device.
    #[must_use]
    pub fn classify(&self, device: &DeviceMetrics) -> Classification {
        let over_tpp = device.tpp().0 >= self.tpp_threshold;
        let over_bw = device.device_bw_gb_s() >= self.device_bw_threshold_gb_s;
        if over_tpp && over_bw {
            Classification::LicenseRequired
        } else {
            Classification::NotApplicable
        }
    }

    /// Whether a (TPP, device bandwidth) point is unregulated — the
    /// boundary Figure 1a plots.
    #[must_use]
    pub fn is_compliant(&self, tpp: f64, device_bw_gb_s: f64) -> bool {
        tpp < self.tpp_threshold || device_bw_gb_s < self.device_bw_threshold_gb_s
    }
}

impl Default for Acr2022 {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::MarketSegment;

    fn dev(name: &str, tpp: f64, bw: f64) -> DeviceMetrics {
        DeviceMetrics::new(name, tpp, bw, 800.0, true, MarketSegment::DataCenter)
    }

    #[test]
    fn paper_named_devices_classify_as_figure_1a() {
        let rule = Acr2022::published();
        // Regulated flagships (§2.2).
        assert_eq!(rule.classify(&dev("H100", 15824.0, 900.0)), Classification::LicenseRequired);
        assert_eq!(rule.classify(&dev("A100", 4992.0, 600.0)), Classification::LicenseRequired);
        assert_eq!(rule.classify(&dev("MI250X", 6128.0, 800.0)), Classification::LicenseRequired);
        // Compliance-by-bandwidth-cut devices.
        assert_eq!(rule.classify(&dev("A800", 4992.0, 400.0)), Classification::NotApplicable);
        assert_eq!(rule.classify(&dev("H800", 15824.0, 400.0)), Classification::NotApplicable);
        // Compliance-by-TPP devices.
        assert_eq!(rule.classify(&dev("MI210", 2896.0, 300.0)), Classification::NotApplicable);
        assert_eq!(rule.classify(&dev("A30", 2640.0, 400.0)), Classification::NotApplicable);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let rule = Acr2022::published();
        assert_eq!(rule.classify(&dev("edge", 4800.0, 600.0)), Classification::LicenseRequired);
        assert_eq!(rule.classify(&dev("under-tpp", 4799.9, 600.0)), Classification::NotApplicable);
        assert_eq!(rule.classify(&dev("under-bw", 4800.0, 599.9)), Classification::NotApplicable);
    }

    #[test]
    fn compliance_boundary_matches_classifier() {
        let rule = Acr2022::published();
        for &(tpp, bw) in
            &[(4000.0, 900.0), (8000.0, 500.0), (4800.0, 600.0), (5000.0, 700.0)]
        {
            let compliant = rule.is_compliant(tpp, bw);
            let restricted = rule.classify(&dev("p", tpp, bw)).is_restricted();
            assert_eq!(compliant, !restricted, "tpp={tpp} bw={bw}");
        }
    }

    #[test]
    fn custom_thresholds_apply() {
        let strict = Acr2022 { tpp_threshold: 2000.0, device_bw_threshold_gb_s: 300.0 };
        assert_eq!(strict.classify(&dev("A30", 2640.0, 400.0)), Classification::LicenseRequired);
    }
}
