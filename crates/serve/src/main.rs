//! The `acs-serve` binary: run the query service, or drive one with the
//! built-in load generator.
//!
//! Serve mode (default):
//!
//! ```text
//! acs-serve [--addr 127.0.0.1:8737] [--workers 4] [--event-loop|--pool]
//! ```
//!
//! The bound address is printed as `listening on http://...` once the
//! socket is open. The process shuts down gracefully when stdin reaches
//! EOF or delivers a line reading `shutdown` — so a supervising script
//! can hold a pipe open and write one word to stop the service cleanly:
//!
//! ```text
//! mkfifo ctl && acs-serve < ctl & exec 3>ctl   # hold the pipe open
//! echo shutdown >&3                            # graceful stop
//! ```
//!
//! Loadgen mode:
//!
//! ```text
//! acs-serve --loadgen [--addr HOST:PORT] [--requests 200] \
//!           [--connections 4] [--pipeline 1] \
//!           [--mode unique|repeated|mixed|unique-screen|compare] \
//!           [--assert-ratio 10]
//! ```
//!
//! Without `--addr` an in-process server is started on an ephemeral
//! port. `--mode compare` runs a unique stream then a repeated stream
//! and reports the QPS ratio — the cache's speedup; `--assert-ratio N`
//! exits nonzero if that ratio falls below `N`.

use acs_serve::{run_loadgen, LoadMode, LoadgenConfig, LoadgenReport, ServeConfig, Server};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::ExitCode;

struct Args {
    loadgen: bool,
    addr: Option<String>,
    workers: usize,
    event_loop: bool,
    requests: usize,
    concurrency: usize,
    connections: usize,
    pipeline: usize,
    mode: String,
    assert_ratio: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        loadgen: false,
        addr: None,
        workers: 4,
        event_loop: true,
        requests: 200,
        concurrency: 4,
        connections: 0,
        pipeline: 1,
        mode: "repeated".to_owned(),
        assert_ratio: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--loadgen" => args.loadgen = true,
            "--addr" => args.addr = Some(value("--addr")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--event-loop" => args.event_loop = true,
            "--pool" => args.event_loop = false,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--pipeline" => {
                args.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--mode" => args.mode = value("--mode")?,
            "--assert-ratio" => {
                args.assert_ratio = Some(
                    value("--assert-ratio")?
                        .parse()
                        .map_err(|e| format!("--assert-ratio: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: acs-serve [--addr HOST:PORT] [--workers N] \
                     [--event-loop|--pool] | \
                     acs-serve --loadgen [--addr HOST:PORT] [--requests N] [--concurrency N] \
                     [--connections N] [--pipeline N] \
                     [--mode unique|repeated|mixed|unique-screen|compare] [--assert-ratio X]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn serve(args: &Args) -> Result<(), String> {
    let config = ServeConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned()),
        workers: args.workers,
        event_loop: args.event_loop,
        ..ServeConfig::default()
    };
    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    println!("acs-serve listening on http://{addr}");
    let handle = server.handle();

    // The signal pipe: EOF or a `shutdown` line on stdin stops the
    // service. This needs no signal-handling machinery and works the
    // same from a terminal (Ctrl-D), a fifo, or a supervising script.
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(l) if l.trim() == "shutdown" => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        eprintln!("acs-serve: shutdown requested, draining");
        handle.shutdown();
    });

    server.run();
    eprintln!("acs-serve: stopped");
    Ok(())
}

fn print_report(label: &str, r: &LoadgenReport) {
    println!(
        "{label}: {} requests ({} ok, {} failed) in {:.2}s  \
         qps={:.1}  p50={:.2}ms  p99={:.2}ms  mean={:.2}ms",
        r.requests, r.succeeded, r.failed, r.elapsed_s, r.qps, r.p50_ms, r.p99_ms, r.mean_ms,
    );
    for class in &r.per_class {
        println!(
            "{label}:   class {:<8} {} ok  p50={:.2}ms  p99={:.2}ms  mean={:.2}ms",
            class.class, class.count, class.p50_ms, class.p99_ms, class.mean_ms,
        );
    }
}

fn loadgen(args: &Args) -> Result<(), String> {
    // Target an existing server, or bring one up in-process.
    let (addr, local) = match &args.addr {
        Some(spec) => {
            let addr: SocketAddr =
                spec.parse().map_err(|e| format!("--addr {spec}: {e}"))?;
            (addr, None)
        }
        None => {
            let server = Server::bind(ServeConfig {
                event_loop: args.event_loop,
                ..ServeConfig::default()
            })
            .map_err(|e| e.to_string())?;
            let addr = server.local_addr();
            println!("loadgen: started in-process server on http://{addr}");
            (addr, Some(server.spawn()))
        }
    };

    let base = LoadgenConfig {
        requests: args.requests,
        concurrency: args.concurrency,
        connections: args.connections,
        pipeline: args.pipeline,
        ..LoadgenConfig::default()
    };
    let result = if args.mode == "compare" {
        // Unique first so the repeated stream cannot ride on its entries.
        let unique = run_loadgen(addr, &LoadgenConfig { mode: LoadMode::Unique, ..base.clone() })
            .map_err(|e| e.to_string())?;
        print_report("unique  ", &unique);
        let repeated =
            run_loadgen(addr, &LoadgenConfig { mode: LoadMode::Repeated, ..base.clone() })
                .map_err(|e| e.to_string())?;
        print_report("repeated", &repeated);
        let ratio = if unique.qps > 0.0 { repeated.qps / unique.qps } else { f64::INFINITY };
        println!("cache speedup: {ratio:.1}x (repeated vs unique QPS)");
        if unique.failed + repeated.failed > 0 {
            Err("loadgen saw failed requests".to_owned())
        } else if let Some(floor) = args.assert_ratio {
            if ratio < floor {
                Err(format!("cache speedup {ratio:.1}x below the required {floor}x"))
            } else {
                Ok(())
            }
        } else {
            Ok(())
        }
    } else {
        let mode = LoadMode::parse(&args.mode).map_err(|e| e.to_string())?;
        let report =
            run_loadgen(addr, &LoadgenConfig { mode, ..base }).map_err(|e| e.to_string())?;
        print_report(&args.mode, &report);
        if report.failed > 0 {
            Err("loadgen saw failed requests".to_owned())
        } else {
            Ok(())
        }
    };

    if let Some((handle, thread)) = local {
        handle.shutdown();
        let _ = thread.join();
    }
    result
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.loadgen { loadgen(&args) } else { serve(&args) };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("acs-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
