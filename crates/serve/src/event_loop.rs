//! The non-blocking serve tier: N shard workers, each owning an epoll
//! event loop, a private slice of the response caches, and a raw
//! front cache of byte-identical repeats.
//!
//! Connections are hashed to workers by a digest of their peer address,
//! so a client's keep-alive session stays on one worker and its repeated
//! queries hit that worker's cache lane without any cross-shard locking.
//! Each connection is a small state machine: bytes accumulate in an
//! input buffer, complete requests are peeled off by the incremental
//! parser ([`crate::http::parse_request_bytes`]) — several per readiness
//! event when the client pipelines — and responses are appended to an
//! output buffer drained on write-readiness, which keeps them in
//! arrival order by construction. Chunked `/v1/whatif` streams are
//! written into the same output buffer and drained the same way, so a
//! slow reader never blocks the worker.
//!
//! Admission control sheds by priority, not arrival order: GETs and
//! raw-front-cache hits always go through (they cost microseconds),
//! while expensive unique POST work beyond a per-poll-round budget is
//! turned away with `503` + `Retry-After` so cached traffic survives
//! overload.
//!
//! The blocking worker pool remains available behind
//! `ServeConfig { event_loop: false }` as the differential baseline.

use crate::chaos::{FaultPlan, FaultStream};
use crate::handlers::{self, AppState};
use crate::http::{self, HttpRequest, Parsed};
use crate::reactor::{
    EpollEvent, Poller, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::{ServeConfig, Shared};
use acs_cache::CacheLane;
use acs_errors::AcsError;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Token reserved for the acceptor's wake pipe.
const WAKE: u64 = u64::MAX;

/// Poll timeout: bounds how stale the deadline/idle sweeps can get and
/// how long shutdown takes to observe the stop flag without a wake.
const POLL_MS: i32 = 50;

/// Per-worker raw front-cache entry ceiling; at capacity the map is
/// cleared wholesale (the entries are cheap to rebuild from the
/// semantic caches underneath).
const RAW_CACHE_CAP: usize = 4096;

/// Backpressure high-water mark: while a connection has this much
/// response data buffered, further pipelined requests stay unparsed in
/// its input buffer until the client drains some of it.
const OUT_HIGH_WATER: usize = 4 << 20;

/// Stop reading from a connection whose input buffer is already this
/// large; level-triggered epoll re-delivers the readiness once the
/// parser has caught up.
const IN_HIGH_WATER: usize = 8 << 20;

/// FNV-1a over length-prefixed parts (so `("a","bc")` and `("ab","c")`
/// cannot collide structurally).
fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for part in parts {
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    h
}

/// Timing policy + shed budget, cloned from [`ServeConfig`].
#[derive(Clone)]
struct LoopPolicy {
    io_timeout: Duration,
    request_deadline: Duration,
    keepalive_idle: Duration,
    /// Expensive-request admissions per poll round; beyond it, unique
    /// POST work is shed with `Retry-After` while cheap traffic flows.
    expensive_budget: usize,
}

/// Run the event-loop tier on the calling thread until
/// [`crate::ServerHandle::shutdown`]. Returns `Err` only on *setup*
/// failure (no reactor, no wake pipes) before anything is served, so
/// the caller can fall back to the worker pool.
pub(crate) fn run(
    listener: &TcpListener,
    state: &Arc<AppState>,
    shared: &Arc<Shared>,
    config: &ServeConfig,
) -> io::Result<()> {
    let workers = config.workers.max(1);
    let policy = LoopPolicy {
        io_timeout: config.io_timeout,
        request_deadline: config.request_deadline,
        keepalive_idle: config.keepalive_idle,
        expensive_budget: config.queue_depth.max(1),
    };
    let chaos = config.chaos_seed.map(FaultPlan::gentle);
    let conn_seq = Arc::new(AtomicU64::new(0));

    // Build every worker's reactor and wake pipe up front: a failure
    // here leaves nothing running and the pool can take over.
    let mut setups = Vec::with_capacity(workers);
    for _ in 0..workers {
        let poller = Poller::new()?;
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        setups.push((poller, tx, rx));
    }

    let mut wakers = Vec::with_capacity(workers);
    let mut inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for (index, (poller, tx, rx)) in setups.into_iter().enumerate() {
        let inbox = Arc::new(Mutex::new(Vec::new()));
        inboxes.push(Arc::clone(&inbox));
        wakers.push(tx);
        let mut worker = Worker {
            poller,
            wake: rx,
            inbox,
            state: Arc::clone(state),
            shared: Arc::clone(shared),
            lane: CacheLane::new(index, workers),
            policy: policy.clone(),
            chaos: chaos.clone(),
            conn_seq: Arc::clone(&conn_seq),
            conns: Vec::new(),
            free: Vec::new(),
            raw: HashMap::new(),
            budget: policy.expensive_budget,
        };
        handles.push(std::thread::spawn(move || worker.run()));
    }

    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection, or a straggler: drop it
        }
        let _ = stream.set_nodelay(true);
        // Shard by peer-address digest: one client session, one worker,
        // one cache lane.
        let worker = (fnv1a(&[peer.to_string().as_bytes()]) as usize) % workers;
        inboxes[worker]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stream);
        // A full pipe already means a pending wake; losing this byte is
        // harmless (workers also drain their inbox every poll round).
        let _ = (&wakers[worker]).write(&[1]);
    }

    for waker in &wakers {
        let _ = (&*waker).write(&[1]);
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// A connection's transport: bare socket, or the chaos shim around one.
enum Wire {
    Plain(TcpStream),
    Chaos(FaultStream<TcpStream>),
}

impl Read for Wire {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Wire::Plain(s) => s.read(buf),
            Wire::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Wire {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Wire::Plain(s) => s.write(buf),
            Wire::Chaos(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Wire::Plain(s) => s.flush(),
            Wire::Chaos(s) => s.flush(),
        }
    }
}

/// One connection's state machine.
struct Conn {
    wire: Wire,
    fd: i32,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_at: usize,
    /// False once this session must end (Connection: close, protocol
    /// error, panic response): the connection closes when `outbuf`
    /// drains.
    keep_open: bool,
    /// Peer sent EOF; drain what's buffered, then close.
    eof: bool,
    /// Wall-clock bound on the partial request in `inbuf` (the
    /// slow-loris defence); armed while `inbuf` is non-empty.
    deadline: Option<Instant>,
    idle_since: Instant,
    /// Set while `outbuf` has undrained bytes; refreshed on every write
    /// that makes progress. Exceeding `io_timeout` without progress
    /// closes the connection (the non-blocking analogue of a socket
    /// write timeout).
    write_since: Option<Instant>,
    interest: u32,
    /// Chaos fault tally, reported to telemetry when the connection
    /// closes.
    tally: Option<Arc<AtomicU64>>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_at
    }
}

/// A cached `(status, body)` for one exact request byte-string.
struct RawEntry {
    method: String,
    path: String,
    body: String,
    status: u16,
    response: String,
}

struct Worker {
    poller: Poller,
    wake: UnixStream,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    state: Arc<AppState>,
    shared: Arc<Shared>,
    lane: CacheLane,
    policy: LoopPolicy,
    chaos: Option<FaultPlan>,
    conn_seq: Arc<AtomicU64>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    raw: HashMap<u64, RawEntry>,
    budget: usize,
}

impl Worker {
    fn run(&mut self) {
        if self.poller.add(self.wake.as_raw_fd(), EPOLLIN, WAKE).is_err() {
            return;
        }
        let mut events = [EpollEvent::default(); 128];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let n = self.poller.wait(&mut events, POLL_MS).unwrap_or(0);
            if n > 0 {
                self.state.record_reactor_events(n as u64);
            }
            // The shed budget is per poll round: a busy loop iterates
            // fast, so the budget only binds when one readiness burst
            // carries more unique work than a round can admit.
            self.budget = self.policy.expensive_budget;
            self.accept_pending();
            for event in &events[..n] {
                if event.data == WAKE {
                    self.drain_wake();
                } else {
                    self.handle_event(event.data as usize, event.events);
                }
            }
            self.sweep();
        }
        for index in 0..self.conns.len() {
            if let Some(conn) = self.conns[index].take() {
                self.close(conn);
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake.read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Install every connection the acceptor has routed to this worker.
    fn accept_pending(&mut self) {
        let streams: Vec<TcpStream> = {
            let mut inbox = self.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            inbox.drain(..).collect()
        };
        for stream in streams {
            self.install(stream);
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = stream.as_raw_fd();
        let (wire, tally) = match &self.chaos {
            None => (Wire::Plain(stream), None),
            Some(plan) => {
                // Each connection replays its own schedule: seed mixed
                // with a global ordinal via the SplitMix64 increment
                // (same derivation as the pool tier).
                let n = self.conn_seq.fetch_add(1, Ordering::Relaxed);
                let per_conn =
                    plan.reseeded(plan.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let tally = Arc::new(AtomicU64::new(0));
                (
                    Wire::Chaos(FaultStream::new(stream, per_conn).with_tally(Arc::clone(&tally))),
                    Some(tally),
                )
            }
        };
        let index = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.poller.add(fd, interest, index as u64).is_err() {
            self.free.push(index);
            return;
        }
        self.conns[index] = Some(Conn {
            wire,
            fd,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_at: 0,
            keep_open: true,
            eof: false,
            deadline: None,
            idle_since: Instant::now(),
            write_since: None,
            interest,
            tally,
        });
    }

    fn handle_event(&mut self, index: usize, mask: u32) {
        // Stale events for a slot already closed this round are possible;
        // ignore them.
        let Some(mut conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        let mut close = mask & (EPOLLERR | EPOLLHUP) != 0 && conn.pending_out() == 0;
        if !close && mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            close = self.read_and_process(&mut conn);
        }
        if !close && conn.pending_out() > 0 {
            close = drive_write(&mut conn);
        }
        if !close && conn.pending_out() == 0 && (!conn.keep_open || conn.eof) {
            close = true;
        }
        if close {
            self.close(conn);
            self.free.push(index);
        } else {
            self.update_interest(index, &mut conn);
            self.conns[index] = Some(conn);
        }
    }

    /// Drain the socket into the input buffer, peel off every complete
    /// request, dispatch each, and append the responses in order.
    /// Returns true when the connection should close immediately.
    fn read_and_process(&mut self, conn: &mut Conn) -> bool {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if conn.inbuf.len() >= IN_HIGH_WATER {
                break;
            }
            match conn.wire.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    conn.idle_since = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
        while conn.keep_open && !conn.inbuf.is_empty() && conn.pending_out() < OUT_HIGH_WATER {
            match http::parse_request_bytes(&conn.inbuf) {
                Parsed::NeedMore => break,
                Parsed::Invalid(e) => {
                    // The connection's framing state is unknown after a
                    // malformed request; answer and hang up.
                    let body = handlers::error_body(&e);
                    conn.outbuf.extend_from_slice(&http::response_bytes(
                        handlers::status_for(&e),
                        &body,
                        false,
                        &[],
                    ));
                    conn.keep_open = false;
                    conn.inbuf.clear();
                }
                Parsed::Complete { request, consumed, keep_alive } => {
                    conn.inbuf.drain(..consumed);
                    if !self.dispatch(&request, keep_alive, &mut conn.outbuf) {
                        conn.keep_open = false;
                        conn.inbuf.clear();
                    }
                }
            }
        }
        if conn.inbuf.is_empty() {
            conn.deadline = None;
        } else if conn.deadline.is_none() {
            // A request's first bytes are buffered: its wall clock
            // starts (the slow-loris defence).
            conn.deadline = Some(Instant::now() + self.policy.request_deadline);
        }
        // EOF with half a request buffered: nothing further can arrive,
        // so once the buffered responses drain the session is over.
        conn.eof && conn.pending_out() == 0
    }

    /// Answer one parsed request into `outbuf`. Returns whether the
    /// session may continue (`false` after `Connection: close` or a
    /// panic response).
    fn dispatch(&mut self, request: &HttpRequest, keep_alive: bool, outbuf: &mut Vec<u8>) -> bool {
        let t0 = Instant::now();
        let path = request.path.split('?').next().unwrap_or("").to_owned();
        let expensive = request.method == "POST";
        let raw_key = (expensive && matches!(path.as_str(), "/v1/screen" | "/v1/simulate"))
            .then(|| {
                fnv1a(&[request.method.as_bytes(), path.as_bytes(), request.body.as_bytes()])
            });
        if let Some(key) = raw_key {
            if let Some(entry) = self.raw.get(&key) {
                if entry.method == request.method
                    && entry.path == path
                    && entry.body == request.body
                {
                    outbuf.extend_from_slice(&http::response_bytes(
                        entry.status,
                        &entry.response,
                        keep_alive,
                        &[],
                    ));
                    self.state.record_raw_hit(
                        handlers::endpoint_index(&path),
                        t0.elapsed().as_secs_f64() * 1e6,
                    );
                    return keep_alive;
                }
            }
        }
        if expensive {
            if self.budget == 0 {
                // Priority shed: unique expensive work is turned away
                // with backoff guidance while cheap cached traffic keeps
                // flowing — the inverse of a FIFO 503.
                let e = AcsError::Overloaded {
                    reason: "expensive request shed under load; retry with backoff".to_owned(),
                };
                outbuf.extend_from_slice(&http::response_bytes(
                    handlers::status_for(&e),
                    &handlers::error_body(&e),
                    keep_alive,
                    &[("Retry-After", "1")],
                ));
                self.state.record_shed_expensive();
                return keep_alive;
            }
            self.budget -= 1;
        }
        // A panic anywhere in parsing or handling must not kill the
        // worker: contain the unwind and answer with a taxonomy-tagged
        // 500, exactly like the pool tier.
        let state = Arc::clone(&self.state);
        let lane = self.lane;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if request.method == "POST" && path == "/v1/whatif" {
                // Streamed: the handler frames the chunked response
                // itself, straight into the output buffer; the drain to
                // the socket is driven by write-readiness.
                match handlers::handle_whatif_streaming_lane(
                    &state,
                    request,
                    outbuf,
                    keep_alive,
                    Some(lane),
                ) {
                    Ok(_wire_ok) => None,
                    Err((status, body)) => Some((status, body)),
                }
            } else {
                Some(handlers::handle_lane(&state, request, Some(lane)))
            }
        }));
        match outcome {
            Ok(Some((status, body))) => {
                if let (Some(key), 200) = (raw_key, status) {
                    if self.raw.len() >= RAW_CACHE_CAP {
                        self.raw.clear();
                    }
                    self.raw.insert(
                        key,
                        RawEntry {
                            method: request.method.clone(),
                            path,
                            body: request.body.clone(),
                            status,
                            response: body.clone(),
                        },
                    );
                }
                outbuf.extend_from_slice(&http::response_bytes(status, &body, keep_alive, &[]));
                keep_alive
            }
            Ok(None) => keep_alive,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                let e = AcsError::EvaluationPanic {
                    design: "request-handler".to_owned(),
                    message,
                };
                outbuf.extend_from_slice(&http::response_bytes(
                    handlers::status_for(&e),
                    &handlers::error_body(&e),
                    false,
                    &[],
                ));
                false
            }
        }
    }

    fn update_interest(&mut self, index: usize, conn: &mut Conn) {
        let mut want = EPOLLIN | EPOLLRDHUP;
        if conn.pending_out() > 0 {
            want |= EPOLLOUT;
            if conn.write_since.is_none() {
                conn.write_since = Some(Instant::now());
            }
        }
        if want != conn.interest && self.poller.modify(conn.fd, want, index as u64).is_ok() {
            conn.interest = want;
        }
    }

    /// Close connections that ran out a timer: the request read
    /// deadline (counted as a shed), a stalled write (`io_timeout`
    /// without progress), or the keep-alive idle budget (silent reap).
    fn sweep(&mut self) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            let Some(conn) = &self.conns[index] else { continue };
            let expired = if conn.deadline.is_some_and(|d| now >= d) {
                self.state.record_deadline_close();
                true
            } else if conn.pending_out() > 0 {
                conn.write_since
                    .is_some_and(|t| now.duration_since(t) > self.policy.io_timeout)
            } else {
                conn.inbuf.is_empty()
                    && now.duration_since(conn.idle_since) > self.policy.keepalive_idle
            };
            if expired {
                if let Some(conn) = self.conns[index].take() {
                    self.close(conn);
                    self.free.push(index);
                }
            }
        }
    }

    fn close(&self, conn: Conn) {
        let _ = self.poller.delete(conn.fd);
        if let Some(tally) = &conn.tally {
            self.state.record_chaos(tally.load(Ordering::Relaxed));
        }
        // Dropping `conn.wire` closes the socket.
    }
}

/// Write as much buffered response data as the socket accepts. Returns
/// true when the connection should close (peer gone or hard error).
fn drive_write(conn: &mut Conn) -> bool {
    loop {
        if conn.out_at >= conn.outbuf.len() {
            conn.outbuf.clear();
            conn.out_at = 0;
            conn.write_since = None;
            return false;
        }
        match conn.wire.write(&conn.outbuf[conn.out_at..]) {
            Ok(0) => return true,
            Ok(n) => {
                conn.out_at += n;
                conn.write_since = Some(Instant::now());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.write_since.is_none() {
                    conn.write_since = Some(Instant::now());
                }
                return false;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
}
