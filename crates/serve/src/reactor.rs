//! A zero-dependency `epoll` reactor: readiness notification via direct
//! Linux syscalls, no `libc`, no `mio`.
//!
//! The whole workspace is std-only, and std exposes no readiness API —
//! so this module makes the four syscalls the event loop needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_pwait`, `close`) through
//! inline assembly, the same way std's own `syscall!` shims do. Only
//! the Linux kernel ABI is depended on, which is stable by contract.
//!
//! Supported targets are gated with `cfg(reactor)`-style conditions on
//! `target_os = "linux"` plus `target_arch` x86_64/aarch64; elsewhere
//! [`Poller::new`] returns `Unsupported` and the serve tier falls back
//! to the blocking worker pool (`ServeConfig::event_loop = false`).
//!
//! Registration uses the classic readiness model (level-triggered for
//! writes is avoided by only subscribing to `EPOLLOUT` while a
//! connection has buffered output): each connection is registered with
//! a `u64` token the caller chooses, and [`Poller::wait`] returns
//! `(token, readiness)` pairs.

use std::io;

/// Readiness: the socket has bytes to read (or a peer hangup to observe).
pub const EPOLLIN: u32 = 0x1;
/// Readiness: the socket can accept more written bytes.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition on the fd (always reported, no need to subscribe).
pub const EPOLLERR: u32 = 0x8;
/// Peer hung up (always reported, no need to subscribe).
pub const EPOLLHUP: u32 = 0x10;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x8_0000;

/// The kernel's `struct epoll_event`. On x86_64 the kernel declares it
/// packed (no padding between the 32-bit mask and the 64-bit data);
/// elsewhere it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! x86_64 syscall ABI: number in `rax`, args in `rdi`/`rsi`/`rdx`/
    //! `r10`, return in `rax`; the `syscall` instruction clobbers `rcx`
    //! and `r11`.
    pub const SYS_CLOSE: usize = 3;
    pub const SYS_EPOLL_CTL: usize = 233;
    pub const SYS_EPOLL_PWAIT: usize = 281;
    pub const SYS_EPOLL_CREATE1: usize = 291;

    pub unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    pub unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod sys {
    //! aarch64 syscall ABI: number in `x8`, args in `x0`-`x5`, return in
    //! `x0`, entered via `svc 0`.
    pub const SYS_EPOLL_CREATE1: usize = 20;
    pub const SYS_EPOLL_CTL: usize = 21;
    pub const SYS_EPOLL_PWAIT: usize = 22;
    pub const SYS_CLOSE: usize = 57;

    pub unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        unsafe { syscall6(nr, a, b, c, d, 0, 0) }
    }

    pub unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }
}

/// Whether this build target has a working reactor. The serve tier
/// consults this to decide whether `event_loop: true` is honourable or
/// must silently fall back to the worker pool.
#[must_use]
pub fn supported() -> bool {
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
}

/// Turn a raw syscall return into `Ok(value)` or an `io::Error` built
/// from the `-errno` encoding.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn check(ret: isize) -> io::Result<isize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

/// An `epoll` instance: register fds with tokens, wait for readiness.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
impl Poller {
    /// A fresh `epoll` instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_create1` errno as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        let ret = unsafe {
            sys::syscall4(sys::SYS_EPOLL_CREATE1, EPOLL_CLOEXEC as usize, 0, 0, 0)
        };
        check(ret).map(|fd| Poller { epfd: fd as i32 })
    }

    fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let event = EpollEvent { events: interest, data: token };
        let ptr = if op == EPOLL_CTL_DEL { 0 } else { std::ptr::from_ref(&event) as usize };
        let ret = unsafe {
            sys::syscall4(sys::SYS_EPOLL_CTL, self.epfd as usize, op as usize, fd as usize, ptr)
        };
        check(ret).map(|_| ())
    }

    /// Register `fd` for `interest`, delivering `token` on readiness.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` errno as an [`io::Error`].
    pub fn add(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set for an already registered `fd`.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` errno as an [`io::Error`].
    pub fn modify(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd deregisters it implicitly).
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_ctl` errno as an [`io::Error`], except
    /// `ENOENT`/`EBADF`, which are swallowed: the common teardown races.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, 0) {
            Err(e) if matches!(e.raw_os_error(), Some(2 /* ENOENT */) | Some(9 /* EBADF */)) => {
                Ok(())
            }
            other => other,
        }
    }

    /// Block until readiness or `timeout_ms` (-1 = forever), filling
    /// `events` and returning how many entries are valid. `EINTR` is
    /// reported as zero events, not an error — the loop just re-polls.
    ///
    /// # Errors
    ///
    /// The kernel's `epoll_pwait` errno as an [`io::Error`].
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let ret = unsafe {
            sys::syscall6(
                sys::SYS_EPOLL_PWAIT,
                self.epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // sigmask: NULL — signal handling stays with std
                8, // sigsetsize expected by the kernel even for NULL
            )
        };
        match check(ret) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.raw_os_error() == Some(4 /* EINTR */) => Ok(0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            let _ = sys::syscall4(sys::SYS_CLOSE, self.epfd as usize, 0, 0, 0);
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
impl Poller {
    /// Stub on unsupported targets: always `Unsupported`, so the serve
    /// tier falls back to the worker pool.
    ///
    /// # Errors
    ///
    /// Always `io::ErrorKind::Unsupported`.
    pub fn new() -> io::Result<Self> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no epoll reactor on this target"))
    }

    #[allow(clippy::missing_errors_doc, clippy::unused_self)]
    pub fn add(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    #[allow(clippy::missing_errors_doc, clippy::unused_self)]
    pub fn modify(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    #[allow(clippy::missing_errors_doc, clippy::unused_self)]
    pub fn delete(&self, _fd: i32) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    #[allow(clippy::missing_errors_doc, clippy::unused_self)]
    pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

#[cfg(test)]
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_pipe_end_is_reported_with_its_token() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(rx.as_raw_fd(), EPOLLIN, 0xfeed).unwrap();

        // Nothing buffered yet: a short wait times out empty.
        let mut events = [EpollEvent::default(); 8];
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, mask) = (events[0].data, events[0].events);
        assert_eq!(token, 0xfeed);
        assert_ne!(mask & EPOLLIN, 0);
    }

    #[test]
    fn modify_switches_interest_and_delete_unregisters() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        poller.add(tx.as_raw_fd(), EPOLLIN, 1).unwrap();
        // An idle socket with write interest is immediately writable.
        poller.modify(tx.as_raw_fd(), EPOLLIN | EPOLLOUT, 2).unwrap();
        let mut events = [EpollEvent::default(); 8];
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, mask) = (events[0].data, events[0].events);
        assert_eq!(token, 2);
        assert_ne!(mask & EPOLLOUT, 0);
        poller.delete(tx.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        // Deleting twice (or after close) is tolerated.
        poller.delete(tx.as_raw_fd()).unwrap();
        drop(rx);
    }

    #[test]
    fn hangup_is_always_delivered() {
        let poller = Poller::new().unwrap();
        let (tx, rx) = UnixStream::pair().unwrap();
        poller.add(rx.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        drop(tx);
        let mut events = [EpollEvent::default(); 8];
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & (EPOLLHUP | EPOLLRDHUP | EPOLLIN), 0);
    }

    #[test]
    fn zero_capacity_event_buffers_are_a_no_op() {
        let poller = Poller::new().unwrap();
        assert_eq!(poller.wait(&mut [], 0).unwrap(), 0);
    }

    #[test]
    fn the_reactor_reports_support_on_this_target() {
        assert!(supported());
    }
}
