//! A minimal HTTP/1.1 wire layer over `std::net`, shared by the server,
//! the load generator, and the examples.
//!
//! Scope is deliberately narrow — exactly what the service needs and
//! nothing more: `Content-Length`-framed bodies, chunked
//! transfer-encoding for the one streaming endpoint (`/v1/whatif`
//! responses, written incrementally by [`ChunkedWriter`] and decoded
//! transparently by [`HttpClient`]), no TLS. Connections follow HTTP/1.1
//! persistence semantics: requests default to keep-alive unless the
//! client sends `Connection: close` (HTTP/1.0 defaults to close unless
//! it asks for `keep-alive`), so the load generator and the examples
//! reuse one socket per thread instead of paying a TCP handshake per
//! request ([`HttpClient`]). Framing violations surface as
//! [`AcsError::Protocol`] so the handler layer can map them to a 400
//! with the standard error envelope.

use crate::chaos::{FaultPlan, FaultStream};
use acs_errors::AcsError;
use acs_llm::rng::SplitMix64;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Maximum number of request headers.
const MAX_HEADERS: usize = 100;

/// A parsed request: method, percent-encoded path, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query, still encoded).
    pub path: String,
    /// Request body (empty when no `Content-Length`).
    pub body: String,
}

fn protocol(reason: impl Into<String>) -> AcsError {
    AcsError::Protocol { reason: reason.into() }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, AcsError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => return Err(protocol(format!("connection ended mid-line: {e}"))),
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > MAX_LINE_BYTES {
            return Err(protocol("header line exceeds 8 KiB"));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| protocol("header line is not UTF-8"))
}

/// Whether a `Connection` header value (comma-separated tokens) asks to
/// keep the connection open, given the version's default.
fn wants_keep_alive(connection: Option<&str>, default: bool) -> bool {
    match connection {
        None => default,
        Some(value) => {
            let mut keep = default;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return false;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
            keep
        }
    }
}

/// Read and frame one request from a buffered connection, returning the
/// request and whether the client wants the connection kept open
/// afterwards (HTTP/1.1 defaults to keep-alive unless it sends
/// `Connection: close`; HTTP/1.0 defaults to close unless it sends
/// `Connection: keep-alive`).
///
/// The reader must persist across requests on the same connection — a
/// `BufReader` may hold read-ahead bytes of the next pipelined request,
/// so constructing a fresh one per request would drop them.
///
/// # Errors
///
/// [`AcsError::Protocol`] on malformed request lines, non-UTF-8 headers
/// or bodies, oversized lines/bodies/header counts, or a connection that
/// closes mid-message.
pub fn read_request(reader: &mut impl BufRead) -> Result<(HttpRequest, bool), AcsError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| protocol("empty request line"))?.to_owned();
    let path = parts.next().ok_or_else(|| protocol("request line missing target"))?.to_owned();
    let version = parts.next().ok_or_else(|| protocol("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol(format!("unsupported protocol version {version}")));
    }
    let keep_alive_default = version != "HTTP/1.0";

    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(protocol("too many headers"));
        }
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(protocol(format!("malformed header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            if content_length.is_some() {
                return Err(protocol("duplicate Content-Length header"));
            }
            let length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| protocol(format!("unparseable Content-Length {value:?}")))?;
            if length > MAX_BODY_BYTES {
                return Err(protocol(format!(
                    "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            content_length = Some(length);
        } else if name.trim().eq_ignore_ascii_case("connection") {
            connection = Some(value.trim().to_owned());
        }
    }
    let keep_alive = wants_keep_alive(connection.as_deref(), keep_alive_default);

    let mut body = vec![0u8; content_length.unwrap_or(0)];
    reader
        .read_exact(&mut body)
        .map_err(|e| protocol(format!("connection ended mid-body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| protocol("request body is not UTF-8"))?;
    Ok((HttpRequest { method, path, body }, keep_alive))
}

/// Result of incrementally parsing one request from a byte buffer
/// ([`parse_request_bytes`]).
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request; read more bytes
    /// and try again.
    NeedMore,
    /// One complete request occupying the first `consumed` bytes of the
    /// buffer.
    Complete {
        /// The framed request.
        request: HttpRequest,
        /// Bytes of the buffer this request consumed (drain before the
        /// next parse).
        consumed: usize,
        /// Whether the client wants the connection kept open afterwards.
        keep_alive: bool,
    },
    /// The buffer prefix can never become a valid request.
    Invalid(AcsError),
}

/// Pull one complete line (up to `\n`, `\r` stripped) out of `buf`
/// starting at `at`. `Ok(None)` means the line is still incomplete.
/// Limits and error strings mirror [`read_line`] exactly so the two
/// parsers reject identical wire bytes with identical messages.
fn take_line(buf: &[u8], at: usize) -> Result<Option<(String, usize)>, AcsError> {
    let rest = &buf[at..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(nl) => {
            if nl > MAX_LINE_BYTES {
                return Err(protocol("header line exceeds 8 KiB"));
            }
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let text =
                std::str::from_utf8(line).map_err(|_| protocol("header line is not UTF-8"))?;
            Ok(Some((text.to_owned(), at + nl + 1)))
        }
        None if rest.len() > MAX_LINE_BYTES => Err(protocol("header line exceeds 8 KiB")),
        None => Ok(None),
    }
}

/// Incrementally frame one request from an in-memory buffer — the
/// non-blocking twin of [`read_request`], driven by readiness events
/// instead of blocking reads. The event-loop connection state machine
/// appends whatever bytes the socket had, calls this, and either waits
/// for more ([`Parsed::NeedMore`]), dispatches and drains
/// ([`Parsed::Complete`]), or answers 400 and closes
/// ([`Parsed::Invalid`]).
///
/// Framing rules, limits, and error strings are byte-identical to
/// [`read_request`] so both serve tiers reject the same wire bytes with
/// the same error envelopes (the `event_loop_vs_pool` differential arm
/// and the fuzz harness both assert this).
#[must_use]
pub fn parse_request_bytes(buf: &[u8]) -> Parsed {
    fn parse(buf: &[u8]) -> Result<Option<(HttpRequest, usize, bool)>, AcsError> {
        let Some((request_line, mut at)) = take_line(buf, 0)? else {
            return Ok(None);
        };
        let mut parts = request_line.split_whitespace();
        let method = parts.next().ok_or_else(|| protocol("empty request line"))?.to_owned();
        let path =
            parts.next().ok_or_else(|| protocol("request line missing target"))?.to_owned();
        let version = parts.next().ok_or_else(|| protocol("request line missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(protocol(format!("unsupported protocol version {version}")));
        }
        let keep_alive_default = version != "HTTP/1.0";

        let mut content_length: Option<usize> = None;
        let mut connection: Option<String> = None;
        for i in 0.. {
            if i >= MAX_HEADERS {
                return Err(protocol("too many headers"));
            }
            let Some((line, next)) = take_line(buf, at)? else {
                return Ok(None);
            };
            at = next;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(protocol(format!("malformed header line {line:?}")));
            };
            if name.trim().eq_ignore_ascii_case("content-length") {
                if content_length.is_some() {
                    return Err(protocol("duplicate Content-Length header"));
                }
                let length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| protocol(format!("unparseable Content-Length {value:?}")))?;
                if length > MAX_BODY_BYTES {
                    return Err(protocol(format!(
                        "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                    )));
                }
                content_length = Some(length);
            } else if name.trim().eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_owned());
            }
        }
        let keep_alive = wants_keep_alive(connection.as_deref(), keep_alive_default);

        let length = content_length.unwrap_or(0);
        let Some(raw) = buf.get(at..at + length) else {
            return Ok(None);
        };
        let body = std::str::from_utf8(raw)
            .map_err(|_| protocol("request body is not UTF-8"))?
            .to_owned();
        Ok(Some((HttpRequest { method, path, body }, at + length, keep_alive)))
    }
    match parse(buf) {
        Ok(None) => Parsed::NeedMore,
        Ok(Some((request, consumed, keep_alive))) => {
            Parsed::Complete { request, consumed, keep_alive }
        }
        Err(e) => Parsed::Invalid(e),
    }
}

/// Canonical reason phrase for the statuses the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one `Connection: close` JSON response. I/O errors are returned
/// so callers can count them, but by this point the client may be gone —
/// treat failures as diagnostics, not faults.
///
/// # Errors
///
/// [`AcsError::Io`] when the socket write fails.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> Result<(), AcsError> {
    write_response_with(stream, status, body, false)
}

/// Write one JSON response, announcing whether the server will keep the
/// connection open (`Connection: keep-alive`) or close it afterwards
/// (`Connection: close`). The caller owns actually closing or reusing
/// the socket to match. Generic over the stream so the connection loop
/// can answer through a deadline- or fault-wrapped socket.
///
/// # Errors
///
/// [`AcsError::Io`] when the socket write fails.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> Result<(), AcsError> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason_phrase(status),
        body.len(),
    );
    let io_err = |e: std::io::Error| AcsError::Io {
        path: "tcp-response".to_owned(),
        reason: e.to_string(),
    };
    stream.write_all(head.as_bytes()).map_err(io_err)?;
    stream.write_all(body.as_bytes()).map_err(io_err)?;
    stream.flush().map_err(io_err)
}

/// Serialise one JSON response into a byte vector — the event-loop tier
/// appends this to a connection's output buffer instead of writing to
/// the socket inline. The head layout matches [`write_response_with`]
/// byte for byte (the differential arm compares tiers on the wire);
/// `extra` headers (e.g. `Retry-After` on a priority shed) are spliced
/// in before the blank line.
#[must_use]
pub fn response_bytes(
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason_phrase(status),
        body.len(),
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// An incremental `Transfer-Encoding: chunked` response writer: the
/// head goes out with the first chunk (so a pre-stream failure can
/// still be answered with a plain framed error), each chunk is one
/// `size-hex CRLF data CRLF` frame, and [`ChunkedWriter::finish`] sends
/// the zero-length terminator. The server streams one `/v1/whatif`
/// record per chunk through this.
#[derive(Debug)]
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
    keep_alive: bool,
    head_sent: bool,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// A writer over `stream`; nothing is written until the first chunk.
    pub fn new(stream: &'a mut W, keep_alive: bool) -> Self {
        ChunkedWriter { stream, keep_alive, head_sent: false }
    }

    /// Whether the response head has already gone out — past this point
    /// the response cannot be re-framed as a plain error.
    #[must_use]
    pub fn head_sent(&self) -> bool {
        self.head_sent
    }

    fn io_err(e: &std::io::Error) -> AcsError {
        AcsError::Io { path: "tcp-response".to_owned(), reason: e.to_string() }
    }

    fn send_head(&mut self) -> Result<(), AcsError> {
        let connection = if self.keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n",
        );
        self.stream.write_all(head.as_bytes()).map_err(|e| Self::io_err(&e))?;
        self.head_sent = true;
        Ok(())
    }

    /// Write one chunk (sending the head first if this is the first),
    /// then flush so the record reaches the client now, not when the
    /// stream ends.
    ///
    /// # Errors
    ///
    /// [`AcsError::Io`] when the socket write fails.
    pub fn write_chunk(&mut self, data: &str) -> Result<(), AcsError> {
        if !self.head_sent {
            self.send_head()?;
        }
        if data.is_empty() {
            return Ok(()); // a zero-length chunk would terminate the stream
        }
        let frame = format!("{:x}\r\n{data}\r\n", data.len());
        self.stream.write_all(frame.as_bytes()).map_err(|e| Self::io_err(&e))?;
        self.stream.flush().map_err(|e| Self::io_err(&e))
    }

    /// Terminate the stream with the zero-length chunk (sending the head
    /// first for a zero-chunk response).
    ///
    /// # Errors
    ///
    /// [`AcsError::Io`] when the socket write fails.
    pub fn finish(mut self) -> Result<(), AcsError> {
        if !self.head_sent {
            self.send_head()?;
        }
        self.stream.write_all(b"0\r\n\r\n").map_err(|e| Self::io_err(&e))?;
        self.stream.flush().map_err(|e| Self::io_err(&e))
    }
}

/// One-shot HTTP client: connect, send `method path` with `body`, return
/// `(status, response body)`. Used by the load generator, the CI smoke
/// test, and the examples; kept symmetric with the server so both ends
/// exercise the same framing rules.
///
/// # Errors
///
/// [`AcsError::Io`] on connect/read/write failures and
/// [`AcsError::Protocol`] on an unparsable status line.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), AcsError> {
    let io_err = |e: std::io::Error| AcsError::Io { path: addr.to_string(), reason: e.to_string() };
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(io_err)?;
    stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
    stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).map_err(io_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io_err)?;

    let status = response
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| response.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| protocol(format!("unparsable status line in {:?}", response.lines().next())))?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, b)| b).to_owned();
    Ok((status, body))
}

/// Largest accepted response body on the client side, in bytes.
const MAX_RESPONSE_BYTES: usize = 16 << 20;

/// Decode a `Transfer-Encoding: chunked` body: `size-hex CRLF data
/// CRLF` frames until the zero-length terminator, then any trailer
/// lines up to the blank line. The concatenated chunk data is the body.
fn read_chunked_body(reader: &mut impl BufRead) -> Result<String, AcsError> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader)?;
        // Chunk extensions (`size;ext=val`) are legal; we ignore them.
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| protocol(format!("unparseable chunk size {size_line:?}")))?;
        if size == 0 {
            break;
        }
        if body.len() + size > MAX_RESPONSE_BYTES {
            return Err(protocol(format!(
                "chunked response exceeds {MAX_RESPONSE_BYTES} bytes"
            )));
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| protocol(format!("connection ended mid-chunk: {e}")))?;
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|e| protocol(format!("connection ended after chunk: {e}")))?;
        if &crlf != b"\r\n" {
            return Err(protocol("chunk data not terminated by CRLF"));
        }
    }
    // Trailer section: header lines until the blank line.
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(protocol("too many chunked-trailer lines"));
        }
        if read_line(reader)?.is_empty() {
            break;
        }
    }
    String::from_utf8(body).map_err(|_| protocol("chunked response body is not UTF-8"))
}

/// Read one framed response from a persistent connection: `(status,
/// body, server keeps the connection open)`. Framing is
/// `Content-Length` or `Transfer-Encoding: chunked` (the streaming
/// `/v1/whatif` endpoint); a response with neither is read to EOF and
/// marks the connection closed.
fn read_framed_response(reader: &mut impl BufRead) -> Result<(u16, String, bool), AcsError> {
    let status_line = read_line(reader)?;
    let status = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| protocol(format!("unparsable status line {status_line:?}")))?;
    let keep_alive_default = !status_line.starts_with("HTTP/1.0 ");
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut connection: Option<String> = None;
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(protocol("too many response headers"));
        }
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(protocol(format!("malformed response header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| protocol(format!("unparseable Content-Length {value:?}")))?;
            if length > MAX_RESPONSE_BYTES {
                return Err(protocol(format!("response of {length} bytes is too large")));
            }
            content_length = Some(length);
        } else if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            if !value.trim().eq_ignore_ascii_case("chunked") {
                return Err(protocol(format!("unsupported transfer encoding {value:?}")));
            }
            chunked = true;
        } else if name.trim().eq_ignore_ascii_case("connection") {
            connection = Some(value.trim().to_owned());
        }
    }
    if chunked {
        // Chunked framing wins over any Content-Length (RFC 9112 §6.3).
        let body = read_chunked_body(reader)?;
        let keep = wants_keep_alive(connection.as_deref(), keep_alive_default);
        return Ok((status, body, keep));
    }
    match content_length {
        Some(length) => {
            let mut body = vec![0u8; length];
            reader
                .read_exact(&mut body)
                .map_err(|e| protocol(format!("connection ended mid-response: {e}")))?;
            let body =
                String::from_utf8(body).map_err(|_| protocol("response body is not UTF-8"))?;
            let keep = wants_keep_alive(connection.as_deref(), keep_alive_default);
            Ok((status, body, keep))
        }
        None => {
            // Unframed legacy response: the connection is the frame.
            let mut body = String::new();
            reader
                .read_to_string(&mut body)
                .map_err(|e| protocol(format!("connection ended mid-response: {e}")))?;
            Ok((status, body, false))
        }
    }
}

/// Transport tuning for [`HttpClient`]: explicit connect/read/write
/// timeouts and a bounded retry schedule with jittered exponential
/// backoff. The service's endpoints are pure queries, so replaying a
/// request after a transport failure is always safe; retrying distinguishes
/// a transient fault (stale keep-alive socket, torn write, brief stall)
/// from a dead server without letting a dead server consume unbounded
/// attempts.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Budget for `TcpStream::connect_timeout` on each dial.
    pub connect_timeout: Duration,
    /// Per-operation socket read timeout.
    pub read_timeout: Duration,
    /// Per-operation socket write timeout.
    pub write_timeout: Duration,
    /// Additional fresh-dial attempts after the first fails (0 disables
    /// retries; stale keep-alive redials are free and not counted).
    pub retries: u32,
    /// Backoff before retry `k` is `backoff_base * 2^k` plus a uniform
    /// jitter in `[0, backoff_base)`, capped at [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the jitter schedule (deterministic per client).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
            jitter_seed: 0xacc5_0ff5_9e37_79b9,
        }
    }
}

impl ClientConfig {
    /// A config with every timeout set to `timeout` and default retry
    /// behaviour — the shape [`HttpClient::new`] builds.
    #[must_use]
    pub fn uniform(timeout: Duration) -> Self {
        ClientConfig {
            connect_timeout: timeout,
            read_timeout: timeout,
            write_timeout: timeout,
            ..ClientConfig::default()
        }
    }
}

/// The client's wire: a plain socket, or one wrapped in the chaos shim.
#[derive(Debug)]
enum ClientStream {
    Plain(TcpStream),
    Fault(FaultStream<TcpStream>),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Plain(s) => s.read(buf),
            ClientStream::Fault(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Plain(s) => s.write(buf),
            ClientStream::Fault(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Plain(s) => s.flush(),
            ClientStream::Fault(s) => s.flush(),
        }
    }
}

/// A persistent HTTP/1.1 client: sends `Connection: keep-alive` and
/// reuses one socket across sequential requests, falling back to a
/// fresh dial when the server closed the idle connection (a stale
/// keep-alive redial is free). Fresh-dial failures are retried a bounded
/// number of times with jittered exponential backoff
/// ([`ClientConfig::retries`]), which the load generator and the
/// examples inherit. The load generator holds one client per worker
/// thread and the examples one per process, so steady-state traffic pays
/// zero TCP handshakes.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    config: ClientConfig,
    jitter: SplitMix64,
    fault: Option<FaultPlan>,
    conn: Option<BufReader<ClientStream>>,
}

impl HttpClient {
    /// A client for `addr` with `timeout` applied to connect, read, and
    /// write, and the default bounded-retry schedule. No I/O happens
    /// until the first request.
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self::with_config(addr, ClientConfig::uniform(timeout))
    }

    /// A client with explicit transport tuning.
    #[must_use]
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        let jitter = SplitMix64::new(config.jitter_seed ^ u64::from(addr.port()));
        HttpClient { addr, config, jitter, fault: None, conn: None }
    }

    /// Inject deterministic socket faults into every connection this
    /// client dials (chaos testing: the retry/backoff path is the system
    /// under test).
    #[must_use]
    pub fn with_fault_injection(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Send `method path` with `body`, returning `(status, body)`. The
    /// service's endpoints are pure queries, so replaying a request on a
    /// stale reused connection — or after a transport failure — is safe.
    ///
    /// # Errors
    ///
    /// [`AcsError::Io`] on connect/read/write failures that survive the
    /// retry budget and [`AcsError::Protocol`] on response-framing
    /// violations.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), AcsError> {
        if self.conn.is_some() {
            // A reused socket may have been closed by the server since
            // the last exchange; one redial distinguishes a stale
            // connection from a dead server and does not consume the
            // retry budget.
            if let Ok(response) = self.round_trip(method, path, body) {
                return Ok(response);
            }
            self.conn = None;
        }
        let mut attempt = 0u32;
        loop {
            match self.round_trip(method, path, body) {
                Ok(response) => return Ok(response),
                Err(e) if attempt < self.config.retries => {
                    let _ = e; // every transport error is retryable: queries are pure
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Backoff before retry `attempt`: `base * 2^attempt` plus uniform
    /// jitter in `[0, base)`, capped. Jitter decorrelates concurrent
    /// clients hammering a shedding server.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base;
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let jitter = base.mul_f64(self.jitter.next_f64());
        (exp + jitter).min(self.config.backoff_cap)
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), AcsError> {
        let io_err =
            |e: std::io::Error| AcsError::Io { path: self.addr.to_string(), reason: e.to_string() };
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
                .map_err(io_err)?;
            stream.set_read_timeout(Some(self.config.read_timeout)).map_err(io_err)?;
            stream.set_write_timeout(Some(self.config.write_timeout)).map_err(io_err)?;
            // Without this, Nagle holds each request back until the
            // previous response's delayed ACK (~40 ms) — fatal to a
            // persistent connection trading small messages.
            let _ = stream.set_nodelay(true);
            let stream = match &self.fault {
                None => ClientStream::Plain(stream),
                Some(plan) => ClientStream::Fault(FaultStream::new(
                    stream,
                    plan.reseeded(plan.seed ^ self.jitter.next_u64()),
                )),
            };
            self.conn = Some(BufReader::new(stream));
        }
        let Some(reader) = self.conn.as_mut() else {
            return Err(protocol("client connection vanished before use"));
        };
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        let outcome = reader
            .get_mut()
            .write_all(request.as_bytes())
            .map_err(io_err)
            .and_then(|()| read_framed_response(reader));
        match outcome {
            Ok((status, body, server_keeps)) => {
                if !server_keeps {
                    self.conn = None;
                }
                Ok((status, body))
            }
            Err(e) => {
                // Never reuse a connection in an unknown framing state.
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Decode `%XX` escapes in a path segment (`+` is left alone: these are
/// path segments, not form data). Operates on raw bytes — a `%` followed
/// by a multibyte UTF-8 sequence must not be treated as a string slice
/// boundary.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                out.push((hi << 4) | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_spaces_and_literals() {
        assert_eq!(percent_decode("A100%2080GB"), "A100 80GB");
        assert_eq!(percent_decode("H100%20SXM"), "H100 SXM");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("trailing%2"), "trailing%2");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn percent_decoding_never_panics_on_multibyte_input() {
        // A '%' directly followed by a multibyte UTF-8 char is valid UTF-8
        // on the wire; slicing the &str two bytes past the '%' would land
        // inside the char and panic. Decode must stay byte-oriented.
        assert_eq!(percent_decode("%aé"), "%aé");
        assert_eq!(percent_decode("%é"), "%é");
        assert_eq!(percent_decode("é%20è"), "é è");
        // Escaped multibyte sequences still decode.
        assert_eq!(percent_decode("caf%C3%A9"), "café");
        // An escape decoding to invalid UTF-8 is replaced, not panicked on.
        assert_eq!(percent_decode("%ff"), "\u{fffd}");
    }

    /// Drive both parsers over the same wire bytes and demand identical
    /// outcomes: same framing, same keep-alive verdict, same error text.
    fn assert_parsers_agree(wire: &[u8]) {
        let incremental = parse_request_bytes(wire);
        let mut reader = std::io::BufReader::new(wire);
        let blocking = read_request(&mut reader);
        match (&incremental, &blocking) {
            (Parsed::Complete { request, keep_alive, consumed }, Ok((r, k))) => {
                assert_eq!(request, r);
                assert_eq!(keep_alive, k);
                assert!(*consumed <= wire.len());
            }
            (Parsed::Invalid(e), Err(b)) => {
                assert_eq!(e.to_string(), b.to_string(), "wire {:?}", String::from_utf8_lossy(wire));
            }
            // A truncated buffer is NeedMore incrementally but EOF
            // ("connection ended mid-...") for the blocking reader.
            (Parsed::NeedMore, Err(b)) => {
                assert!(
                    b.to_string().contains("connection ended"),
                    "blocking parser saw {b} where incremental wants more"
                );
            }
            (incr, block) => {
                panic!("parsers disagree on {:?}: {incr:?} vs {block:?}", String::from_utf8_lossy(wire));
            }
        }
    }

    #[test]
    fn incremental_parser_matches_the_blocking_reader() {
        let wires: Vec<Vec<u8>> = vec![
            b"GET /v1/devices HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
            b"POST /v1/screen HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
            b"GET /v1/devices HTTP/1.0\r\n\r\n".to_vec(),
            b"GET /v1/devices HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
            b"GET /v1/devices HTTP/1.0\r\nConnection: keep-alive\r\n\r\n".to_vec(),
            b"\r\n".to_vec(),
            b"GET\r\n\r\n".to_vec(),
            b"GET /x\r\n\r\n".to_vec(),
            b"GET /x SPDY/9\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nbogus header\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx".to_vec(),
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            format!("GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1)
                .into_bytes(),
            [b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n".as_slice(), &[0xff, 0xfe]].concat(),
            [b"GET /x HTTP/1.1\r\nX: ".as_slice(), &vec![b'a'; MAX_LINE_BYTES + 2], b"\r\n\r\n"]
                .concat(),
            // Truncations of a valid request: NeedMore at every prefix.
            b"POST /v1/screen HTTP/1.1\r\nContent-Length: 2\r\n\r\n{".to_vec(),
            b"POST /v1/screen HTTP/1.1\r\nContent-Le".to_vec(),
            b"POST /v1/scr".to_vec(),
        ];
        for wire in &wires {
            assert_parsers_agree(wire);
        }
        // Too-many-headers in both parsers.
        let mut wire = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            wire.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_parsers_agree(&wire);
    }

    #[test]
    fn incremental_parser_frames_pipelined_requests_in_order() {
        let wire = b"POST /v1/screen HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /v1/devices HTTP/1.1\r\n\r\nGET /v1/metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut at = 0usize;
        let mut seen = Vec::new();
        loop {
            match parse_request_bytes(&wire[at..]) {
                Parsed::Complete { request, consumed, keep_alive } => {
                    at += consumed;
                    seen.push((request.method, request.path, request.body, keep_alive));
                }
                Parsed::NeedMore => break,
                Parsed::Invalid(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(at, wire.len(), "pipelined parse must consume the buffer exactly");
        assert_eq!(
            seen,
            vec![
                ("POST".into(), "/v1/screen".into(), "abc".into(), true),
                ("GET".into(), "/v1/devices".into(), String::new(), true),
                ("GET".into(), "/v1/metrics".into(), String::new(), false),
            ]
        );
    }

    #[test]
    fn incremental_parser_survives_byte_at_a_time_arrival() {
        // FaultStream tears reads into 1-3 byte fragments; the state
        // machine re-parses the accumulated buffer after each. Every
        // proper prefix must be NeedMore, the full buffer Complete.
        let wire = b"POST /v1/simulate HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\n{\"a\"";
        for cut in 0..wire.len() {
            match parse_request_bytes(&wire[..cut]) {
                Parsed::NeedMore => {}
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
        match parse_request_bytes(wire) {
            Parsed::Complete { request, consumed, keep_alive } => {
                assert_eq!(consumed, wire.len());
                assert!(keep_alive);
                assert_eq!(request.body, "{\"a\"");
            }
            other => panic!("full wire: {other:?}"),
        }
    }

    #[test]
    fn response_bytes_match_the_streaming_writer() {
        let mut wire = Vec::new();
        write_response_with(&mut wire, 200, "{\"ok\":true}", true).unwrap();
        assert_eq!(wire, response_bytes(200, "{\"ok\":true}", true, &[]));
        let shed = response_bytes(503, "{}", true, &[("Retry-After", "1")]);
        let text = String::from_utf8(shed).unwrap();
        assert!(text.contains("\r\nRetry-After: 1\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for s in [200, 400, 404, 405, 422, 500, 503] {
            assert!(!reason_phrase(s).is_empty());
        }
    }

    #[test]
    fn chunked_responses_round_trip_through_the_client_decoder() {
        let mut wire = Vec::new();
        {
            let mut writer = ChunkedWriter::new(&mut wire, true);
            assert!(!writer.head_sent());
            writer.write_chunk("{\"variant\":0}\n").unwrap();
            assert!(writer.head_sent());
            writer.write_chunk("{\"variant\":1}\n").unwrap();
            writer.write_chunk("").unwrap(); // must not terminate the stream
            writer.write_chunk("{\"summary\":true}\n").unwrap();
            writer.finish().unwrap();
        }
        let mut reader = std::io::BufReader::new(&wire[..]);
        let (status, body, keep) = read_framed_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(keep, "chunked responses are framed, so keep-alive survives");
        assert_eq!(body, "{\"variant\":0}\n{\"variant\":1}\n{\"summary\":true}\n");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "decoder must consume the terminator exactly");
    }

    #[test]
    fn chunk_extensions_and_trailers_are_tolerated() {
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     5;ext=1\r\nhello\r\n0\r\nX-Trailer: 1\r\n\r\n";
        let mut reader = std::io::BufReader::new(&wire[..]);
        let (status, body, _) = read_framed_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello");
    }

    #[test]
    fn torn_chunked_streams_are_protocol_errors() {
        for wire in [
            // Truncated mid-chunk-data.
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n10\r\nhal"[..],
            // Missing terminator after the last chunk.
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n"[..],
            // Garbage chunk size.
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"[..],
            // Chunk data not CRLF-terminated.
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n"[..],
        ] {
            let mut reader = std::io::BufReader::new(wire);
            let err = read_framed_response(&mut reader).unwrap_err();
            assert_eq!(err.kind(), "protocol", "wire {:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn oversized_chunked_responses_are_bounded() {
        // A chunk claiming more than MAX_RESPONSE_BYTES must be rejected
        // before the decoder tries to materialise it.
        let wire = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_RESPONSE_BYTES + 1
        );
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let err = read_framed_response(&mut reader).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }
}
