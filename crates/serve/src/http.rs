//! A minimal HTTP/1.1 wire layer over `std::net`, shared by the server,
//! the load generator, and the examples.
//!
//! Scope is deliberately narrow — exactly what the service needs and
//! nothing more: one request per connection (`Connection: close`),
//! `Content-Length`-framed bodies, no chunked encoding, no TLS, no
//! keep-alive. Framing violations surface as [`AcsError::Protocol`] so
//! the handler layer can map them to a 400 with the standard error
//! envelope.

use acs_errors::AcsError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Maximum number of request headers.
const MAX_HEADERS: usize = 100;

/// A parsed request: method, percent-encoded path, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query, still encoded).
    pub path: String,
    /// Request body (empty when no `Content-Length`).
    pub body: String,
}

fn protocol(reason: impl Into<String>) -> AcsError {
    AcsError::Protocol { reason: reason.into() }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, AcsError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) => return Err(protocol(format!("connection ended mid-line: {e}"))),
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > MAX_LINE_BYTES {
            return Err(protocol("header line exceeds 8 KiB"));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| protocol("header line is not UTF-8"))
}

/// Read and frame one request from `stream`.
///
/// # Errors
///
/// [`AcsError::Protocol`] on malformed request lines, non-UTF-8 headers
/// or bodies, oversized lines/bodies/header counts, or a connection that
/// closes mid-message.
pub fn read_request(stream: &mut TcpStream) -> Result<HttpRequest, AcsError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| protocol("empty request line"))?.to_owned();
    let path = parts.next().ok_or_else(|| protocol("request line missing target"))?.to_owned();
    let version = parts.next().ok_or_else(|| protocol("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(protocol(format!("unsupported protocol version {version}")));
    }

    let mut content_length: Option<usize> = None;
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(protocol("too many headers"));
        }
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(protocol(format!("malformed header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            if content_length.is_some() {
                return Err(protocol("duplicate Content-Length header"));
            }
            let length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| protocol(format!("unparseable Content-Length {value:?}")))?;
            if length > MAX_BODY_BYTES {
                return Err(protocol(format!(
                    "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
            content_length = Some(length);
        }
    }

    let mut body = vec![0u8; content_length.unwrap_or(0)];
    reader
        .read_exact(&mut body)
        .map_err(|e| protocol(format!("connection ended mid-body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| protocol("request body is not UTF-8"))?;
    Ok(HttpRequest { method, path, body })
}

/// Canonical reason phrase for the statuses the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one `Connection: close` JSON response. I/O errors are returned
/// so callers can count them, but by this point the client may be gone —
/// treat failures as diagnostics, not faults.
///
/// # Errors
///
/// [`AcsError::Io`] when the socket write fails.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), AcsError> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason_phrase(status),
        body.len(),
    );
    let io_err = |e: std::io::Error| AcsError::Io {
        path: "tcp-response".to_owned(),
        reason: e.to_string(),
    };
    stream.write_all(head.as_bytes()).map_err(io_err)?;
    stream.write_all(body.as_bytes()).map_err(io_err)?;
    stream.flush().map_err(io_err)
}

/// One-shot HTTP client: connect, send `method path` with `body`, return
/// `(status, response body)`. Used by the load generator, the CI smoke
/// test, and the examples; kept symmetric with the server so both ends
/// exercise the same framing rules.
///
/// # Errors
///
/// [`AcsError::Io`] on connect/read/write failures and
/// [`AcsError::Protocol`] on an unparsable status line.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), AcsError> {
    let io_err = |e: std::io::Error| AcsError::Io { path: addr.to_string(), reason: e.to_string() };
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(io_err)?;
    stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
    stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).map_err(io_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io_err)?;

    let status = response
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| response.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.get(..3))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| protocol(format!("unparsable status line in {:?}", response.lines().next())))?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, b)| b).to_owned();
    Ok((status, body))
}

/// Decode `%XX` escapes in a path segment (`+` is left alone: these are
/// path segments, not form data). Operates on raw bytes — a `%` followed
/// by a multibyte UTF-8 sequence must not be treated as a string slice
/// boundary.
#[must_use]
pub fn percent_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                out.push((hi << 4) | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_spaces_and_literals() {
        assert_eq!(percent_decode("A100%2080GB"), "A100 80GB");
        assert_eq!(percent_decode("H100%20SXM"), "H100 SXM");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("trailing%2"), "trailing%2");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn percent_decoding_never_panics_on_multibyte_input() {
        // A '%' directly followed by a multibyte UTF-8 char is valid UTF-8
        // on the wire; slicing the &str two bytes past the '%' would land
        // inside the char and panic. Decode must stay byte-oriented.
        assert_eq!(percent_decode("%aé"), "%aé");
        assert_eq!(percent_decode("%é"), "%é");
        assert_eq!(percent_decode("é%20è"), "é è");
        // Escaped multibyte sequences still decode.
        assert_eq!(percent_decode("caf%C3%A9"), "café");
        // An escape decoding to invalid UTF-8 is replaced, not panicked on.
        assert_eq!(percent_decode("%ff"), "\u{fffd}");
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for s in [200, 400, 404, 405, 422, 500, 503] {
            assert!(!reason_phrase(s).is_empty());
        }
    }
}
