//! Request routing and endpoint logic.
//!
//! Every endpoint speaks JSON both ways. Failures use one envelope —
//! `{"error": <AcsError as JSON>, "message": <display form>}` — with the
//! HTTP status derived from the error taxonomy's stable `kind()` tag, so
//! clients can switch on `error.kind` without parsing prose.
//!
//! `POST /v1/screen` and `POST /v1/simulate` are memoised through
//! content-addressed caches keyed on a *normalised* form of the request
//! (defaults filled in, members in fixed order), so two JSON bodies that
//! mean the same thing share one cache entry.

use crate::http::{percent_decode, HttpRequest};
use acs_cache::{CacheKey, CacheLane, CacheStats, ShardedCache};
use acs_devices::{DeviceRecord, GpuDatabase};
use acs_dse::{DseRunner, SweepSpec};
use acs_errors::json::{object, parse, Value};
use acs_errors::AcsError;
use acs_hw::DeviceConfig;
use acs_llm::{LengthDistribution, ModelConfig, RequestTrace, WorkloadConfig};
use acs_policy::{
    Acr2022, Acr2023, Classification, DeviceMetrics, HbmClassification, HbmPackage, HbmRule2024,
    MarketSegment,
};
use acs_scenarios::{Scenario, ScenarioRegistry};
use acs_sim::{simulate_serving_cached, PlanStore, ServingConfig, Simulator, StepCostCache};
use acs_telemetry::{Counter, Gauge, Histogram, Registry};
use acs_whatif::{WhatIfEngine, WhatIfRequest, RuleGrid};
use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

/// Request-latency endpoint labels, indexing [`AppState::latency`] and
/// naming the `serve.latency_us.*` histograms.
const ENDPOINTS: [&str; 6] = ["screen", "simulate", "devices", "metrics", "whatif", "other"];

/// [`ENDPOINTS`] index of `/v1/whatif` (used by the streaming entry
/// point, which bypasses [`handle`]'s routing).
const WHATIF_ENDPOINT: usize = 4;

/// Shared service state: the device database, the response caches, and
/// the service's own always-enabled telemetry [`Registry`] — the single
/// source of truth behind `GET /v1/metrics` (request counters,
/// per-endpoint latency histograms, queue depth, shed count).
#[derive(Debug)]
pub struct AppState {
    db: GpuDatabase,
    screen_cache: ShardedCache<String>,
    simulate_cache: ShardedCache<String>,
    step_cache: StepCostCache,
    whatif_cache: ShardedCache<String>,
    plan_store: PlanStore,
    // The grid evaluator. Its factored leg tables and the fused lattice
    // vectors built over them live inside the runner and persist for
    // the service's lifetime, so every /v1/screen grid request — and
    // every /v1/whatif fleet — prices only the legs no earlier request
    // has priced and re-fuses nothing it has already fused.
    dse: DseRunner,
    // The named-scenario registry and one persistent runner per scenario
    // the service has priced under (keyed by scenario digest). Each
    // runner owns its own leg tables, so a moe-mixtral grid warms the
    // MoE legs without ever touching the dense default's tables — and
    // every later request under the same scenario hits them.
    scenarios: ScenarioRegistry,
    scenario_runners: RwLock<HashMap<u64, Arc<DseRunner>>>,
    // The what-if screener: the curated portfolio, the reference HBM
    // stacks, and the externality economics, shared across requests.
    whatif: WhatIfEngine,
    telemetry: Arc<Registry>,
    screen_requests: Arc<Counter>,
    simulate_requests: Arc<Counter>,
    device_requests: Arc<Counter>,
    metrics_requests: Arc<Counter>,
    whatif_requests: Arc<Counter>,
    error_responses: Arc<Counter>,
    shed_responses: Arc<Counter>,
    shed_expensive: Arc<Counter>,
    raw_hits: Arc<Counter>,
    deadline_closed: Arc<Counter>,
    chaos_faults: Arc<Counter>,
    reactor_events: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency: [Arc<Histogram>; 6],
    started: Instant,
}

impl AppState {
    /// State with the curated device database and caches bounded to
    /// `cache_capacity` entries each.
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        // The service registry is always on: /v1/metrics must report real
        // numbers whether or not the process was started with profiling.
        // (The *global* registry stays disabled unless profiling is
        // requested; sim-layer instrumentation hangs off that one.)
        let telemetry = Arc::new(Registry::new_enabled());
        let latency = ENDPOINTS
            .map(|endpoint| telemetry.histogram(&format!("serve.latency_us.{endpoint}")));
        AppState {
            db: GpuDatabase::curated_65(),
            screen_cache: ShardedCache::new(cache_capacity),
            simulate_cache: ShardedCache::new(cache_capacity),
            step_cache: StepCostCache::new(cache_capacity.max(1024)),
            whatif_cache: ShardedCache::new(cache_capacity),
            // Plans are tiny (one operator graph pair per distinct
            // model/workload/node shape), so a small store suffices.
            plan_store: PlanStore::new(64),
            dse: DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default()),
            scenarios: ScenarioRegistry::builtin(),
            scenario_runners: RwLock::new(HashMap::new()),
            whatif: WhatIfEngine::paper_default(),
            screen_requests: telemetry.counter("serve.requests.screen"),
            simulate_requests: telemetry.counter("serve.requests.simulate"),
            device_requests: telemetry.counter("serve.requests.devices"),
            metrics_requests: telemetry.counter("serve.requests.metrics"),
            whatif_requests: telemetry.counter("serve.requests.whatif"),
            error_responses: telemetry.counter("serve.requests.errors"),
            shed_responses: telemetry.counter("serve.queue.shed"),
            shed_expensive: telemetry.counter("serve.queue.shed_expensive"),
            raw_hits: telemetry.counter("serve.cache.raw.hits"),
            deadline_closed: telemetry.counter("serve.conn.deadline_closed"),
            chaos_faults: telemetry.counter("serve.conn.chaos_faults"),
            reactor_events: telemetry.counter("serve.reactor.events"),
            queue_depth: telemetry.gauge("serve.queue.depth"),
            latency,
            telemetry,
            started: Instant::now(),
        }
    }

    /// Counters of the response caches, in `/v1/metrics` order
    /// (screen, simulate, sim-steps, whatif).
    #[must_use]
    pub fn cache_stats(&self) -> [CacheStats; 4] {
        [
            self.screen_cache.stats(),
            self.simulate_cache.stats(),
            self.step_cache.stats(),
            self.whatif_cache.stats(),
        ]
    }

    /// The service's telemetry registry (always enabled).
    #[must_use]
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The named-scenario registry requests resolve against.
    #[must_use]
    pub fn scenarios(&self) -> &ScenarioRegistry {
        &self.scenarios
    }

    /// The persistent runner for one scenario, created on first use and
    /// kept for the service's lifetime: its factored leg tables are what
    /// turn repeated grids under the same scenario into table hits.
    /// Inline (unnamed) scenario specs share runners too — the key is
    /// the scenario's content digest, not its name.
    fn runner_for(&self, scenario: &Scenario) -> Arc<DseRunner> {
        let digest = scenario.digest();
        if let Some(runner) = self
            .scenario_runners
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&digest)
        {
            return Arc::clone(runner);
        }
        let built = Arc::new(scenario.runner());
        let mut map = self.scenario_runners.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(digest).or_insert(built))
    }

    /// Record the accept-queue depth after a push or pop.
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
    }

    /// Count one load-shedding 503.
    pub fn record_shed(&self) {
        self.shed_responses.add(1);
    }

    /// Count one priority shed: an expensive request (unique screen /
    /// simulate / what-if work) turned away with `Retry-After` while
    /// cheap cached traffic kept flowing. Also counted in the plain
    /// shed total so `queue.shed` stays the overall figure.
    pub fn record_shed_expensive(&self) {
        self.shed_responses.add(1);
        self.shed_expensive.add(1);
    }

    /// Count one raw front-cache hit: a byte-identical repeated request
    /// answered from a worker-private response buffer without touching
    /// the semantic caches. The endpoint's request counter and latency
    /// histogram record it like any other request.
    pub fn record_raw_hit(&self, endpoint: usize, micros: f64) {
        match endpoint {
            0 => self.screen_requests.add(1),
            1 => self.simulate_requests.add(1),
            2 => self.device_requests.add(1),
            3 => self.metrics_requests.add(1),
            4 => self.whatif_requests.add(1),
            _ => {}
        }
        if let Some(h) = self.latency.get(endpoint) {
            h.record(micros);
        }
        self.raw_hits.add(1);
    }

    /// Total raw front-cache hits across all event-loop workers.
    #[must_use]
    pub fn raw_hit_count(&self) -> u64 {
        self.raw_hits.get()
    }

    /// Total priority (expensive-class) sheds.
    #[must_use]
    pub fn shed_expensive_count(&self) -> u64 {
        self.shed_expensive.get()
    }

    /// Count one connection closed because it exhausted its per-request
    /// read deadline (the slow-loris defence shedding a worker hog).
    pub fn record_deadline_close(&self) {
        self.deadline_closed.add(1);
    }

    /// Count `n` socket faults injected by the chaos shim (zero unless
    /// the server was started with a chaos seed).
    pub fn record_chaos(&self, n: u64) {
        self.chaos_faults.add(n);
    }

    /// Count `n` readiness events delivered by one reactor poll (zero
    /// on the worker-pool tier).
    pub fn record_reactor_events(&self, n: u64) {
        self.reactor_events.add(n);
    }

    /// Mirror the sharded caches' hit/miss/eviction counters into the
    /// telemetry registry (as gauges: the caches own the running totals,
    /// the registry reflects their latest values) so a trace export of the
    /// service registry carries the cache picture too.
    fn sync_cache_telemetry(&self) {
        let caches = [
            ("screen", self.screen_cache.stats(), self.screen_cache.len()),
            ("simulate", self.simulate_cache.stats(), self.simulate_cache.len()),
            ("sim_steps", self.step_cache.stats(), self.step_cache.len()),
            ("whatif", self.whatif_cache.stats(), self.whatif_cache.len()),
        ];
        for (name, stats, len) in caches {
            self.telemetry.set_gauge(&format!("serve.cache.{name}.hits"), stats.hits);
            self.telemetry.set_gauge(&format!("serve.cache.{name}.misses"), stats.misses);
            self.telemetry.set_gauge(&format!("serve.cache.{name}.evictions"), stats.evictions);
            self.telemetry.set_gauge(&format!("serve.cache.{name}.entries"), len as u64);
        }
    }
}

/// Map an error's taxonomy tag to an HTTP status: client-side input
/// faults are 400s, lookup misses 404, physically impossible requests
/// 422, load shedding 503, and everything else (internal invariants)
/// 500.
#[must_use]
pub fn status_for(error: &AcsError) -> u16 {
    match error.kind() {
        "json" | "protocol" | "invalid_config" | "malformed_record" => 400,
        "unknown_device" => 404,
        "infeasible" => 422,
        "overloaded" => 503,
        _ => 500,
    }
}

/// The uniform error envelope.
#[must_use]
pub fn error_body(error: &AcsError) -> String {
    object(vec![
        ("error", error.to_json_value()),
        ("message", Value::String(error.to_string())),
    ])
    .to_json()
}

fn err(error: &AcsError) -> (u16, String) {
    (status_for(error), error_body(error))
}

/// [`ENDPOINTS`] index for a (already query-stripped) request path.
pub(crate) fn endpoint_index(path: &str) -> usize {
    match path {
        "/v1/screen" => 0,
        "/v1/simulate" => 1,
        p if p == "/v1/devices" || p.starts_with("/v1/devices/") => 2,
        "/v1/metrics" => 3,
        "/v1/whatif" => WHATIF_ENDPOINT,
        _ => 5,
    }
}

/// Route one request. Always returns a complete `(status, JSON body)`
/// pair; this function never panics on untrusted input.
pub fn handle(state: &AppState, request: &HttpRequest) -> (u16, String) {
    handle_lane(state, request, None)
}

/// [`handle`] pinned to one worker's cache lane: every response-cache
/// access stays inside the shards that worker owns, so event-loop
/// workers never contend on shard mutexes. `lane: None` (the pool path,
/// and every pre-lane caller) keeps the historical whole-cache
/// placement.
pub fn handle_lane(
    state: &AppState,
    request: &HttpRequest,
    lane: Option<CacheLane>,
) -> (u16, String) {
    let t0 = Instant::now();
    let path = request.path.split('?').next().unwrap_or("");
    let endpoint = endpoint_index(path);
    let outcome: Result<String, (u16, String)> = match (request.method.as_str(), path) {
        ("POST", "/v1/screen") => {
            state.screen_requests.add(1);
            screen(state, &request.body, lane).map_err(|e| err(&e))
        }
        ("POST", "/v1/simulate") => {
            state.simulate_requests.add(1);
            simulate(state, &request.body, lane).map_err(|e| err(&e))
        }
        ("POST", "/v1/whatif") => {
            state.whatif_requests.add(1);
            whatif(state, &request.body, lane).map_err(|e| err(&e))
        }
        ("GET", "/v1/devices") => {
            state.device_requests.add(1);
            Ok(list_devices(state))
        }
        ("GET", p) if p.starts_with("/v1/devices/") => {
            state.device_requests.add(1);
            device_detail(state, &percent_decode(&p["/v1/devices/".len()..]))
                .map_err(|e| err(&e))
        }
        ("GET", "/v1/metrics") => {
            state.metrics_requests.add(1);
            Ok(metrics(state))
        }
        (m, "/v1/screen" | "/v1/simulate" | "/v1/devices" | "/v1/metrics" | "/v1/whatif") => {
            let e = AcsError::Protocol { reason: format!("method {m} not allowed on {path}") };
            let (_, body) = err(&e);
            Err((405, body))
        }
        _ => {
            let e = AcsError::Protocol {
                reason: format!("no route for {} {path}", request.method),
            };
            let (_, body) = err(&e);
            Err((404, body))
        }
    };
    let (status, body) = match outcome {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    };
    if status >= 400 {
        state.error_responses.add(1);
    }
    state.latency[endpoint].record(t0.elapsed().as_secs_f64() * 1e6);
    (status, body)
}

fn classification_tag(c: Classification) -> &'static str {
    match c {
        Classification::NotApplicable => "not_applicable",
        Classification::NacEligible => "nac_eligible",
        Classification::LicenseRequired => "license_required",
    }
}

fn hbm_tag(c: HbmClassification) -> &'static str {
    match c {
        HbmClassification::NotControlled => "not_controlled",
        HbmClassification::ExceptionEligible => "exception_eligible",
        HbmClassification::Controlled => "controlled",
    }
}

fn market_tag(m: MarketSegment) -> &'static str {
    match m {
        MarketSegment::DataCenter => "data_center",
        MarketSegment::NonDataCenter => "non_data_center",
    }
}

fn parse_market(v: &Value) -> Result<MarketSegment, AcsError> {
    match v.get("market").and_then(Value::as_str) {
        None | Some("data_center") => Ok(MarketSegment::DataCenter),
        Some("non_data_center") => Ok(MarketSegment::NonDataCenter),
        Some(other) => Err(AcsError::Json {
            reason: format!("unknown market {other:?} (expected data_center or non_data_center)"),
        }),
    }
}

/// Build a [`DeviceConfig`] from a request's `config` object, starting
/// from the A100-like template and overriding any supplied field. The
/// accepted members mirror the DSE's swept parameters.
fn config_from_json(spec: &Value) -> Result<DeviceConfig, AcsError> {
    const KNOWN: [&str; 8] = [
        "name",
        "core_count",
        "lanes_per_core",
        "systolic_dim",
        "l1_kib",
        "l2_mib",
        "hbm_tb_s",
        "device_bw_gb_s",
    ];
    if let Value::Object(members) = spec {
        for (k, _) in members {
            if !KNOWN.contains(&k.as_str()) {
                return Err(AcsError::Json {
                    reason: format!("unknown config member {k:?} (expected one of {KNOWN:?})"),
                });
            }
        }
    } else {
        return Err(AcsError::Json { reason: "config must be an object".to_owned() });
    }
    let mut builder = DeviceConfig::a100_like().to_builder();
    if let Some(name) = spec.get("name").and_then(Value::as_str) {
        builder.name(name);
    }
    let u32_field = |key: &str| -> Result<Option<u32>, AcsError> {
        match spec.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| AcsError::Json {
                    reason: format!("config member {key:?} must be a small non-negative integer"),
                }),
        }
    };
    if let Some(n) = u32_field("core_count")? {
        builder.core_count(n);
    }
    if let Some(n) = u32_field("lanes_per_core")? {
        builder.lanes_per_core(n);
    }
    if let Some(n) = u32_field("systolic_dim")? {
        builder.systolic(acs_hw::SystolicDims { x: n, y: n });
    }
    if let Some(n) = u32_field("l1_kib")? {
        builder.l1_kib_per_core(n);
    }
    if let Some(n) = u32_field("l2_mib")? {
        builder.l2_mib(n);
    }
    if let Some(v) = spec.get("hbm_tb_s") {
        let tb_s = v.as_f64().ok_or_else(|| AcsError::Json {
            reason: "config member \"hbm_tb_s\" must be a number".to_owned(),
        })?;
        builder.hbm_bandwidth_tb_s(tb_s);
    }
    if let Some(v) = spec.get("device_bw_gb_s") {
        let gb_s = v.as_f64().ok_or_else(|| AcsError::Json {
            reason: "config member \"device_bw_gb_s\" must be a number".to_owned(),
        })?;
        builder.device_bandwidth_gb_s(gb_s);
    }
    Ok(builder.build()?)
}

/// Normalised canonical form of a config for cache keys: every
/// load-bearing parameter, fixed member order.
fn config_fingerprint(c: &DeviceConfig) -> Value {
    let u = |x: u64| Value::Number(x as f64);
    object(vec![
        ("name", Value::String(c.name().to_owned())),
        ("cores", u(u64::from(c.core_count()))),
        ("lanes", u(u64::from(c.lanes_per_core()))),
        ("sys_x", u(u64::from(c.systolic().x))),
        ("sys_y", u(u64::from(c.systolic().y))),
        ("vec", u(u64::from(c.vector_width()))),
        ("ghz", Value::Number(c.frequency_ghz())),
        ("l1_kib", u(u64::from(c.l1_kib_per_core()))),
        ("l2_mib", u(u64::from(c.l2_mib()))),
        ("hbm_gb_s", Value::Number(c.hbm().bandwidth_gb_s)),
        ("hbm_gib", Value::Number(c.hbm().capacity_gib)),
        ("phy_gb_s", Value::Number(c.phy().total_gb_s())),
        ("dtype_bits", u(u64::from(c.datatype().bit_width()))),
    ])
}

fn screening_value(
    metrics: &DeviceMetrics,
    hbm: Option<(&str, f64, f64)>, // (name, mem bandwidth GB/s, package area mm²)
) -> Value {
    let c2022 = Acr2022::published().classify(metrics);
    let c2023 = Acr2023::published().classify(metrics);
    let strictest = c2022.max(c2023);
    let dec_2024 = match hbm {
        Some((name, bw, area)) => Value::String(
            hbm_tag(HbmRule2024::published().classify(&HbmPackage::new(name, bw, area)))
                .to_owned(),
        ),
        // The HBM rule keys on *package* area, which device records and
        // accelerator configs do not carry; without it the density is
        // undefined, so the vintage is reported as unevaluated rather
        // than guessed.
        None => Value::String("not_evaluated".to_owned()),
    };
    object(vec![
        ("oct_2022", Value::String(classification_tag(c2022).to_owned())),
        ("oct_2023", Value::String(classification_tag(c2023).to_owned())),
        ("dec_2024_hbm", dec_2024),
        ("strictest_acr", Value::String(classification_tag(strictest).to_owned())),
        ("export_license_required", Value::Bool(strictest == Classification::LicenseRequired)),
    ])
}

fn metrics_value(m: &DeviceMetrics) -> Value {
    object(vec![
        ("tpp", Value::Number(m.tpp().0)),
        ("device_bw_gb_s", Value::Number(m.device_bw_gb_s())),
        ("die_area_mm2", Value::Number(m.die_area_mm2())),
        (
            "performance_density",
            m.performance_density().map_or(Value::Null, |p| Value::Number(p.0)),
        ),
        ("mem_gib", Value::Number(m.mem_capacity_gib())),
        ("mem_bw_gb_s", Value::Number(m.mem_bw_gb_s())),
        ("market", Value::String(market_tag(m.market()).to_owned())),
    ])
}

/// Ceiling on `/v1/screen` grid cardinality: large enough for the
/// paper's Table 3 sweeps (up to 1536 points), small enough that a
/// single request cannot pin a worker for minutes.
const MAX_GRID_POINTS: usize = 4_096;

/// Parse a `grid` request member into a sweep spec, its TPP target, and
/// the scenario axis (empty when absent: the historical dense default).
fn parse_grid(
    registry: &ScenarioRegistry,
    spec: &Value,
) -> Result<(SweepSpec, f64, Vec<Scenario>), AcsError> {
    const KNOWN: [&str; 8] = [
        "systolic_dims",
        "lanes_per_core",
        "l1_kib",
        "l2_mib",
        "hbm_tb_s",
        "device_bw_gb_s",
        "tpp_target",
        "scenario",
    ];
    if let Value::Object(members) = spec {
        for (k, _) in members {
            if !KNOWN.contains(&k.as_str()) {
                return Err(AcsError::Json {
                    reason: format!("unknown grid member {k:?} (expected one of {KNOWN:?})"),
                });
            }
        }
    } else {
        return Err(AcsError::Json { reason: "grid must be an object".to_owned() });
    }
    let axis = |key: &str| -> Result<&[Value], AcsError> {
        spec.get(key).and_then(Value::as_array).filter(|a| !a.is_empty()).ok_or_else(|| {
            AcsError::Json { reason: format!("grid member {key:?} must be a non-empty array") }
        })
    };
    let u32_axis = |key: &str| -> Result<Vec<u32>, AcsError> {
        axis(key)?
            .iter()
            .map(|v| {
                v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(|| AcsError::Json {
                    reason: format!("grid member {key:?} must hold small non-negative integers"),
                })
            })
            .collect()
    };
    let f64_axis = |key: &str| -> Result<Vec<f64>, AcsError> {
        axis(key)?
            .iter()
            .map(|v| {
                v.as_f64().filter(|x| x.is_finite()).ok_or_else(|| AcsError::Json {
                    reason: format!("grid member {key:?} must hold finite numbers"),
                })
            })
            .collect()
    };
    let sweep = SweepSpec {
        systolic_dims: u32_axis("systolic_dims")?,
        lanes_per_core: u32_axis("lanes_per_core")?,
        l1_kib: u32_axis("l1_kib")?,
        l2_mib: u32_axis("l2_mib")?,
        hbm_tb_s: f64_axis("hbm_tb_s")?,
        device_bw_gb_s: f64_axis("device_bw_gb_s")?,
    };
    let tpp_target = spec
        .get("tpp_target")
        .and_then(Value::as_f64)
        .filter(|t| t.is_finite() && *t > 0.0)
        .ok_or_else(|| AcsError::Json {
            reason: "grid member \"tpp_target\" must be a positive number".to_owned(),
        })?;
    // The scenario axis: one registered name, one inline spec object, or
    // an array mixing both. Every entry validates at parse time, so a
    // hostile spec (unknown name, expert bomb, zero-stage pipeline) is a
    // typed 400 before any hardware point is priced.
    let scenarios = match spec.get("scenario") {
        None => Vec::new(),
        Some(Value::Array(entries)) => {
            if entries.is_empty() {
                return Err(AcsError::Json {
                    reason: "grid member \"scenario\" must not be an empty array".to_owned(),
                });
            }
            entries.iter().map(|v| registry.resolve(v)).collect::<Result<Vec<_>, _>>()?
        }
        Some(v) => vec![registry.resolve(v)?],
    };
    let points = sweep.cardinality() * scenarios.len().max(1);
    if points > MAX_GRID_POINTS {
        return Err(AcsError::invalid_config(
            "grid",
            format!("{points} points exceed the {MAX_GRID_POINTS}-point request ceiling"),
        ));
    }
    Ok((sweep, tpp_target, scenarios))
}

/// Normalised canonical form of a grid for cache keys: axis values in
/// request order (the factored evaluator is order-insensitive, but two
/// orderings are two requests — correctness never depends on collapsing
/// them).
fn grid_fingerprint(s: &SweepSpec) -> Value {
    let u32s =
        |xs: &[u32]| Value::Array(xs.iter().map(|&x| Value::Number(f64::from(x))).collect());
    let f64s = |xs: &[f64]| Value::Array(xs.iter().copied().map(Value::Number).collect());
    object(vec![
        ("systolic_dims", u32s(&s.systolic_dims)),
        ("lanes_per_core", u32s(&s.lanes_per_core)),
        ("l1_kib", u32s(&s.l1_kib)),
        ("l2_mib", u32s(&s.l2_mib)),
        ("hbm_tb_s", f64s(&s.hbm_tb_s)),
        ("device_bw_gb_s", f64s(&s.device_bw_gb_s)),
    ])
}

/// Serialise one sweep report as `(designs, failures)` member arrays.
fn report_values(report: &acs_dse::SweepReport) -> Result<(Vec<Value>, Vec<Value>), AcsError> {
    let mut designs = Vec::with_capacity(report.designs.len());
    for (index, d) in &report.designs {
        designs.push(object(vec![
            ("index", Value::Number(*index as f64)),
            ("design", d.to_json_value()?),
        ]));
    }
    let failures = report
        .failures
        .iter()
        .map(|f| {
            object(vec![
                ("index", Value::Number(f.index as f64)),
                ("params", Value::String(f.params.clone())),
                ("kind", Value::String(f.kind().to_owned())),
                ("error", f.reason.to_json_value()),
            ])
        })
        .collect();
    Ok((designs, failures))
}

/// `POST /v1/screen` with a `grid` member: evaluate a DSE lattice with
/// the factored evaluator and return every design plus the failure
/// ledger. A `scenario` member evaluates the same hardware lattice once
/// per scenario (model x dtype x parallelism), grouping the results per
/// scenario; without one the state's historical dense default runner
/// answers, byte-identically to pre-scenario responses. Responses are
/// cached like scalar screens; on a cache miss the evaluation still
/// reuses every cost leg any earlier grid priced under the same
/// scenario, because each runner's leg tables persist in the
/// [`AppState`].
fn screen_grid(
    state: &AppState,
    spec: &Value,
    lane: Option<CacheLane>,
) -> Result<String, AcsError> {
    let (sweep, tpp_target, scenarios) = parse_grid(&state.scenarios, spec)?;
    let mut key_members = vec![
        ("v", Value::String("screen-grid-v1".to_owned())),
        ("grid", grid_fingerprint(&sweep)),
        ("tpp", Value::Number(tpp_target)),
    ];
    if !scenarios.is_empty() {
        // Keyed on canonical scenario content, not names: an inline spec
        // and the equivalent registered scenario share a cache entry.
        key_members.push((
            "scenarios",
            Value::Array(
                scenarios.iter().map(|s| Value::String(s.canonical())).collect(),
            ),
        ));
    }
    let key = CacheKey::from_value(&object(key_members));
    let (response, _) = state.screen_cache.get_or_try_insert_in(&key, lane, || {
        if scenarios.is_empty() {
            let report = state.dse.run_lattice(&sweep, tpp_target);
            let (designs, failures) = report_values(&report)?;
            return Ok::<_, AcsError>(
                object(vec![
                    (
                        "grid",
                        object(vec![
                            ("points", Value::Number(sweep.cardinality() as f64)),
                            ("tpp_target", Value::Number(tpp_target)),
                            ("evaluated", Value::Number(report.designs.len() as f64)),
                            ("failed", Value::Number(report.failures.len() as f64)),
                        ]),
                    ),
                    ("designs", Value::Array(designs)),
                    ("failures", Value::Array(failures)),
                ])
                .to_json(),
            );
        }
        let mut groups = Vec::with_capacity(scenarios.len());
        let (mut evaluated, mut failed) = (0usize, 0usize);
        for scenario in &scenarios {
            let report = state.runner_for(scenario).run_lattice(&sweep, tpp_target);
            evaluated += report.designs.len();
            failed += report.failures.len();
            let (designs, failures) = report_values(&report)?;
            groups.push(object(vec![
                ("scenario", Value::String(scenario.name().to_owned())),
                ("model", Value::String(scenario.model().name().to_owned())),
                ("dtype", Value::String(scenario.dtype().to_string())),
                ("parallelism", Value::String(scenario.parallelism().to_string())),
                ("devices", Value::Number(scenario.parallelism().devices() as f64)),
                ("evaluated", Value::Number(designs.len() as f64)),
                ("failed", Value::Number(failures.len() as f64)),
                ("designs", Value::Array(designs)),
                ("failures", Value::Array(failures)),
            ]));
        }
        Ok(object(vec![
            (
                "grid",
                object(vec![
                    (
                        "points",
                        Value::Number((sweep.cardinality() * scenarios.len()) as f64),
                    ),
                    ("tpp_target", Value::Number(tpp_target)),
                    ("evaluated", Value::Number(evaluated as f64)),
                    ("failed", Value::Number(failed as f64)),
                    ("scenario_count", Value::Number(scenarios.len() as f64)),
                ]),
            ),
            ("scenarios", Value::Array(groups)),
        ])
        .to_json())
    })?;
    Ok(response)
}

/// `POST /v1/screen` — classify a device (by database name) or a custom
/// accelerator config under each ACR vintage, or evaluate a `grid` of
/// swept configurations with the factored DSE evaluator.
fn screen(state: &AppState, body: &str, lane: Option<CacheLane>) -> Result<String, AcsError> {
    let request = parse(body)?;
    if let Some(grid) = request.get("grid") {
        if request.get("device").is_some() || request.get("config").is_some() {
            return Err(AcsError::Json {
                reason: "supply \"grid\" alone, without \"device\" or \"config\"".to_owned(),
            });
        }
        return screen_grid(state, grid, lane);
    }
    let hbm_area = match request.get("hbm_package_area_mm2") {
        None => None,
        Some(v) => Some(v.as_f64().filter(|a| *a > 0.0).ok_or_else(|| AcsError::Json {
            reason: "\"hbm_package_area_mm2\" must be a positive number".to_owned(),
        })?),
    };

    // Resolve to (display name, policy metrics, HBM bandwidth) and a
    // normalised identity for the cache key.
    let (name, metrics, mem_bw, identity) = match (request.get("device"), request.get("config")) {
        (Some(_), Some(_)) => {
            return Err(AcsError::Json {
                reason: "supply either \"device\" or \"config\", not both".to_owned(),
            })
        }
        (Some(d), None) => {
            let query = d.as_str().ok_or_else(|| AcsError::Json {
                reason: "\"device\" must be a string".to_owned(),
            })?;
            let record = state.db.get(query)?;
            let metrics = record.to_metrics();
            let mem_bw = record.mem_bw_gb_s;
            let name = record.name.to_string();
            let identity = object(vec![("device", Value::String(name.clone()))]);
            (name, metrics, mem_bw, identity)
        }
        (None, Some(spec)) => {
            let config = config_from_json(spec)?;
            let market = parse_market(&request)?;
            let metrics = DeviceMetrics::from_config_with_model(&config, market);
            let mem_bw = config.hbm().bandwidth_gb_s;
            let name = config.name().to_owned();
            let identity = object(vec![
                ("config", config_fingerprint(&config)),
                ("market", Value::String(market_tag(market).to_owned())),
            ]);
            (name, metrics, mem_bw, identity)
        }
        (None, None) => {
            return Err(AcsError::Json {
                reason: "request must name a \"device\" or supply a \"config\"".to_owned(),
            })
        }
    };

    let key = CacheKey::from_value(&object(vec![
        ("v", Value::String("screen-v1".to_owned())),
        ("subject", identity),
        ("hbm_area", hbm_area.map_or(Value::Null, Value::Number)),
    ]));
    let (response, _) = state.screen_cache.get_or_try_insert_in(&key, lane, || {
        let hbm = hbm_area.map(|area| (name.as_str(), mem_bw, area));
        Ok::<_, AcsError>(
            object(vec![
                ("device", Value::String(name.clone())),
                ("metrics", metrics_value(&metrics)),
                ("screening", screening_value(&metrics, hbm)),
            ])
            .to_json(),
        )
    })?;
    Ok(response)
}

/// Normalised canonical form of a rule grid for cache keys: every axis
/// filled in (the parser defaults missing axes to their published
/// values), so `{"rule":{...}}` and the equivalent one-point
/// `{"grid":{...}}` share one cache entry.
fn whatif_fingerprint(grid: &RuleGrid) -> Value {
    let axis = |xs: &[f64]| Value::Array(xs.iter().copied().map(Value::Number).collect());
    object(vec![
        ("tpp_threshold_2022", axis(&grid.tpp_threshold_2022)),
        ("device_bw_threshold_2022", axis(&grid.device_bw_threshold_2022)),
        ("tpp_license", axis(&grid.tpp_license)),
        ("tpp_floor", axis(&grid.tpp_floor)),
        ("tpp_nac", axis(&grid.tpp_nac)),
        ("pd_license", axis(&grid.pd_license)),
        ("pd_nac_high", axis(&grid.pd_nac_high)),
        ("pd_nac_low", axis(&grid.pd_nac_low)),
        ("mem_bw_license", axis(&grid.mem_bw_license)),
        ("hbm_control_density", axis(&grid.hbm_control_density)),
        ("hbm_exception_density", axis(&grid.hbm_exception_density)),
    ])
}

/// Compute — or replay from the response cache — the `/v1/whatif` line
/// stream: one canonical-JSON record per rule variant in grid order,
/// then one summary trailer line. On a cache miss each line reaches
/// `sink` the moment the engine completes it (the streaming transport's
/// hook); on a hit the cached lines replay through the same sink. A
/// sink error aborts the run without caching anything.
fn whatif_lines<F>(
    state: &AppState,
    body: &str,
    lane: Option<CacheLane>,
    mut sink: F,
) -> Result<(), AcsError>
where
    F: FnMut(&str) -> Result<(), AcsError>,
{
    // An optional `scenario` member (name or inline spec) swaps the
    // workload the synthetic fleet is priced under — e.g. an MoE model
    // over an expert-parallel node — before the rule grid screens it.
    // The member is peeled off here: the what-if engine's own parser
    // stays scenario-agnostic.
    let mut parsed = parse(body)?;
    let scenario_member = match &mut parsed {
        Value::Object(members) => members
            .iter()
            .position(|(k, _)| k == "scenario")
            .map(|i| members.remove(i).1),
        _ => None,
    };
    let scenario = match &scenario_member {
        Some(v) => Some(state.scenarios.resolve(v)?),
        None => None,
    };
    let request = WhatIfRequest::from_json(&parsed)?;
    let mut key_members = vec![
        ("v", Value::String("whatif-v1".to_owned())),
        ("grid", whatif_fingerprint(&request.grid)),
        ("tpp", Value::Number(request.tpp_target)),
    ];
    if let Some(s) = &scenario {
        key_members.push(("scenario", Value::String(s.canonical())));
    }
    let key = CacheKey::from_value(&object(key_members));
    let (text, hit) = state.whatif_cache.get_or_try_insert_in(&key, lane, || {
        // The fleet prices through a persistent lattice runner — the
        // scenario's when one was named, the state's dense default
        // otherwise — so its cost legs and fused vectors persist across
        // requests: the first what-if pays for the fleet, every later
        // one (any grid, same target and scenario) re-screens it at
        // classification cost.
        let report = match &scenario {
            Some(s) => state
                .runner_for(s)
                .run_lattice(&SweepSpec::synthetic_fleet(), request.tpp_target),
            None => state.dse.run_lattice(&SweepSpec::synthetic_fleet(), request.tpp_target),
        };
        let fleet_failures = report.failures.len();
        let fleet: Vec<_> = report.designs.into_iter().map(|(_, design)| design).collect();
        let mut lines = Vec::with_capacity(request.grid.cardinality() + 1);
        let summary = state.whatif.run_streaming(&request.grid, &fleet, |_, record| {
            let line = record.to_json();
            sink(&line)?;
            lines.push(line);
            Ok(())
        })?;
        let mut trailer_members = vec![
            ("variants", Value::Number(summary.variants as f64)),
            ("devices", Value::Number(summary.devices as f64)),
            ("fleet_designs", Value::Number(summary.fleet_designs as f64)),
            ("fleet_failures", Value::Number(fleet_failures as f64)),
            ("tpp_target", Value::Number(request.tpp_target)),
        ];
        if let Some(s) = &scenario {
            trailer_members.push(("scenario", Value::String(s.name().to_owned())));
        }
        let trailer = object(trailer_members).to_json();
        sink(&trailer)?;
        lines.push(trailer);
        Ok::<_, AcsError>(lines.join("\n"))
    })?;
    if hit {
        for line in text.lines() {
            sink(line)?;
        }
    }
    Ok(())
}

/// `POST /v1/whatif` — screen a rule regime (or a whole grid of them)
/// against the curated device DB and the priced synthetic design fleet.
/// This is the buffered form [`handle`] routes to: the whole stream
/// collected into one JSON document (`{"summary":..,"records":[..]}`).
/// The connection layer streams the same lines incrementally instead
/// ([`handle_whatif_streaming`]).
fn whatif(state: &AppState, body: &str, lane: Option<CacheLane>) -> Result<String, AcsError> {
    let mut lines: Vec<String> = Vec::new();
    whatif_lines(state, body, lane, |line| {
        lines.push(line.to_owned());
        Ok(())
    })?;
    let summary = lines.pop().ok_or_else(|| AcsError::Protocol {
        reason: "what-if stream produced no trailer".to_owned(),
    })?;
    // Every line is already canonical JSON; splice them textually rather
    // than re-parsing a potentially large record set.
    let body_len: usize = lines.iter().map(|l| l.len() + 1).sum();
    let mut doc = String::with_capacity(body_len + summary.len() + 32);
    doc.push_str("{\"summary\":");
    doc.push_str(&summary);
    doc.push_str(",\"records\":[");
    for (i, line) in lines.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(line);
    }
    doc.push_str("]}");
    Ok(doc)
}

/// The streaming form of `POST /v1/whatif`, called by the connection
/// loop instead of [`handle`]: each record line goes out as one chunk
/// of a `Transfer-Encoding: chunked` response as the engine completes
/// it, with the summary trailer line as the final chunk.
///
/// Returns `Ok(wire_ok)` once a stream has started — `wire_ok` false
/// means the socket died or the stream had to be truncated, and the
/// connection must close. A failure *before* the first chunk returns
/// `Err((status, body))` so the caller can answer with an ordinary
/// framed error.
pub fn handle_whatif_streaming<W: Write>(
    state: &AppState,
    request: &HttpRequest,
    stream: &mut W,
    keep_alive: bool,
) -> Result<bool, (u16, String)> {
    handle_whatif_streaming_lane(state, request, stream, keep_alive, None)
}

/// [`handle_whatif_streaming`] pinned to one worker's cache lane (the
/// event-loop entry point; the pool calls the unlaned wrapper).
pub fn handle_whatif_streaming_lane<W: Write>(
    state: &AppState,
    request: &HttpRequest,
    stream: &mut W,
    keep_alive: bool,
    lane: Option<CacheLane>,
) -> Result<bool, (u16, String)> {
    let t0 = Instant::now();
    state.whatif_requests.add(1);
    let mut writer = crate::http::ChunkedWriter::new(stream, keep_alive);
    let outcome = whatif_lines(state, &request.body, lane, |line| {
        let mut chunk = String::with_capacity(line.len() + 1);
        chunk.push_str(line);
        chunk.push('\n');
        writer.write_chunk(&chunk)
    });
    let result = match outcome {
        Ok(()) => match writer.finish() {
            Ok(()) => Ok(true),
            Err(_) => Ok(false), // client gone mid-terminator
        },
        Err(e) => {
            state.error_responses.add(1);
            if writer.head_sent() {
                // The head is on the wire: the response cannot be
                // re-framed as an error, so truncate the chunked stream
                // (no terminator) — the client sees a torn frame and
                // the connection closes.
                Ok(false)
            } else {
                Err(err(&e))
            }
        }
    };
    state.latency[WHATIF_ENDPOINT].record(t0.elapsed().as_secs_f64() * 1e6);
    result
}

/// Resolve a model name; matching is case-insensitive and ignores
/// punctuation, so `llama3-8b`, `Llama 3 8B`, and `llama3_8b` all work.
fn resolve_model(name: &str) -> Result<ModelConfig, AcsError> {
    let canon: String = name.chars().filter(char::is_ascii_alphanumeric).collect::<String>()
        .to_ascii_lowercase();
    let presets = [
        ModelConfig::gpt3_13b(),
        ModelConfig::gpt3_175b(),
        ModelConfig::llama3_8b(),
        ModelConfig::llama3_70b(),
        ModelConfig::mixtral_8x7b(),
    ];
    for preset in presets {
        let preset_canon: String =
            preset.name().chars().filter(char::is_ascii_alphanumeric).collect::<String>()
                .to_ascii_lowercase();
        if preset_canon == canon {
            return Ok(preset);
        }
    }
    Err(AcsError::UnknownDevice { query: format!("model {name}") })
}

/// Service-side ceilings for `/v1/simulate`. The simulator itself only
/// checks that trace parameters are positive and finite, so without these
/// a single request body could ask a worker to materialise an arbitrarily
/// large synthetic trace. Generous for real use, fatal for abuse.
const MAX_RATE_RPS: f64 = 10_000.0;
const MAX_DURATION_S: f64 = 3_600.0;
const MAX_TRACE_REQUESTS: f64 = 1_000_000.0;
const MAX_DEVICE_COUNT: u32 = 4_096;
const MAX_MAX_BATCH: usize = 4_096;

struct SimulateRequest {
    config: DeviceConfig,
    model: ModelConfig,
    workload: WorkloadConfig,
    device_count: u32,
    rate_rps: f64,
    duration_s: f64,
    seed: u64,
    max_batch: usize,
}

fn parse_simulate(body: &str) -> Result<SimulateRequest, AcsError> {
    let request = parse(body)?;
    let config = match request.get("config") {
        Some(spec) => config_from_json(spec)?,
        None => DeviceConfig::a100_like(),
    };
    let model = resolve_model(request.get("model").and_then(Value::as_str).unwrap_or("Llama 3 8B"))?;

    let workload = match request.get("workload") {
        None => WorkloadConfig::paper_default(),
        Some(w) => {
            let batch = w.get("batch").map_or(Ok(32), |v| {
                v.as_u64().ok_or_else(|| AcsError::Json {
                    reason: "workload \"batch\" must be a non-negative integer".to_owned(),
                })
            })?;
            let input_len = w.get("input_len").map_or(Ok(2048), |v| {
                v.as_u64().ok_or_else(|| AcsError::Json {
                    reason: "workload \"input_len\" must be a non-negative integer".to_owned(),
                })
            })?;
            let output_len = w.get("output_len").map_or(Ok(1024), |v| {
                v.as_u64().ok_or_else(|| AcsError::Json {
                    reason: "workload \"output_len\" must be a non-negative integer".to_owned(),
                })
            })?;
            // WorkloadConfig::new asserts these invariants; validate here
            // so a bad request is a 400, not a worker panic.
            if batch == 0 || input_len == 0 {
                return Err(AcsError::InvalidConfig {
                    field: "workload".to_owned(),
                    reason: "batch and input_len must be positive".to_owned(),
                });
            }
            WorkloadConfig::new(batch, input_len, output_len)
        }
    };

    let device_count = match request.get("device_count") {
        None => 4,
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|n| (1..=MAX_DEVICE_COUNT).contains(n))
            .ok_or_else(|| AcsError::InvalidConfig {
                field: "device_count".to_owned(),
                reason: format!("must be a positive integer at most {MAX_DEVICE_COUNT}"),
            })?,
    };
    let trace = request.get("trace");
    let number = |key: &str, default: f64| -> Result<f64, AcsError> {
        match trace.and_then(|t| t.get(key)) {
            None => Ok(default),
            Some(v) => v.as_f64().ok_or_else(|| AcsError::Json {
                reason: format!("trace member {key:?} must be a number"),
            }),
        }
    };
    let rate_rps = number("rate_rps", 2.0)?;
    let duration_s = number("duration_s", 10.0)?;
    let bounded = |field: &str, value: f64, max: f64| -> Result<(), AcsError> {
        if value.is_finite() && value > 0.0 && value <= max {
            Ok(())
        } else {
            Err(AcsError::InvalidConfig {
                field: format!("trace.{field}"),
                reason: format!("must be a positive number at most {max}"),
            })
        }
    };
    bounded("rate_rps", rate_rps, MAX_RATE_RPS)?;
    bounded("duration_s", duration_s, MAX_DURATION_S)?;
    // Individually legal values can still multiply to an absurd trace.
    if rate_rps * duration_s > MAX_TRACE_REQUESTS {
        return Err(AcsError::InvalidConfig {
            field: "trace".to_owned(),
            reason: format!(
                "rate_rps * duration_s implies {:.0} requests, more than the {MAX_TRACE_REQUESTS:.0}-request limit",
                rate_rps * duration_s
            ),
        });
    }
    let seed = match trace.and_then(|t| t.get("seed")) {
        None => 7,
        Some(v) => v.as_u64().ok_or_else(|| AcsError::Json {
            reason: "trace member \"seed\" must be a non-negative integer".to_owned(),
        })?,
    };
    let max_batch = match request.get("max_batch") {
        None => 32,
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .filter(|n| (1..=MAX_MAX_BATCH).contains(n))
            .ok_or_else(|| AcsError::InvalidConfig {
                field: "max_batch".to_owned(),
                reason: format!("must be a positive integer at most {MAX_MAX_BATCH}"),
            })?,
    };
    Ok(SimulateRequest { config, model, workload, device_count, rate_rps, duration_s, seed, max_batch })
}

/// `POST /v1/simulate` — per-phase latency plus serving-level percentiles
/// for one accelerator configuration.
fn simulate(state: &AppState, body: &str, lane: Option<CacheLane>) -> Result<String, AcsError> {
    let req = parse_simulate(body)?;
    // One plan pair serves both the cache key (via its digests: the
    // model, workload, and node shape are content-addressed) and, on a
    // miss, the simulation itself.
    let plans = state.plan_store.get_or_build(
        &req.model,
        &req.workload,
        req.device_count,
        req.config.datatype().bytes(),
    )?;
    let u = |x: u64| Value::Number(x as f64);
    let key = CacheKey::from_value(&object(vec![
        ("v", Value::String("simulate-v2".to_owned())),
        ("config", config_fingerprint(&req.config)),
        (
            "plans",
            object(vec![
                ("prefill", Value::String(CacheKey::digest_hex(plans.prefill_digest()))),
                ("decode", Value::String(CacheKey::digest_hex(plans.decode_digest()))),
            ]),
        ),
        (
            "trace",
            object(vec![
                ("rate_rps", Value::Number(req.rate_rps)),
                ("duration_s", Value::Number(req.duration_s)),
                ("seed", u(req.seed)),
            ]),
        ),
        ("max_batch", u(req.max_batch as u64)),
    ]));
    let (response, _) = state.simulate_cache.get_or_try_insert_in(&key, lane, || {
        let system = acs_hw::SystemConfig::new(req.config.clone(), req.device_count)?;
        let sim = Simulator::new(system);
        let ttft_s = sim.try_ttft_planned(&plans.prefill)?;
        let tbt_s = sim.try_tbt_planned(&plans.decode)?;
        let trace = RequestTrace::synthetic(
            req.rate_rps,
            req.duration_s,
            LengthDistribution::chat_prompts(),
            LengthDistribution::chat_outputs(),
            req.seed,
        )?;
        let serving = simulate_serving_cached(
            &sim,
            &req.model,
            &trace,
            ServingConfig { max_batch: req.max_batch },
            &state.step_cache,
        );
        Ok::<_, AcsError>(
            object(vec![
                ("device", Value::String(req.config.name().to_owned())),
                ("model", Value::String(req.model.name().to_owned())),
                (
                    "per_layer",
                    object(vec![
                        ("ttft_s", Value::Number(ttft_s)),
                        ("tbt_s", Value::Number(tbt_s)),
                    ]),
                ),
                (
                    "serving",
                    object(vec![
                        ("requests", u(trace.len() as u64)),
                        ("completed", u(serving.completed as u64)),
                        ("mean_ttft_s", Value::Number(serving.mean_ttft_s)),
                        ("p50_ttft_s", Value::Number(serving.p50_ttft_s)),
                        ("p99_ttft_s", Value::Number(serving.p99_ttft_s)),
                        ("mean_tbt_s", Value::Number(serving.mean_tbt_s)),
                        (
                            "throughput_tokens_per_s",
                            Value::Number(serving.throughput_tokens_per_s),
                        ),
                        ("makespan_s", Value::Number(serving.makespan_s)),
                    ]),
                ),
            ])
            .to_json(),
        )
    })?;
    Ok(response)
}

/// `GET /v1/devices` — names in the curated database.
fn list_devices(state: &AppState) -> String {
    let names: Vec<Value> =
        state.db.iter().map(|r| Value::String(r.name.to_string())).collect();
    object(vec![
        ("count", Value::Number(names.len() as f64)),
        ("devices", Value::Array(names)),
    ])
    .to_json()
}

fn record_value(record: &DeviceRecord) -> Value {
    object(vec![
        ("name", Value::String(record.name.to_string())),
        ("vendor", Value::String(record.vendor.to_string())),
        ("year", Value::Number(f64::from(record.year))),
        ("market", Value::String(market_tag(record.market).to_owned())),
        ("tpp", Value::Number(record.tpp)),
        ("device_bw_gb_s", Value::Number(record.device_bw_gb_s)),
        ("die_area_mm2", Value::Number(record.die_area_mm2)),
        ("mem_gib", Value::Number(record.mem_gib)),
        ("mem_bw_gb_s", Value::Number(record.mem_bw_gb_s)),
        (
            "performance_density",
            record.performance_density().map_or(Value::Null, Value::Number),
        ),
    ])
}

/// `GET /v1/devices/{name}` — record plus its screening under each
/// vintage (case-insensitive substring lookup, 404 on no match).
fn device_detail(state: &AppState, name: &str) -> Result<String, AcsError> {
    let record = state.db.get(name)?;
    let metrics = record.to_metrics();
    Ok(object(vec![
        ("device", record_value(record)),
        ("screening", screening_value(&metrics, None)),
    ])
    .to_json())
}

fn stats_value(stats: CacheStats, len: usize) -> Value {
    let u = |x: u64| Value::Number(x as f64);
    object(vec![
        ("hits", u(stats.hits)),
        ("misses", u(stats.misses)),
        ("insertions", u(stats.insertions)),
        ("evictions", u(stats.evictions)),
        ("hit_rate", Value::Number(stats.hit_rate())),
        ("entries", Value::Number(len as f64)),
    ])
}

/// `GET /v1/metrics` — request counters, per-endpoint latency quantiles,
/// queue health, and cache statistics, all read from the state's telemetry
/// registry (the single source of truth) and emitted through the
/// canonical-JSON codec.
fn metrics(state: &AppState) -> String {
    state.sync_cache_telemetry();
    let u = |c: &Counter| Value::Number(c.get() as f64);
    let latency = ENDPOINTS
        .iter()
        .zip(&state.latency)
        .map(|(endpoint, histogram)| {
            let s = histogram.snapshot();
            (
                *endpoint,
                object(vec![
                    ("count", Value::Number(s.count as f64)),
                    ("mean_us", Value::Number(s.mean())),
                    ("p50_us", Value::Number(s.p50())),
                    ("p90_us", Value::Number(s.p90())),
                    ("p99_us", Value::Number(s.p99())),
                ]),
            )
        })
        .collect();
    object(vec![
        ("uptime_s", Value::Number(state.started.elapsed().as_secs_f64())),
        (
            "requests",
            object(vec![
                ("screen", u(&state.screen_requests)),
                ("simulate", u(&state.simulate_requests)),
                ("devices", u(&state.device_requests)),
                ("metrics", u(&state.metrics_requests)),
                ("whatif", u(&state.whatif_requests)),
                ("errors", u(&state.error_responses)),
            ]),
        ),
        ("latency_us", object(latency)),
        (
            "queue",
            object(vec![
                ("depth", Value::Number(state.queue_depth.get() as f64)),
                ("shed", u(&state.shed_responses)),
                ("shed_expensive", u(&state.shed_expensive)),
            ]),
        ),
        (
            "connections",
            object(vec![
                ("deadline_closed", u(&state.deadline_closed)),
                ("chaos_faults", u(&state.chaos_faults)),
            ]),
        ),
        ("reactor", object(vec![("events", u(&state.reactor_events))])),
        (
            "caches",
            object(vec![
                ("screen", stats_value(state.screen_cache.stats(), state.screen_cache.len())),
                (
                    "simulate",
                    stats_value(state.simulate_cache.stats(), state.simulate_cache.len()),
                ),
                ("sim_steps", stats_value(state.step_cache.stats(), state.step_cache.len())),
                ("whatif", stats_value(state.whatif_cache.stats(), state.whatif_cache.len())),
                // The event-loop workers' private raw response buffers:
                // byte-identical repeats short-circuit here before the
                // semantic caches are consulted.
                ("raw", object(vec![("hits", u(&state.raw_hits))])),
            ]),
        ),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(state: &AppState, path: &str, body: &str) -> (u16, Value) {
        let (status, body) = handle(
            state,
            &HttpRequest { method: "POST".into(), path: path.into(), body: body.into() },
        );
        (status, parse(&body).expect("response must be valid JSON"))
    }

    fn get(state: &AppState, path: &str) -> (u16, Value) {
        let (status, body) = handle(
            state,
            &HttpRequest { method: "GET".into(), path: path.into(), body: String::new() },
        );
        (status, parse(&body).expect("response must be valid JSON"))
    }

    #[test]
    fn screening_a_database_device_matches_the_policy_engine() {
        let state = AppState::new(64);
        let (status, body) = post(&state, "/v1/screen", "{\"device\":\"H100 SXM\"}");
        assert_eq!(status, 200);
        let s = body.get("screening").unwrap();
        assert_eq!(s.get("oct_2022").unwrap().as_str(), Some("license_required"));
        assert_eq!(s.get("strictest_acr").unwrap().as_str(), Some("license_required"));
        assert_eq!(s.get("dec_2024_hbm").unwrap().as_str(), Some("not_evaluated"));
        assert_eq!(s.get("export_license_required").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn screening_a_compliant_config_is_unregulated_in_2022() {
        let state = AppState::new(64);
        // The paper's §4 asymmetry: TPP-capped but bandwidth-rich.
        let body = "{\"config\":{\"core_count\":96,\"hbm_tb_s\":3.2,\"device_bw_gb_s\":599.0}}";
        let (status, response) = post(&state, "/v1/screen", body);
        assert_eq!(status, 200);
        let s = response.get("screening").unwrap();
        assert_eq!(s.get("oct_2022").unwrap().as_str(), Some("not_applicable"));
    }

    #[test]
    fn screen_responses_are_cached_across_repeats() {
        let state = AppState::new(64);
        let body = "{\"device\":\"A100 80GB\"}";
        let (s1, r1) = post(&state, "/v1/screen", body);
        let (s2, r2) = post(&state, "/v1/screen", body);
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(r1.to_json(), r2.to_json());
        let stats = state.screen_cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn grid_screens_run_the_factored_sweep_and_cache() {
        let state = AppState::new(64);
        let body = "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
                    \"l1_kib\":[192,1024],\"l2_mib\":[40],\"hbm_tb_s\":[2.0,3.2],\
                    \"device_bw_gb_s\":[600.0],\"tpp_target\":4800}}";
        let (status, r1) = post(&state, "/v1/screen", body);
        assert_eq!(status, 200, "{}", r1.to_json());
        let grid = r1.get("grid").unwrap();
        assert_eq!(grid.get("points").unwrap().as_u64(), Some(4));
        assert_eq!(grid.get("evaluated").unwrap().as_u64(), Some(4));
        assert_eq!(grid.get("failed").unwrap().as_u64(), Some(0));
        let designs = r1.get("designs").unwrap().as_array().unwrap();
        assert_eq!(designs.len(), 4);
        // The response prices through the lattice engine; comparing
        // against the library's factored runner doubles as a service-
        // level bit-equivalence check between the two paths.
        let spec = SweepSpec {
            systolic_dims: vec![16],
            lanes_per_core: vec![4],
            l1_kib: vec![192, 1024],
            l2_mib: vec![40],
            hbm_tb_s: vec![2.0, 3.2],
            device_bw_gb_s: vec![600.0],
        };
        let reference = DseRunner::new(ModelConfig::llama3_8b(), WorkloadConfig::paper_default())
            .run_factored(&spec, 4800.0);
        for (entry, (index, design)) in designs.iter().zip(&reference.designs) {
            assert_eq!(entry.get("index").unwrap().as_u64(), Some(*index as u64));
            let d = entry.get("design").unwrap();
            assert_eq!(d.get("name").unwrap().as_str(), Some(design.name.as_str()));
            assert_eq!(d.get("ttft_s").unwrap().as_f64(), Some(design.ttft_s));
            assert_eq!(d.get("tbt_s").unwrap().as_f64(), Some(design.tbt_s));
        }
        // Repeats are response-cache hits (same cache as scalar screens).
        let (_, r2) = post(&state, "/v1/screen", body);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(state.screen_cache.stats().hits, 1);
    }

    #[test]
    fn scenario_grids_group_designs_per_scenario() {
        let state = AppState::new(64);
        let body = "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
                    \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[2.0,3.2],\
                    \"device_bw_gb_s\":[600.0],\"tpp_target\":4800,\
                    \"scenario\":[\"dense-llama3-fp16-tp4\",\"moe-mixtral-fp16-tp4-ep4\"]}}";
        let (status, r1) = post(&state, "/v1/screen", body);
        assert_eq!(status, 200, "{}", r1.to_json());
        let grid = r1.get("grid").unwrap();
        assert_eq!(grid.get("points").unwrap().as_u64(), Some(4));
        assert_eq!(grid.get("scenario_count").unwrap().as_u64(), Some(2));
        assert_eq!(grid.get("failed").unwrap().as_u64(), Some(0));
        let groups = r1.get("scenarios").unwrap().as_array().unwrap();
        assert_eq!(groups.len(), 2);
        let dense = &groups[0];
        assert_eq!(dense.get("scenario").unwrap().as_str(), Some("dense-llama3-fp16-tp4"));
        assert_eq!(dense.get("devices").unwrap().as_u64(), Some(4));
        let moe = &groups[1];
        assert_eq!(moe.get("scenario").unwrap().as_str(), Some("moe-mixtral-fp16-tp4-ep4"));
        assert_eq!(moe.get("model").unwrap().as_str(), Some("Mixtral 8x7B"));
        assert_eq!(moe.get("parallelism").unwrap().as_str(), Some("tp4/ep4/pp1"));
        assert_eq!(moe.get("evaluated").unwrap().as_u64(), Some(2));
        // The dense scenario reproduces the scenario-less default runner
        // bit for bit (same model, workload, dtype, node).
        let plain = "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
                     \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[2.0,3.2],\
                     \"device_bw_gb_s\":[600.0],\"tpp_target\":4800}}";
        let (_, r_plain) = post(&state, "/v1/screen", plain);
        let dense_designs = dense.get("designs").unwrap();
        assert_eq!(dense_designs.to_json(), r_plain.get("designs").unwrap().to_json());
        // The MoE lowering prices more communication than the dense one
        // at the same silicon: its designs must differ.
        let ttft = |entry: &Value| {
            entry.get("design").unwrap().get("ttft_s").unwrap().as_f64().unwrap()
        };
        let moe_designs = moe.get("designs").unwrap().as_array().unwrap();
        let dense_designs = dense_designs.as_array().unwrap();
        assert!(ttft(&moe_designs[0]) != ttft(&dense_designs[0]));
        // Repeats hit the response cache.
        let (_, r2) = post(&state, "/v1/screen", body);
        assert_eq!(r1.to_json(), r2.to_json());
        assert!(state.screen_cache.stats().hits >= 1);
    }

    #[test]
    fn scenario_grid_rejections_are_typed_400s() {
        let state = AppState::new(64);
        let grid_with = |scenario: &str| {
            format!(
                "{{\"grid\":{{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
                 \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[2.0],\
                 \"device_bw_gb_s\":[600.0],\"tpp_target\":4800,\
                 \"scenario\":{scenario}}}}}"
            )
        };
        let cases = [
            ("\"dense-gpt5\"", "invalid_config"),          // unknown name
            ("[]", "json"),                                  // empty axis
            ("7", "json"),                                   // wrong type
            ("{\"model\":\"llama3_8b\",\"experts\":400}", "invalid_config"), // expert bomb
            ("{\"model\":\"mixtral_8x7b\",\"pipeline_stages\":0}", "invalid_config"),
            ("{\"model\":\"mixtral_8x7b\",\"expert\":3}", "invalid_config"), // 8 % 3 != 0
        ];
        for (scenario, kind) in cases {
            let (status, response) = post(&state, "/v1/screen", &grid_with(scenario));
            assert_eq!(status, 400, "scenario {scenario:?} -> {}", response.to_json());
            assert_eq!(
                response.get("error").unwrap().get("kind").unwrap().as_str(),
                Some(kind),
                "scenario {scenario:?}"
            );
        }
        // The scenario axis multiplies into the point ceiling: 2048
        // hardware points x 3 scenarios > 4096.
        let body = format!(
            "{{\"grid\":{{\"systolic_dims\":[16],\"lanes_per_core\":[1,2,4,8],\
             \"l1_kib\":[64,128,192,256,512,1024,2048,4096],\
             \"l2_mib\":[8,16,32,40,48,64,80,96],\"hbm_tb_s\":[1.0,2.0,3.0,4.0],\
             \"device_bw_gb_s\":[500.0,600.0],\"tpp_target\":4800,\
             \"scenario\":[\"dense-llama3-fp16-tp4\",\"dense-gpt3-fp16-tp4\",\
             \"moe-mixtral-fp16-tp4-ep4\"]}}}}"
        );
        let (status, response) = post(&state, "/v1/screen", &body);
        assert_eq!(status, 400, "{}", response.to_json());
        assert_eq!(
            response.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("invalid_config")
        );
        assert_eq!(state.screen_cache.stats().misses, 0, "rejected before touching the cache");
    }

    #[test]
    fn grid_faults_surface_in_the_failure_ledger() {
        let state = AppState::new(64);
        // Zero HBM bandwidth is invalid per point, not fatal to the grid.
        let body = "{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
                    \"l1_kib\":[192],\"l2_mib\":[40],\"hbm_tb_s\":[0.0,2.0],\
                    \"device_bw_gb_s\":[600.0],\"tpp_target\":4800}}";
        let (status, r) = post(&state, "/v1/screen", body);
        assert_eq!(status, 200, "{}", r.to_json());
        assert_eq!(r.get("grid").unwrap().get("evaluated").unwrap().as_u64(), Some(1));
        assert_eq!(r.get("grid").unwrap().get("failed").unwrap().as_u64(), Some(1));
        let failure = &r.get("failures").unwrap().as_array().unwrap()[0];
        assert_eq!(failure.get("kind").unwrap().as_str(), Some("invalid_config"));
    }

    #[test]
    fn malformed_grids_are_typed_400s() {
        let state = AppState::new(64);
        let cases = [
            // grid alongside a device/config subject
            ("{\"grid\":{},\"device\":\"H100 SXM\"}", "json"),
            // unknown member
            ("{\"grid\":{\"warp_counts\":[3]}}", "json"),
            // empty axis
            ("{\"grid\":{\"systolic_dims\":[],\"lanes_per_core\":[4],\"l1_kib\":[192],\
              \"l2_mib\":[40],\"hbm_tb_s\":[2.0],\"device_bw_gb_s\":[600.0],\
              \"tpp_target\":4800}}", "json"),
            // missing tpp_target
            ("{\"grid\":{\"systolic_dims\":[16],\"lanes_per_core\":[4],\"l1_kib\":[192],\
              \"l2_mib\":[40],\"hbm_tb_s\":[2.0],\"device_bw_gb_s\":[600.0]}}", "json"),
        ];
        for (body, kind) in cases {
            let (status, response) = post(&state, "/v1/screen", body);
            assert_eq!(status, 400, "body {body:?}");
            assert_eq!(
                response.get("error").unwrap().get("kind").unwrap().as_str(),
                Some(kind),
                "body {body:?}"
            );
        }
    }

    #[test]
    fn oversized_grids_are_rejected_before_evaluation() {
        let state = AppState::new(64);
        // 16 × 8 × 8 × 8 = 8192 points > the 4096 ceiling.
        let body = format!(
            "{{\"grid\":{{\"systolic_dims\":[16],\"lanes_per_core\":[4],\
             \"l1_kib\":{l1},\"l2_mib\":{l2},\"hbm_tb_s\":{hbm},\
             \"device_bw_gb_s\":{bw},\"tpp_target\":4800}}}}",
            l1 = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]",
            l2 = "[1,2,3,4,5,6,7,8]",
            hbm = "[1,2,3,4,5,6,7,8]",
            bw = "[1,2,3,4,5,6,7,8]",
        );
        let (status, response) = post(&state, "/v1/screen", &body);
        assert_eq!(status, 400, "{}", response.to_json());
        assert_eq!(
            response.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("invalid_config")
        );
        assert_eq!(state.screen_cache.stats().misses, 0, "rejected before touching the cache");
    }

    #[test]
    fn hbm_package_screening_applies_the_2024_rule() {
        let state = AppState::new(64);
        // H100 SXM: 3350 GB/s over an 814 mm² die-sized package would be
        // > 3.3 GB/s/mm² — controlled outright.
        let (status, body) =
            post(&state, "/v1/screen", "{\"device\":\"H100 SXM\",\"hbm_package_area_mm2\":814}");
        assert_eq!(status, 200);
        let s = body.get("screening").unwrap();
        assert_eq!(s.get("dec_2024_hbm").unwrap().as_str(), Some("controlled"));
    }

    #[test]
    fn unknown_devices_are_typed_404s() {
        let state = AppState::new(64);
        let (status, body) = post(&state, "/v1/screen", "{\"device\":\"TPU v9\"}");
        assert_eq!(status, 404);
        assert_eq!(
            body.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unknown_device")
        );
    }

    #[test]
    fn malformed_bodies_are_typed_400s() {
        let state = AppState::new(64);
        for body in ["not json", "{}", "{\"device\":7}", "{\"config\":{\"warp_count\":3}}"] {
            let (status, response) = post(&state, "/v1/screen", body);
            assert_eq!(status, 400, "body {body:?}");
            assert_eq!(
                response.get("error").unwrap().get("kind").unwrap().as_str(),
                Some("json"),
                "body {body:?}"
            );
        }
    }

    #[test]
    fn simulate_returns_latency_and_percentiles_and_caches_repeats() {
        let state = AppState::new(64);
        let body = "{\"model\":\"llama3-8b\",\"trace\":{\"rate_rps\":2,\"duration_s\":5}}";
        let (status, r1) = post(&state, "/v1/simulate", body);
        assert_eq!(status, 200);
        let serving = r1.get("serving").unwrap();
        let p50 = serving.get("p50_ttft_s").unwrap().as_f64().unwrap();
        let p99 = serving.get("p99_ttft_s").unwrap().as_f64().unwrap();
        assert!(p50 > 0.0 && p50 <= p99);
        assert!(r1.get("per_layer").unwrap().get("ttft_s").unwrap().as_f64().unwrap() > 0.0);
        let (_, r2) = post(&state, "/v1/simulate", body);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(state.simulate_cache.stats().hits, 1);
    }

    #[test]
    fn zero_batch_workloads_are_rejected_not_panicked() {
        let state = AppState::new(64);
        let (status, body) =
            post(&state, "/v1/simulate", "{\"workload\":{\"batch\":0,\"input_len\":128}}");
        assert_eq!(status, 400);
        assert_eq!(
            body.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("invalid_config")
        );
    }

    #[test]
    fn oversized_traces_are_rejected_not_materialised() {
        let state = AppState::new(64);
        for body in [
            "{\"trace\":{\"rate_rps\":1e6,\"duration_s\":1e9}}",
            "{\"trace\":{\"rate_rps\":-1}}",
            "{\"trace\":{\"duration_s\":1e9}}",
            // Individually within bounds, product over the request limit.
            "{\"trace\":{\"rate_rps\":10000,\"duration_s\":3600}}",
            "{\"device_count\":100000}",
            "{\"max_batch\":100000}",
        ] {
            let (status, response) = post(&state, "/v1/simulate", body);
            assert_eq!(status, 400, "body {body:?} -> {}", response.to_json());
            assert_eq!(
                response.get("error").unwrap().get("kind").unwrap().as_str(),
                Some("invalid_config"),
                "body {body:?}"
            );
        }
    }

    #[test]
    fn simulate_distinguishes_configs_in_the_cache() {
        let state = AppState::new(64);
        let slow = "{\"config\":{\"hbm_tb_s\":2.0},\"trace\":{\"duration_s\":5}}";
        let fast = "{\"config\":{\"hbm_tb_s\":3.2},\"trace\":{\"duration_s\":5}}";
        let (_, r_slow) = post(&state, "/v1/simulate", slow);
        let (_, r_fast) = post(&state, "/v1/simulate", fast);
        let tbt = |r: &Value| {
            r.get("per_layer").unwrap().get("tbt_s").unwrap().as_f64().unwrap()
        };
        assert!(tbt(&r_fast) < tbt(&r_slow), "more bandwidth must decode faster");
        assert_eq!(state.simulate_cache.stats().misses, 2);
    }

    #[test]
    fn device_listing_and_detail_round_trip() {
        let state = AppState::new(64);
        let (status, listing) = get(&state, "/v1/devices");
        assert_eq!(status, 200);
        let count = listing.get("count").unwrap().as_u64().unwrap();
        assert_eq!(count, 65);
        let (status, detail) = get(&state, "/v1/devices/A800%2080GB");
        assert_eq!(status, 200);
        let device = detail.get("device").unwrap();
        assert_eq!(device.get("name").unwrap().as_str(), Some("A800 80GB"));
        // The A800 is the bandwidth-downgraded export SKU: under 600 GB/s
        // interconnect, over none of the 2023 density clauses' exemptions.
        let screening = detail.get("screening").unwrap();
        assert_eq!(screening.get("oct_2022").unwrap().as_str(), Some("not_applicable"));
        let (status, _) = get(&state, "/v1/devices/NoSuchCard");
        assert_eq!(status, 404);
    }

    #[test]
    fn metrics_report_request_counts_and_cache_stats() {
        let state = AppState::new(64);
        post(&state, "/v1/screen", "{\"device\":\"A100 40GB\"}");
        post(&state, "/v1/screen", "{\"device\":\"A100 40GB\"}");
        let (status, m) = get(&state, "/v1/metrics");
        assert_eq!(status, 200);
        let requests = m.get("requests").unwrap();
        assert_eq!(requests.get("screen").unwrap().as_u64(), Some(2));
        let screen_cache = m.get("caches").unwrap().get("screen").unwrap();
        assert_eq!(screen_cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(screen_cache.get("misses").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_body_parses_and_reports_latency_and_queue_from_the_registry() {
        let state = AppState::new(64);
        post(&state, "/v1/screen", "{\"device\":\"A100 40GB\"}");
        get(&state, "/v1/devices");
        let (status, raw) = handle(
            &state,
            &HttpRequest { method: "GET".into(), path: "/v1/metrics".into(), body: String::new() },
        );
        assert_eq!(status, 200);
        // The body must round-trip through the canonical-JSON codec.
        let m = parse(&raw).expect("metrics body must be valid canonical JSON");
        let latency = m.get("latency_us").expect("latency_us section");
        for endpoint in ENDPOINTS {
            let section = latency.get(endpoint).expect("every endpoint has a latency entry");
            assert!(section.get("p50_us").unwrap().as_f64().is_some());
            assert!(section.get("p99_us").unwrap().as_f64().is_some());
        }
        let screen = latency.get("screen").unwrap();
        assert_eq!(screen.get("count").unwrap().as_u64(), Some(1));
        assert!(screen.get("p50_us").unwrap().as_f64().unwrap() > 0.0);
        let queue = m.get("queue").expect("queue section");
        assert_eq!(queue.get("shed").unwrap().as_u64(), Some(0));
        // The request counters and the registry are the same numbers: one
        // source of truth.
        assert_eq!(
            m.get("requests").unwrap().get("screen").unwrap().as_u64(),
            Some(state.telemetry().counter("serve.requests.screen").get()),
        );
        // Mirrored cache gauges landed in the registry.
        let gauges = state.telemetry().gauge_values();
        assert!(gauges.iter().any(|(n, v)| n == "serve.cache.screen.misses" && *v == 1));
    }

    #[test]
    fn unroutable_paths_and_methods_get_protocol_errors() {
        let state = AppState::new(64);
        let (status, body) = get(&state, "/v2/nothing");
        assert_eq!(status, 404);
        assert_eq!(body.get("error").unwrap().get("kind").unwrap().as_str(), Some("protocol"));
        let (status, _) = get(&state, "/v1/screen");
        assert_eq!(status, 405);
    }

    #[test]
    fn whatif_baseline_screens_db_and_fleet() {
        let state = AppState::new(64);
        let (status, body) = post(&state, "/v1/whatif", "{}");
        assert_eq!(status, 200, "{}", body.to_json());
        let summary = body.get("summary").unwrap();
        assert_eq!(summary.get("variants").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("devices").unwrap().as_u64(), Some(65));
        assert_eq!(summary.get("fleet_designs").unwrap().as_u64(), Some(4096));
        assert_eq!(summary.get("fleet_failures").unwrap().as_u64(), Some(0));
        let records = body.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 1);
        // The baseline flips nothing against itself, and the fleet block
        // carries real distributions.
        let devices = records[0].get("devices").unwrap();
        assert!(devices.get("newly_restricted").unwrap().as_array().unwrap().is_empty());
        let fleet = records[0].get("fleet").unwrap();
        assert_eq!(fleet.get("total").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn whatif_grids_stream_in_order_and_cache_repeats() {
        let state = AppState::new(64);
        let body = "{\"grid\":{\"tpp_license\":[2400,4800],\"mem_bw_license\":[0,800]}}";
        let (status, r1) = post(&state, "/v1/whatif", body);
        assert_eq!(status, 200, "{}", r1.to_json());
        let records = r1.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 4);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.get("variant").unwrap().as_u64(), Some(i as u64));
        }
        // The mem-bw axis actually varies the regime: the 800 GB/s
        // variants restrict devices the baseline leaves alone.
        let flips = |i: usize| {
            records[i]
                .get("devices")
                .unwrap()
                .get("newly_restricted")
                .unwrap()
                .as_array()
                .unwrap()
                .len()
        };
        // Last axis fastest: variant 2 is (tpp_license 4800, mem-bw off)
        // — the published baseline — and variant 3 adds the 800 GB/s
        // memory-BW rule to it.
        assert_eq!(flips(2), 0, "published regime at its own thresholds flips nothing");
        assert!(flips(3) > 0, "an 800 GB/s memory-BW rule must catch new devices");
        assert!(flips(0) > 0, "a 2400-TPP licence line must catch new devices");
        // Repeats are response-cache hits; equivalent rule/grid shapes
        // share the entry.
        let (_, r2) = post(&state, "/v1/whatif", body);
        assert_eq!(r1.to_json(), r2.to_json());
        let stats = state.cache_stats()[3];
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn whatif_scenarios_swap_the_fleet_workload() {
        let state = AppState::new(64);
        // The same rule under an MoE scenario prices the fleet under the
        // Mixtral expert-parallel lowering; the trailer names it.
        let body = "{\"rule\":{\"tpp_license\":2400},\
                    \"scenario\":\"moe-mixtral-fp16-tp4-ep4\"}";
        let (status, r1) = post(&state, "/v1/whatif", body);
        assert_eq!(status, 200, "{}", r1.to_json());
        let summary = r1.get("summary").unwrap();
        assert_eq!(summary.get("scenario").unwrap().as_str(), Some("moe-mixtral-fp16-tp4-ep4"));
        assert_eq!(summary.get("fleet_designs").unwrap().as_u64(), Some(4096));
        // Scenario-less requests keep the historical trailer shape and a
        // separate cache entry.
        let (_, r_plain) = post(&state, "/v1/whatif", "{\"rule\":{\"tpp_license\":2400}}");
        assert!(r_plain.get("summary").unwrap().get("scenario").is_none());
        assert_eq!(state.cache_stats()[3].misses, 2);
        // Unknown scenarios are typed 400s before the fleet is priced.
        let (status, response) =
            post(&state, "/v1/whatif", "{\"scenario\":\"dense-gpt5\"}");
        assert_eq!(status, 400, "{}", response.to_json());
        assert_eq!(
            response.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("invalid_config")
        );
        // Repeats of the scenario request are cache hits.
        let (_, r2) = post(&state, "/v1/whatif", body);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(state.cache_stats()[3].hits, 1);
    }

    #[test]
    fn whatif_rule_and_equivalent_grid_share_a_cache_entry() {
        let state = AppState::new(64);
        let (s1, r1) = post(&state, "/v1/whatif", "{\"rule\":{\"tpp_license\":2400}}");
        let (s2, r2) = post(&state, "/v1/whatif", "{\"grid\":{\"tpp_license\":[2400]}}");
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(r1.to_json(), r2.to_json());
        let stats = state.cache_stats()[3];
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn malformed_whatif_requests_are_typed_400s() {
        let state = AppState::new(64);
        for body in [
            "not json",
            "[1]",
            "{\"grid\":{\"bogus_axis\":[1]}}",
            "{\"grid\":{\"tpp_license\":[]}}",
            "{\"rule\":{\"tpp_license\":-5}}",
            "{\"rule\":{},\"grid\":{}}",
            "{\"tpp_target\":1e9}",
        ] {
            let (status, response) = post(&state, "/v1/whatif", body);
            assert_eq!(status, 400, "body {body:?} -> {}", response.to_json());
        }
        // Rejected before the fleet was priced or anything was cached.
        assert_eq!(state.cache_stats()[3].misses, 0);
        let (status, _) = handle(
            &state,
            &HttpRequest { method: "GET".into(), path: "/v1/whatif".into(), body: String::new() },
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn whatif_streaming_writes_one_chunk_per_record() {
        let state = AppState::new(64);
        let request = HttpRequest {
            method: "POST".into(),
            path: "/v1/whatif".into(),
            body: "{\"grid\":{\"tpp_license\":[2400,4800]}}".into(),
        };
        let mut wire = Vec::new();
        let wire_ok = handle_whatif_streaming(&state, &request, &mut wire, true).unwrap();
        assert!(wire_ok);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        // 2 record chunks + 1 trailer chunk + the terminator.
        let chunk_count = text.split("\r\n").filter(|l| l.starts_with('{')).count();
        assert_eq!(chunk_count, 3, "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        // Pre-stream failures surface as plain framed errors.
        let bad = HttpRequest {
            method: "POST".into(),
            path: "/v1/whatif".into(),
            body: "not json".into(),
        };
        let mut wire = Vec::new();
        let (status, body) =
            handle_whatif_streaming(&state, &bad, &mut wire, true).unwrap_err();
        assert_eq!(status, 400);
        assert!(wire.is_empty(), "no bytes may precede a plain error");
        assert!(body.contains("error"));
    }

    #[test]
    fn model_resolution_is_spelling_tolerant() {
        assert_eq!(resolve_model("llama3-8b").unwrap().name(), "Llama 3 8B");
        assert_eq!(resolve_model("Llama 3 8B").unwrap().name(), "Llama 3 8B");
        assert_eq!(resolve_model("GPT3_175B").unwrap().name(), "GPT-3 175B");
        assert!(resolve_model("gpt5").is_err());
    }
}
