//! `acs-serve`: a zero-dependency HTTP/1.1 query service over the
//! reproduction's policy and simulation engines.
//!
//! The service turns the library pipeline into an interactive tool: an
//! analyst posts an accelerator description and gets back its export
//! classification under each Advanced Computing Rule vintage
//! (`POST /v1/screen`) or its simulated per-phase latency and serving
//! percentiles (`POST /v1/simulate`), without writing Rust. Results are
//! memoised through `acs-cache`'s content-addressed cache — repeated
//! queries, the common case when a dashboard polls a fixed set of
//! designs, are served from memory; `GET /v1/metrics` exposes the hit
//! counters that prove it.
//!
//! Built entirely on `std::net`: no async runtime, no HTTP framework.
//! A fixed worker pool drains a bounded accept queue; overflow is shed
//! with a 503 (`overloaded` in the error taxonomy) rather than queued
//! without bound, and per-connection read/write timeouts bound the
//! damage a slow client can do.
//!
//! # Example
//!
//! ```
//! use acs_serve::{http, Server, ServeConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr();
//! let (handle, thread) = server.spawn();
//! let (status, body) = http::http_request(
//!     addr, "POST", "/v1/screen", "{\"device\":\"H100 SXM\"}", Duration::from_secs(5))?;
//! assert_eq!(status, 200);
//! assert!(body.contains("license_required"));
//! handle.shutdown();
//! thread.join().unwrap();
//! # Ok::<(), acs_errors::AcsError>(())
//! ```

pub mod chaos;
mod event_loop;
pub mod handlers;
pub mod http;
pub mod loadgen;
pub mod reactor;

pub use chaos::{FaultPlan, FaultStream, SocketControl};
pub use handlers::{error_body, handle, status_for, AppState};
pub use http::{ClientConfig, HttpClient};
pub use loadgen::{run_loadgen, LoadMode, LoadgenConfig, LoadgenReport};

use acs_errors::AcsError;
use std::collections::VecDeque;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before load shedding.
    pub queue_depth: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
    /// Total wall-clock budget for reading one request once its first
    /// byte has arrived. A per-operation timeout alone cannot stop a
    /// slow-loris client that drips one byte per interval — each read
    /// succeeds inside `io_timeout` while the worker stays pinned
    /// forever. The deadline bounds the whole request instead; on
    /// expiry the connection is closed and counted in
    /// `connections.deadline_closed`.
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the worker reclaims it.
    pub keepalive_idle: Duration,
    /// When set, every accepted socket is wrapped in a [`FaultStream`]
    /// whose per-connection schedule derives from this seed: torn
    /// reads, partial writes, stalls, and mid-message disconnects are
    /// injected server-side. Chaos-testing only; `None` in production.
    pub chaos_seed: Option<u64>,
    /// Capacity of each response cache (screen, simulate, sim-steps,
    /// whatif).
    pub cache_capacity: usize,
    /// Serve through the non-blocking epoll event loop (shard workers
    /// with private cache lanes, pipelined HTTP/1.1, priority
    /// shedding). When false — or when the build target has no reactor
    /// — the blocking worker pool serves instead, as the differential
    /// baseline.
    pub event_loop: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            keepalive_idle: Duration::from_secs(5),
            chaos_seed: None,
            cache_capacity: 4096,
            event_loop: true,
        }
    }
}

/// The per-connection timing policy workers apply, split out of
/// [`ServeConfig`] so the connection loop does not care about
/// server-level knobs (bind address, pool sizes).
#[derive(Debug, Clone)]
struct ConnPolicy {
    io_timeout: Duration,
    request_deadline: Duration,
    keepalive_idle: Duration,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
    /// Workers currently parked in `available.wait` (incremented under
    /// the queue lock before waiting). The accept loop only signals the
    /// condvar when someone is actually parked, so a burst of accepts
    /// against busy workers doesn't pay a futex wake per connection —
    /// the mutex convoy that serialised the old hand-off.
    waiting: AtomicUsize,
}

/// Requests a running server stop accepting and drain. Cloneable and
/// sendable across threads; `shutdown` is idempotent.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Signal shutdown and wake the accept loop. Returns once the signal
    /// is delivered; use the join handle from [`Server::spawn`] to wait
    /// for the drain.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // The accept loop blocks in `accept()`; a throwaway local
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    shared: Arc<Shared>,
    config: ServeConfig,
    addr: SocketAddr,
}

impl Server {
    /// Bind the listener and build the shared state.
    ///
    /// # Errors
    ///
    /// [`AcsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Self, AcsError> {
        let io_err = |e: std::io::Error| AcsError::Io {
            path: config.addr.clone(),
            reason: e.to_string(),
        };
        let listener = TcpListener::bind(&config.addr).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        Ok(Server {
            listener,
            state: Arc::new(AppState::new(config.cache_capacity)),
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stop: AtomicBool::new(false),
                waiting: AtomicUsize::new(0),
            }),
            config,
            addr,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop the server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared), addr: self.addr }
    }

    /// The shared application state (for in-process metrics inspection).
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Accept and serve until [`ServerHandle::shutdown`] is called.
    /// Blocks the calling thread; worker threads are joined before
    /// returning, so all in-flight requests finish.
    ///
    /// With `event_loop: true` (the default) requests go through the
    /// non-blocking epoll tier; targets without a reactor — and any
    /// event-loop setup failure — fall back to the blocking worker
    /// pool, which also serves when the flag is off.
    pub fn run(self) {
        if self.config.event_loop
            && reactor::supported()
            && event_loop::run(&self.listener, &self.state, &self.shared, &self.config).is_ok()
        {
            return;
        }
        self.run_pool();
    }

    fn run_pool(self) {
        let policy = ConnPolicy {
            io_timeout: self.config.io_timeout,
            request_deadline: self.config.request_deadline,
            keepalive_idle: self.config.keepalive_idle,
        };
        let chaos = self.config.chaos_seed.map(FaultPlan::gentle);
        let conn_seq = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                let state = Arc::clone(&self.state);
                let policy = policy.clone();
                let chaos = chaos.clone();
                let conn_seq = Arc::clone(&conn_seq);
                std::thread::spawn(move || {
                    worker_loop(&shared, &state, &policy, chaos.as_ref(), &conn_seq);
                })
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break; // the wake-up connection, or a straggler: drop it
            }
            // Keep-alive makes Nagle hostile: a small response followed
            // by the client's next small request deadlocks against
            // delayed ACKs for ~40 ms per round trip. Flush segments
            // immediately; best-effort, the socket still works without.
            let _ = stream.set_nodelay(true);
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if queue.len() >= self.config.queue_depth {
                drop(queue);
                self.state.record_shed();
                shed(stream);
            } else {
                queue.push_back(stream);
                let depth = queue.len();
                drop(queue);
                // The gauge write happens outside the lock, and the
                // condvar is only signalled when a worker is actually
                // parked: busy workers re-check the queue themselves,
                // so a burst of accepts doesn't stampede the futex.
                self.state.record_queue_depth(depth);
                if self.shared.waiting.load(Ordering::SeqCst) > 0 {
                    self.shared.available.notify_one();
                }
            }
        }

        self.shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// [`Server::run`] on a new thread; returns the shutdown handle and
    /// the join handle.
    #[must_use]
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let thread = std::thread::spawn(move || self.run());
        (handle, thread)
    }
}

/// How long the accept thread may spend writing a 503 to a shed
/// connection. Shedding happens exactly when the server is overloaded, so
/// a stalled client must not hold up `accept()` for the full per-request
/// `io_timeout` — give the courtesy response a tight budget and otherwise
/// just drop the connection.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// Reject one connection with a 503 without occupying a worker.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let error = AcsError::Overloaded {
        reason: "accept queue full; retry with backoff".to_owned(),
    };
    let _ = http::write_response(&mut stream, 503, &handlers::error_body(&error));
}

fn worker_loop(
    shared: &Shared,
    state: &AppState,
    policy: &ConnPolicy,
    chaos: Option<&FaultPlan>,
    conn_seq: &AtomicU64,
) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let popped = loop {
                if let Some(stream) = queue.pop_front() {
                    break Some((stream, queue.len()));
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                // Count this worker as parked *before* releasing the
                // lock inside `wait`: the accept loop reads the counter
                // after its push, so either it sees us parked and
                // signals, or we see its connection on the re-check.
                shared.waiting.fetch_add(1, Ordering::SeqCst);
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
                shared.waiting.fetch_sub(1, Ordering::SeqCst);
            };
            popped.map(|(stream, depth)| {
                // Gauge write after the lock is gone.
                drop(queue);
                state.record_queue_depth(depth);
                stream
            })
        };
        let Some(stream) = stream else { return };
        match chaos {
            None => serve_connection(state, stream, policy),
            Some(plan) => {
                // Each connection replays its own schedule: seed mixed
                // with a connection ordinal via the SplitMix64 increment.
                let n = conn_seq.fetch_add(1, Ordering::Relaxed);
                let per_conn = plan.reseeded(plan.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let tally = Arc::new(AtomicU64::new(0));
                let faulted = FaultStream::new(stream, per_conn).with_tally(Arc::clone(&tally));
                serve_connection(state, faulted, policy);
                // The stream is consumed by the connection loop; the
                // shared tally carries the fault count back out.
                state.record_chaos(tally.load(Ordering::Relaxed));
            }
        }
    }
}

/// A read-side wrapper enforcing a whole-request wall-clock deadline on
/// top of the per-operation socket timeout. Unarmed (between requests)
/// it lets the keep-alive idle budget govern; once armed, each read gets
/// `min(per-op timeout, time left until the deadline)`, so a client
/// dripping bytes slowly enough to satisfy every per-op timeout still
/// runs out of wall clock.
struct DeadlineStream<S> {
    inner: S,
    per_op: Duration,
    budget: Duration,
    deadline: Option<Instant>,
    expired: bool,
}

impl<S: SocketControl> DeadlineStream<S> {
    fn new(inner: S, per_op: Duration, budget: Duration) -> Self {
        DeadlineStream { inner, per_op, budget, deadline: None, expired: false }
    }

    /// Between requests: no deadline, idle-reap timeout on the socket.
    fn disarm(&mut self, idle: Duration) {
        self.deadline = None;
        let _ = self.inner.control_read_timeout(Some(idle));
    }

    /// A request's first byte has arrived: start its wall-clock budget.
    fn arm(&mut self) {
        self.deadline = Some(Instant::now() + self.budget);
    }

    /// Whether a read failed because the request deadline ran out (as
    /// opposed to an idle client or a genuine socket error).
    fn expired(&self) -> bool {
        self.expired
    }
}

impl<S: Read + SocketControl> Read for DeadlineStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.expired = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request read deadline exhausted",
                ));
            }
            // Zero-duration socket timeouts are rejected by the OS;
            // clamp the final sliver up to a millisecond.
            let per_read = remaining.min(self.per_op).max(Duration::from_millis(1));
            let _ = self.inner.control_read_timeout(Some(per_read));
        }
        match self.inner.read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.expired = true;
                }
                Err(e)
            }
            outcome => outcome,
        }
    }
}

impl<S: Write> Write for DeadlineStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// How one request was answered: a complete buffered response still to
/// be written, or a `/v1/whatif` stream already written chunk-by-chunk
/// by the handler itself.
enum Handled {
    Plain(u16, String, bool),
    Streamed { keep_alive: bool, wire_ok: bool },
}

/// Serve one connection until the client (or a framing error, or the
/// request read deadline) closes it. HTTP/1.1 requests default to
/// keep-alive, so a well-behaved client can run many sequential requests
/// over one socket; `Connection: close` ends the session after the
/// response it rides on. `POST /v1/whatif` answers are streamed with
/// chunked transfer-encoding as each rule variant completes; everything
/// else is buffered and `Content-Length`-framed. Generic over the stream
/// so the chaos shim's [`FaultStream`] serves through the same loop as a
/// bare socket.
fn serve_connection<S: Read + Write + SocketControl>(
    state: &AppState,
    stream: S,
    policy: &ConnPolicy,
) {
    let _ = stream.control_write_timeout(Some(policy.io_timeout));
    // One buffered reader for the connection's whole lifetime: read-ahead
    // bytes of a pipelined next request live in this buffer, so it must
    // outlive individual requests.
    let mut reader = std::io::BufReader::new(DeadlineStream::new(
        stream,
        policy.io_timeout,
        policy.request_deadline,
    ));
    loop {
        // Between requests: no deadline, just the idle-reap timeout. A
        // clean close here is the normal end of a keep-alive session,
        // not a protocol error — and an idle timeout is not a shed.
        reader.get_mut().disarm(policy.keepalive_idle);
        match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(_) => {}
        }
        // The request's first byte is buffered: its wall clock starts.
        reader.get_mut().arm();
        // A panic anywhere in parsing or handling must not kill the
        // worker: the pool is fixed-size and never respawned, so an
        // unwinding bug would silently shrink it until the service dies.
        // Contain the unwind and answer with a taxonomy-tagged 500.
        let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match http::read_request(&mut reader) {
                Ok((request, keep_alive)) => {
                    let path = request.path.split('?').next().unwrap_or("");
                    if request.method == "POST" && path == "/v1/whatif" {
                        // Streamed: the handler writes the chunked
                        // response itself, one record per chunk, unless
                        // it fails before the first chunk.
                        match handlers::handle_whatif_streaming(
                            state,
                            &request,
                            reader.get_mut(),
                            keep_alive,
                        ) {
                            Ok(wire_ok) => Handled::Streamed { keep_alive, wire_ok },
                            Err((status, body)) => Handled::Plain(status, body, keep_alive),
                        }
                    } else {
                        let (status, body) = handlers::handle(state, &request);
                        Handled::Plain(status, body, keep_alive)
                    }
                }
                // The connection's framing state is unknown after a
                // malformed request; answer and hang up.
                Err(e) => {
                    Handled::Plain(handlers::status_for(&e), handlers::error_body(&e), false)
                }
            }
        }));
        let handled = handled.unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let e = AcsError::EvaluationPanic { design: "request-handler".to_owned(), message };
            // If the panic unwound out of a started stream, this framed
            // error lands after raw chunk bytes — the client sees a torn
            // frame either way, and the connection closes.
            Handled::Plain(handlers::status_for(&e), handlers::error_body(&e), false)
        });
        // A request that ran out its read deadline is a slow-loris (or a
        // wedged peer): count the shed and hang up without answering — the
        // client earned no response and the worker is needed elsewhere.
        if reader.get_mut().expired() {
            state.record_deadline_close();
            return;
        }
        match handled {
            // The client may already be gone; a failed write is not a
            // server fault, but it does end the session.
            Handled::Plain(status, body, keep_alive) => {
                if http::write_response_with(reader.get_mut(), status, &body, keep_alive)
                    .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Handled::Streamed { keep_alive, wire_ok } => {
                if !wire_ok || !keep_alive {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;
    use std::io::Write;

    fn start() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>, Arc<AppState>) {
        let server = Server::bind(ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind ephemeral port");
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();
        (addr, handle, thread, state)
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        http::http_request(addr, method, path, body, Duration::from_secs(10))
            .expect("request round-trips")
    }

    #[test]
    fn serves_all_endpoints_over_loopback() {
        let (addr, handle, thread, _) = start();
        let (status, body) = request(addr, "POST", "/v1/screen", "{\"device\":\"H100 SXM\"}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("license_required"));

        let (status, body) = request(
            addr,
            "POST",
            "/v1/simulate",
            "{\"model\":\"llama3-8b\",\"trace\":{\"duration_s\":5}}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("p99_ttft_s"));

        let (status, body) = request(addr, "GET", "/v1/devices/H100%20SXM", "");
        assert_eq!(status, 200, "{body}");

        let (status, body) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        assert_eq!(m.get("requests").unwrap().get("screen").unwrap().as_u64(), Some(1));

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn repeated_simulate_requests_hit_the_cache_over_the_wire() {
        // One worker pins both connections to one cache lane and one
        // raw front cache, making the hit accounting exact.
        let server =
            Server::bind(ServeConfig { workers: 1, ..ServeConfig::default() }).unwrap();
        let (addr, state) = (server.local_addr(), server.state());
        let (handle, thread) = server.spawn();
        let body = "{\"trace\":{\"duration_s\":5},\"workload\":{\"batch\":8,\"input_len\":512,\"output_len\":64}}";
        let (_, first) = request(addr, "POST", "/v1/simulate", body);
        let (_, second) = request(addr, "POST", "/v1/simulate", body);
        assert_eq!(first, second, "cached response must be byte-identical");
        // The byte-identical repeat short-circuits in the worker's raw
        // front cache; the semantic cache saw only the first request.
        let stats = state.cache_stats()[1];
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(state.raw_hit_count(), 1);
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn repeated_simulate_requests_hit_the_cache_on_the_pool_tier() {
        // The legacy pool has no raw front cache: the repeat is a
        // semantic-cache hit, as it always was.
        let server = Server::bind(ServeConfig {
            workers: 2,
            event_loop: false,
            ..ServeConfig::default()
        })
        .unwrap();
        let (addr, state) = (server.local_addr(), server.state());
        let (handle, thread) = server.spawn();
        let body = "{\"trace\":{\"duration_s\":5},\"workload\":{\"batch\":8,\"input_len\":512,\"output_len\":64}}";
        let (_, first) = request(addr, "POST", "/v1/simulate", body);
        let (_, second) = request(addr, "POST", "/v1/simulate", body);
        assert_eq!(first, second, "cached response must be byte-identical");
        let stats = state.cache_stats()[1];
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(state.raw_hit_count(), 0);
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn garbage_on_the_wire_yields_a_protocol_error_not_a_hang() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("protocol"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn multibyte_paths_do_not_kill_the_worker_pool() {
        let (addr, handle, thread, _) = start();
        // '%' followed by a multibyte UTF-8 char once panicked inside
        // percent_decode; with the default 4 workers, a handful of such
        // requests permanently killed the pool. Send more than that, then
        // prove the server still answers.
        for _ in 0..6 {
            let (status, _) =
                request(addr, "GET", "/v1/devices/%aé", "");
            assert_eq!(status, 404, "undecodable name is a lookup miss, not a crash");
        }
        let (status, _) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "workers must survive multibyte paths");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"POST /v1/screen HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\n{}",
            )
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("duplicate Content-Length"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (addr, handle, thread, _) = start();
        // Raw socket (not HttpClient, whose stale-connection retry could
        // mask a broken keep-alive): two requests down one pipe, two
        // well-framed responses back.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for _ in 0..2 {
            reader
                .get_mut()
                .write_all(b"GET /v1/devices HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "{line}");
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                reader.read_line(&mut header).unwrap();
                if header == "\r\n" {
                    break;
                }
                if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("devices"));
        }
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn the_client_reuses_its_connection_across_requests() {
        let (addr, handle, thread, _) = start();
        let mut client = http::HttpClient::new(addr, Duration::from_secs(10));
        let (status, body) = client.request("GET", "/v1/devices", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            client.request("POST", "/v1/screen", "{\"device\":\"H100 SXM\"}").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) = client.request("GET", "/v1/metrics", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        assert_eq!(m.get("requests").unwrap().get("screen").unwrap().as_u64(), Some(1));
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn connection_close_still_closes_the_socket() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"GET /v1/devices HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
            )
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        // read_to_string returning means the server closed its end.
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn http_1_0_requests_default_to_close() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/devices HTTP/1.0\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn slow_loris_is_shed_by_the_request_deadline() {
        // One worker, so a pinned connection would starve the whole
        // service. The per-op io_timeout alone cannot catch this client:
        // it drips a byte every 50 ms, well inside the 2 s op timeout.
        let server = Server::bind(ServeConfig {
            workers: 1,
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_millis(300),
            keepalive_idle: Duration::from_secs(2),
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let (handle, thread) = server.spawn();

        let mut loris = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        let mut shed = false;
        for byte in b"GET /v1/devices HTTP/1.1\r\nHost: x\r\nX-Drip: aaaaaaaaaaaaaaaa" {
            if loris.write_all(&[*byte]).is_err() {
                shed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
            if started.elapsed() > Duration::from_secs(5) {
                break;
            }
        }
        if !shed {
            // Writes can succeed into the kernel buffer after the server
            // hangs up; the read side is definitive.
            let _ = loris.set_read_timeout(Some(Duration::from_secs(5)));
            let mut buf = [0u8; 64];
            use std::io::Read;
            shed = matches!(loris.read(&mut buf), Ok(0) | Err(_));
        }
        assert!(shed, "server kept reading a dripping request past its deadline");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline shed should happen in ~300ms, took {:?}",
            started.elapsed()
        );

        // The lone worker must be free again — and the shed counted.
        let (status, body) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        let closed = m
            .get("connections")
            .and_then(|c| c.get("deadline_closed"))
            .and_then(acs_errors::json::Value::as_u64);
        assert_eq!(closed, Some(1), "{body}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn idle_keepalive_reaping_is_not_counted_as_a_deadline_shed() {
        let server = Server::bind(ServeConfig {
            workers: 1,
            keepalive_idle: Duration::from_millis(150),
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let (handle, thread) = server.spawn();

        // Connect, complete one request, then go silent: the worker
        // should reap the idle connection without counting a shed.
        let mut client = http::HttpClient::new(addr, Duration::from_secs(5));
        let (status, _) = client.request("GET", "/v1/devices", "").unwrap();
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(400));

        let (status, body) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        let closed = m
            .get("connections")
            .and_then(|c| c.get("deadline_closed"))
            .and_then(acs_errors::json::Value::as_u64);
        assert_eq!(closed, Some(0), "{body}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn chaos_server_survives_faulted_connections_and_counts_them() {
        let server = Server::bind(ServeConfig {
            workers: 2,
            chaos_seed: Some(0xC4A05),
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(2),
            keepalive_idle: Duration::from_millis(500),
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();

        // Many short-lived clients against a fault-injecting server: some
        // requests fail (torn frames, disconnects) — none may wedge a
        // worker or panic the process.
        let mut completed = 0u32;
        for i in 0..40 {
            let mut client = http::HttpClient::with_config(
                addr,
                http::ClientConfig {
                    retries: 1,
                    jitter_seed: 1000 + i,
                    ..http::ClientConfig::uniform(Duration::from_secs(2))
                },
            );
            if let Ok((status, _)) = client.request("GET", "/v1/devices", "") {
                if status == 200 {
                    completed += 1;
                }
            }
        }
        assert!(completed > 0, "no request survived gentle chaos");

        // Both workers must still answer cleanly; the chaos tally proves
        // faults actually fired.
        let (status, body) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        let faults = m
            .get("connections")
            .and_then(|c| c.get("chaos_faults"))
            .and_then(acs_errors::json::Value::as_u64)
            .unwrap_or(0);
        assert!(faults > 0, "chaos seed set but no faults injected: {body}");
        drop(state);
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn client_retries_recover_from_a_flaky_wire() {
        let (addr, handle, thread, _) = start();
        // Client-side fault injection: a gentle plan tears most frames
        // but the bounded retry path re-dials and gets through.
        let mut client = http::HttpClient::with_config(
            addr,
            http::ClientConfig { retries: 4, ..http::ClientConfig::uniform(Duration::from_secs(2)) },
        )
        .with_fault_injection(FaultPlan::gentle(0xF1A7));
        let mut ok = 0u32;
        for _ in 0..20 {
            if let Ok((200, _)) = client.request("GET", "/v1/devices", "") {
                ok += 1;
            }
        }
        assert!(ok >= 10, "retries should carry most requests through gentle faults, got {ok}/20");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn whatif_streams_chunked_ndjson_the_client_decodes() {
        // One worker: both connections share a cache lane, so the
        // second what-if is a semantic-cache hit with exact counts.
        let server =
            Server::bind(ServeConfig { workers: 1, ..ServeConfig::default() }).unwrap();
        let (addr, state) = (server.local_addr(), server.state());
        let (handle, thread) = server.spawn();
        // Raw socket first: the response must actually be chunked on the
        // wire (HttpClient would hide the framing).
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"grid\":{\"tpp_license\":[2400,4800]}}";
        stream
            .write_all(
                format!(
                    "POST /v1/whatif HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut raw = String::new();
        use std::io::Read;
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("Transfer-Encoding: chunked"), "{raw}");
        assert!(raw.trim_end().ends_with("0"), "stream must end with the zero chunk: {raw}");

        // The persistent client decodes the same stream into NDJSON and
        // keeps the connection alive for the next request.
        let mut client = http::HttpClient::new(addr, Duration::from_secs(30));
        let (status, ndjson) = client.request("POST", "/v1/whatif", body).unwrap();
        assert_eq!(status, 200, "{ndjson}");
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), 3, "2 records + summary trailer: {ndjson}");
        for (i, line) in lines[..2].iter().enumerate() {
            let record = parse(line).expect("each streamed line is one JSON record");
            assert_eq!(record.get("variant").unwrap().as_u64(), Some(i as u64));
        }
        let summary = parse(lines[2]).unwrap();
        assert_eq!(summary.get("variants").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("fleet_designs").unwrap().as_u64(), Some(4096));
        let (status, _) = client.request("GET", "/v1/devices", "").unwrap();
        assert_eq!(status, 200, "keep-alive must survive a chunked response");

        // Bad bodies still get plain framed errors, not streams.
        let (status, error) = client.request("POST", "/v1/whatif", "{\"rule\":[]}").unwrap();
        assert_eq!(status, 400, "{error}");
        assert!(error.contains("invalid_config"), "{error}");

        // The whatif counters and cache surfaced in /v1/metrics.
        let (_, metrics) = client.request("GET", "/v1/metrics", "").unwrap();
        let m = parse(&metrics).unwrap();
        assert_eq!(m.get("requests").unwrap().get("whatif").unwrap().as_u64(), Some(3));
        let cache = m.get("caches").unwrap().get("whatif").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1), "{metrics}");
        drop(state);
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn client_retries_reassemble_whatif_streams_across_torn_chunks() {
        let (addr, handle, thread, _) = start();
        // Client-side fault injection tears reads and writes at arbitrary
        // byte boundaries — including mid-chunk-header and mid-chunk-data.
        // The decoder must never mis-frame a torn chunk (no partial line
        // accepted as a record); the retry path re-dials and replays.
        let mut client = http::HttpClient::with_config(
            addr,
            http::ClientConfig {
                retries: 4,
                ..http::ClientConfig::uniform(Duration::from_secs(5))
            },
        )
        .with_fault_injection(FaultPlan::gentle(0xF1A7));
        let body = "{\"rule\":{\"tpp_license\":2400}}";
        let mut ok = 0u32;
        for _ in 0..20 {
            if let Ok((200, ndjson)) = client.request("POST", "/v1/whatif", body) {
                // A response that survived must be complete and
                // well-formed — torn frames may only surface as errors.
                let lines: Vec<&str> = ndjson.lines().collect();
                assert_eq!(lines.len(), 2, "1 record + trailer: {ndjson}");
                for line in &lines {
                    parse(line).expect("every surviving line parses");
                }
                ok += 1;
            }
        }
        assert!(ok >= 10, "retries should carry most streams through gentle faults, got {ok}/20");
        handle.shutdown();
        thread.join().unwrap();
    }

    /// Read one full response off `reader`: status, headers, and the
    /// body (chunked bodies are reassembled). A plain parser with no
    /// retry machinery, so pipelining tests see the wire as-is.
    fn read_one_response<R: std::io::BufRead>(
        reader: &mut R,
    ) -> (u16, Vec<(String, String)>, String) {
        use std::io::Read;
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let status: u16 =
            line.split_whitespace().nth(1).unwrap_or("0").parse().expect("status code");
        let mut headers = Vec::new();
        let (mut content_length, mut chunked) = (0usize, false);
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            let (name, value) = trimmed.split_once(':').expect("header line");
            let (name, value) = (name.to_owned(), value.trim().to_owned());
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap();
            } else if name.eq_ignore_ascii_case("transfer-encoding") && value == "chunked" {
                chunked = true;
            }
            headers.push((name, value));
        }
        let mut body = Vec::new();
        if chunked {
            loop {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let size = usize::from_str_radix(line.trim_end(), 16).expect("chunk size");
                let mut chunk = vec![0u8; size + 2];
                reader.read_exact(&mut chunk).unwrap();
                if size == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..size]);
            }
        } else {
            body.resize(content_length, 0);
            reader.read_exact(&mut body).unwrap();
        }
        (status, headers, String::from_utf8(body).expect("utf-8 body"))
    }

    #[test]
    fn pipelined_requests_are_answered_in_request_order() {
        let (addr, handle, thread, _) = start();
        // Six requests down the pipe in ONE write, each with a
        // distinguishable answer: the unknown-device 404 echoes the
        // queried name, the known device echoes its own.
        let mut wire = Vec::new();
        for i in 0..3 {
            wire.extend_from_slice(
                format!("GET /v1/devices/pipe-{i} HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                    .as_bytes(),
            );
            wire.extend_from_slice(
                b"GET /v1/devices/H100%20SXM HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
            );
        }
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        reader.get_mut().write_all(&wire).unwrap();
        for i in 0..3 {
            let (status, _, body) = read_one_response(&mut reader);
            assert_eq!(status, 404, "{body}");
            assert!(body.contains(&format!("pipe-{i}")), "response out of order: {body}");
            let (status, _, body) = read_one_response(&mut reader);
            assert_eq!(status, 200, "{body}");
            assert!(body.contains("H100"), "response out of order: {body}");
        }
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn torn_byte_dribble_requests_still_parse_and_answer() {
        let (addr, handle, thread, _) = start();
        // Feed two back-to-back requests 1–3 bytes at a time — the
        // incremental parser must buffer partial heads and partial
        // bodies across reads without corrupting the frame boundary.
        let wire = b"POST /v1/screen HTTP/1.1\r\nContent-Length: 21\r\n\r\n{\"device\":\"H100 SXM\"}GET /v1/metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut at = 0;
        let mut step = 1;
        while at < wire.len() {
            let end = (at + step).min(wire.len());
            reader.get_mut().write_all(&wire[at..end]).unwrap();
            reader.get_mut().flush().unwrap();
            at = end;
            step = step % 3 + 1;
            std::thread::sleep(Duration::from_millis(1));
        }
        let (status, _, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("license_required"), "{body}");
        let (status, _, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("requests"), "{body}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn pipelined_chunked_whatif_is_followed_by_the_next_response() {
        let (addr, handle, thread, _) = start();
        // A chunked streaming response and a plain GET pipelined behind
        // it: the chunked frame must terminate cleanly (0-chunk) before
        // the next response starts, all on one connection.
        let whatif_body = "{\"grid\":{\"tpp_license\":[2400,4800]}}";
        let mut wire = Vec::new();
        wire.extend_from_slice(
            format!(
                "POST /v1/whatif HTTP/1.1\r\nContent-Length: {}\r\n\r\n{whatif_body}",
                whatif_body.len()
            )
            .as_bytes(),
        );
        wire.extend_from_slice(b"GET /v1/devices HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        reader.get_mut().write_all(&wire).unwrap();
        let (status, headers, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(
            headers.iter().any(|(n, v)| n == "Transfer-Encoding" && v == "chunked"),
            "whatif must stream chunked: {headers:?}"
        );
        for line in body.lines() {
            parse(line).expect("every NDJSON line parses");
        }
        let (status, _, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("H100"), "{body}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn overload_sheds_expensive_posts_but_answers_cheap_gets() {
        // queue_depth 1 makes the per-poll-round expensive budget 1: a
        // single burst of unique POSTs overcommits it immediately.
        let server = Server::bind(ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let (addr, state) = (server.local_addr(), server.state());
        let (handle, thread) = server.spawn();
        let mut wire = Vec::new();
        for i in 0..24 {
            let body = format!("{{\"config\":{{\"name\":\"shed-{i}\"}}}}");
            wire.extend_from_slice(
                format!(
                    "POST /v1/screen HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        wire.extend_from_slice(b"GET /v1/metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        reader.get_mut().write_all(&wire).unwrap();
        let (mut served, mut shed) = (0u32, 0u32);
        for _ in 0..24 {
            let (status, headers, body) = read_one_response(&mut reader);
            match status {
                200 => served += 1,
                503 => {
                    shed += 1;
                    assert!(
                        headers.iter().any(|(n, v)| n == "Retry-After" && v == "1"),
                        "shed responses carry backoff guidance: {headers:?}"
                    );
                    assert!(body.contains("overloaded"), "{body}");
                }
                other => panic!("unexpected status {other}: {body}"),
            }
        }
        // The cheap GET at the back of the burst is served, not shed.
        let (status, _, body) = read_one_response(&mut reader);
        assert_eq!(status, 200, "cheap GET must survive overload: {body}");
        assert!(served >= 1, "at least the in-budget POST is served");
        assert!(shed >= 1, "the overcommitted burst must shed");
        assert_eq!(state.shed_expensive_count(), u64::from(shed));
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_graceful() {
        let (addr, handle, thread, _) = start();
        let (status, _) = request(addr, "GET", "/v1/devices", "");
        assert_eq!(status, 200);
        handle.shutdown();
        handle.shutdown();
        thread.join().unwrap();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http::http_request(addr, "GET", "/v1/metrics", "", Duration::from_millis(200))
                    .is_err(),
            "server should no longer answer after shutdown"
        );
    }
}
