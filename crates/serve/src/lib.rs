//! `acs-serve`: a zero-dependency HTTP/1.1 query service over the
//! reproduction's policy and simulation engines.
//!
//! The service turns the library pipeline into an interactive tool: an
//! analyst posts an accelerator description and gets back its export
//! classification under each Advanced Computing Rule vintage
//! (`POST /v1/screen`) or its simulated per-phase latency and serving
//! percentiles (`POST /v1/simulate`), without writing Rust. Results are
//! memoised through `acs-cache`'s content-addressed cache — repeated
//! queries, the common case when a dashboard polls a fixed set of
//! designs, are served from memory; `GET /v1/metrics` exposes the hit
//! counters that prove it.
//!
//! Built entirely on `std::net`: no async runtime, no HTTP framework.
//! A fixed worker pool drains a bounded accept queue; overflow is shed
//! with a 503 (`overloaded` in the error taxonomy) rather than queued
//! without bound, and per-connection read/write timeouts bound the
//! damage a slow client can do.
//!
//! # Example
//!
//! ```
//! use acs_serve::{http, Server, ServeConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr();
//! let (handle, thread) = server.spawn();
//! let (status, body) = http::http_request(
//!     addr, "POST", "/v1/screen", "{\"device\":\"H100 SXM\"}", Duration::from_secs(5))?;
//! assert_eq!(status, 200);
//! assert!(body.contains("license_required"));
//! handle.shutdown();
//! thread.join().unwrap();
//! # Ok::<(), acs_errors::AcsError>(())
//! ```

pub mod handlers;
pub mod http;
pub mod loadgen;

pub use handlers::{error_body, handle, status_for, AppState};
pub use loadgen::{run_loadgen, LoadMode, LoadgenConfig, LoadgenReport};

use acs_errors::AcsError;
use std::collections::VecDeque;
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before load shedding.
    pub queue_depth: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
    /// Capacity of each response cache (screen, simulate, sim-steps).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            io_timeout: Duration::from_secs(5),
            cache_capacity: 4096,
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
}

/// Requests a running server stop accepting and drain. Cloneable and
/// sendable across threads; `shutdown` is idempotent.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Signal shutdown and wake the accept loop. Returns once the signal
    /// is delivered; use the join handle from [`Server::spawn`] to wait
    /// for the drain.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // The accept loop blocks in `accept()`; a throwaway local
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    shared: Arc<Shared>,
    config: ServeConfig,
    addr: SocketAddr,
}

impl Server {
    /// Bind the listener and build the shared state.
    ///
    /// # Errors
    ///
    /// [`AcsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Self, AcsError> {
        let io_err = |e: std::io::Error| AcsError::Io {
            path: config.addr.clone(),
            reason: e.to_string(),
        };
        let listener = TcpListener::bind(&config.addr).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        Ok(Server {
            listener,
            state: Arc::new(AppState::new(config.cache_capacity)),
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                stop: AtomicBool::new(false),
            }),
            config,
            addr,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop the server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared), addr: self.addr }
    }

    /// The shared application state (for in-process metrics inspection).
    #[must_use]
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Accept and serve until [`ServerHandle::shutdown`] is called.
    /// Blocks the calling thread; worker threads are joined before
    /// returning, so all in-flight requests finish.
    pub fn run(self) {
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                let state = Arc::clone(&self.state);
                let timeout = self.config.io_timeout;
                std::thread::spawn(move || worker_loop(&shared, &state, timeout))
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if self.shared.stop.load(Ordering::SeqCst) {
                break; // the wake-up connection, or a straggler: drop it
            }
            // Keep-alive makes Nagle hostile: a small response followed
            // by the client's next small request deadlocks against
            // delayed ACKs for ~40 ms per round trip. Flush segments
            // immediately; best-effort, the socket still works without.
            let _ = stream.set_nodelay(true);
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if queue.len() >= self.config.queue_depth {
                drop(queue);
                self.state.record_shed();
                shed(stream);
            } else {
                queue.push_back(stream);
                self.state.record_queue_depth(queue.len());
                drop(queue);
                self.shared.available.notify_one();
            }
        }

        self.shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// [`Server::run`] on a new thread; returns the shutdown handle and
    /// the join handle.
    #[must_use]
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let thread = std::thread::spawn(move || self.run());
        (handle, thread)
    }
}

/// How long the accept thread may spend writing a 503 to a shed
/// connection. Shedding happens exactly when the server is overloaded, so
/// a stalled client must not hold up `accept()` for the full per-request
/// `io_timeout` — give the courtesy response a tight budget and otherwise
/// just drop the connection.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// Reject one connection with a 503 without occupying a worker.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let error = AcsError::Overloaded {
        reason: "accept queue full; retry with backoff".to_owned(),
    };
    let _ = http::write_response(&mut stream, 503, &handlers::error_body(&error));
}

fn worker_loop(shared: &Shared, state: &AppState, timeout: Duration) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    state.record_queue_depth(queue.len());
                    break Some(stream);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(stream) = stream else { return };
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        serve_connection(state, stream);
    }
}

/// Serve one connection until the client (or a framing error) closes it.
/// HTTP/1.1 requests default to keep-alive, so a well-behaved client can
/// run many sequential requests over one socket; `Connection: close`
/// ends the session after the response it rides on.
fn serve_connection(state: &AppState, stream: TcpStream) {
    // One buffered reader for the connection's whole lifetime: read-ahead
    // bytes of a pipelined next request live in this buffer, so it must
    // outlive individual requests.
    let mut reader = std::io::BufReader::new(stream);
    loop {
        // A clean close between requests is the normal end of a
        // keep-alive session, not a protocol error.
        match reader.fill_buf() {
            Ok([]) | Err(_) => return,
            Ok(_) => {}
        }
        // A panic anywhere in parsing or handling must not kill the
        // worker: the pool is fixed-size and never respawned, so an
        // unwinding bug would silently shrink it until the service dies.
        // Contain the unwind and answer with a taxonomy-tagged 500.
        let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match http::read_request(&mut reader) {
                Ok((request, keep_alive)) => {
                    let (status, body) = handlers::handle(state, &request);
                    (status, body, keep_alive)
                }
                // The connection's framing state is unknown after a
                // malformed request; answer and hang up.
                Err(e) => (handlers::status_for(&e), handlers::error_body(&e), false),
            }
        }));
        let (status, body, keep_alive) = handled.unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let e = AcsError::EvaluationPanic { design: "request-handler".to_owned(), message };
            (handlers::status_for(&e), handlers::error_body(&e), false)
        });
        // The client may already be gone; a failed write is not a server
        // fault, but it does end the session.
        if http::write_response_with(reader.get_mut(), status, &body, keep_alive).is_err()
            || !keep_alive
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_errors::json::parse;
    use std::io::Write;

    fn start() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>, Arc<AppState>) {
        let server = Server::bind(ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind ephemeral port");
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();
        (addr, handle, thread, state)
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        http::http_request(addr, method, path, body, Duration::from_secs(10))
            .expect("request round-trips")
    }

    #[test]
    fn serves_all_endpoints_over_loopback() {
        let (addr, handle, thread, _) = start();
        let (status, body) = request(addr, "POST", "/v1/screen", "{\"device\":\"H100 SXM\"}");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("license_required"));

        let (status, body) = request(
            addr,
            "POST",
            "/v1/simulate",
            "{\"model\":\"llama3-8b\",\"trace\":{\"duration_s\":5}}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("p99_ttft_s"));

        let (status, body) = request(addr, "GET", "/v1/devices/H100%20SXM", "");
        assert_eq!(status, 200, "{body}");

        let (status, body) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        assert_eq!(m.get("requests").unwrap().get("screen").unwrap().as_u64(), Some(1));

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn repeated_simulate_requests_hit_the_cache_over_the_wire() {
        let (addr, handle, thread, state) = start();
        let body = "{\"trace\":{\"duration_s\":5},\"workload\":{\"batch\":8,\"input_len\":512,\"output_len\":64}}";
        let (_, first) = request(addr, "POST", "/v1/simulate", body);
        let (_, second) = request(addr, "POST", "/v1/simulate", body);
        assert_eq!(first, second, "cached response must be byte-identical");
        let stats = state.cache_stats()[1];
        assert_eq!((stats.hits, stats.misses), (1, 1));
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn garbage_on_the_wire_yields_a_protocol_error_not_a_hang() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("protocol"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn multibyte_paths_do_not_kill_the_worker_pool() {
        let (addr, handle, thread, _) = start();
        // '%' followed by a multibyte UTF-8 char once panicked inside
        // percent_decode; with the default 4 workers, a handful of such
        // requests permanently killed the pool. Send more than that, then
        // prove the server still answers.
        for _ in 0..6 {
            let (status, _) =
                request(addr, "GET", "/v1/devices/%aé", "");
            assert_eq!(status, 404, "undecodable name is a lookup miss, not a crash");
        }
        let (status, _) = request(addr, "GET", "/v1/metrics", "");
        assert_eq!(status, 200, "workers must survive multibyte paths");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn duplicate_content_length_headers_are_rejected() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"POST /v1/screen HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\n{}",
            )
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("duplicate Content-Length"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (addr, handle, thread, _) = start();
        // Raw socket (not HttpClient, whose stale-connection retry could
        // mask a broken keep-alive): two requests down one pipe, two
        // well-framed responses back.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for _ in 0..2 {
            reader
                .get_mut()
                .write_all(b"GET /v1/devices HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "{line}");
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                reader.read_line(&mut header).unwrap();
                if header == "\r\n" {
                    break;
                }
                if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; content_length];
            std::io::Read::read_exact(&mut reader, &mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("devices"));
        }
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn the_client_reuses_its_connection_across_requests() {
        let (addr, handle, thread, _) = start();
        let mut client = http::HttpClient::new(addr, Duration::from_secs(10));
        let (status, body) = client.request("GET", "/v1/devices", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            client.request("POST", "/v1/screen", "{\"device\":\"H100 SXM\"}").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) = client.request("GET", "/v1/metrics", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let m = parse(&body).unwrap();
        assert_eq!(m.get("requests").unwrap().get("screen").unwrap().as_u64(), Some(1));
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn connection_close_still_closes_the_socket() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"GET /v1/devices HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
            )
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        // read_to_string returning means the server closed its end.
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn http_1_0_requests_default_to_close() {
        let (addr, handle, thread, _) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /v1/devices HTTP/1.0\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_graceful() {
        let (addr, handle, thread, _) = start();
        let (status, _) = request(addr, "GET", "/v1/devices", "");
        assert_eq!(status, 200);
        handle.shutdown();
        handle.shutdown();
        thread.join().unwrap();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http::http_request(addr, "GET", "/v1/metrics", "", Duration::from_millis(200))
                    .is_err(),
            "server should no longer answer after shutdown"
        );
    }
}
