//! Socket-layer chaos: a deterministic fault-injecting stream shim.
//!
//! [`FaultStream`] wraps any byte stream and perturbs its I/O according
//! to a SplitMix64-seeded [`FaultPlan`]: reads come back torn into small
//! fragments, writes are cut short (exercising every `write_all` loop),
//! either side of an operation can stall briefly, and the stream can
//! disconnect mid-message — reads turn into EOF, writes into broken
//! pipes, exactly the shapes a hostile or flaky peer produces.
//!
//! The shim is threaded through both ends of the wire: the server's
//! connection loop wraps accepted sockets when
//! [`crate::ServeConfig::chaos_seed`] is set, and the persistent
//! [`crate::http::HttpClient`] wraps its dialed socket via
//! [`crate::http::HttpClient::with_fault_injection`]. Every fault
//! decision comes from the seed, so a failing CI chaos round replays
//! bit-for-bit from its seed alone.

use acs_llm::rng::SplitMix64;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Probabilities and magnitudes of the injected socket faults. All
/// probabilities are per-operation, in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-stream fault schedule.
    pub seed: u64,
    /// Probability that a read is torn down to a 1–3 byte fragment.
    pub torn_read: f64,
    /// Probability that a write is cut short of the requested length.
    pub partial_write: f64,
    /// Probability of a stall before an operation completes.
    pub stall: f64,
    /// How long a stalled operation sleeps.
    pub stall_for: Duration,
    /// Probability, per operation, that the stream drops dead: reads
    /// return EOF and writes a broken pipe from then on.
    pub disconnect: f64,
}

impl FaultPlan {
    /// A plan that perturbs framing constantly but kills connections
    /// rarely — most requests limp through, proving the stack tolerates
    /// torn I/O rather than merely surviving it.
    #[must_use]
    pub fn gentle(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_read: 0.25,
            partial_write: 0.25,
            stall: 0.05,
            stall_for: Duration::from_millis(2),
            disconnect: 0.01,
        }
    }

    /// A plan that tears everything and disconnects often; used to prove
    /// workers shed broken connections instead of wedging on them.
    #[must_use]
    pub fn harsh(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_read: 0.6,
            partial_write: 0.6,
            stall: 0.15,
            stall_for: Duration::from_millis(3),
            disconnect: 0.08,
        }
    }

    /// The same plan re-seeded (per-connection schedules derive from one
    /// configured seed plus a connection counter).
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        FaultPlan { seed, ..self.clone() }
    }
}

/// The socket-control surface the connection loop needs from a stream,
/// abstracted so a [`FaultStream`]-wrapped socket serves it too.
pub trait SocketControl {
    /// Forward of [`TcpStream::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    fn control_read_timeout(&self, d: Option<Duration>) -> io::Result<()>;
    /// Forward of [`TcpStream::set_write_timeout`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    fn control_write_timeout(&self, d: Option<Duration>) -> io::Result<()>;
}

impl SocketControl for TcpStream {
    fn control_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
    fn control_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(d)
    }
}

impl<S: SocketControl> SocketControl for FaultStream<S> {
    fn control_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.inner.control_read_timeout(d)
    }
    fn control_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        self.inner.control_write_timeout(d)
    }
}

/// A byte stream with deterministic fault injection. Implements `Read`
/// and `Write` by forwarding to the wrapped stream through the fault
/// schedule.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    rng: SplitMix64,
    plan: FaultPlan,
    dead: bool,
    injected: u64,
    tally: Option<Arc<AtomicU64>>,
}

impl<S> FaultStream<S> {
    /// Wrap `inner` under `plan`'s fault schedule.
    #[must_use]
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStream {
            inner,
            rng: SplitMix64::new(plan.seed),
            plan,
            dead: false,
            injected: 0,
            tally: None,
        }
    }

    /// Mirror the injected-fault count into a shared counter (the server
    /// reads it after the connection ends, since the stream is consumed
    /// by the connection loop).
    #[must_use]
    pub fn with_tally(mut self, tally: Arc<AtomicU64>) -> Self {
        self.tally = Some(tally);
        self
    }

    /// Number of faults injected so far on this stream.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Borrow the wrapped stream (the event loop needs the raw fd for
    /// epoll registration; the fault schedule stays in force for I/O).
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutably borrow the wrapped stream.
    #[must_use]
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn note_fault(&mut self) {
        self.injected += 1;
        if let Some(tally) = &self.tally {
            tally.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.next_f64() < p
    }

    /// Apply pre-operation faults; returns `false` when the stream just
    /// died and the caller should produce the disconnect outcome.
    fn pre_op(&mut self) -> bool {
        if self.dead {
            return false;
        }
        if self.roll(self.plan.stall) {
            self.note_fault();
            std::thread::sleep(self.plan.stall_for);
        }
        if self.roll(self.plan.disconnect) {
            self.note_fault();
            self.dead = true;
            return false;
        }
        true
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if !self.pre_op() {
            // A dead peer reads as EOF: the clean half of a disconnect.
            return Ok(0);
        }
        if !buf.is_empty() && self.roll(self.plan.torn_read) {
            self.note_fault();
            let frag = 1 + (self.rng.next_u64() % 3) as usize;
            let frag = frag.min(buf.len());
            return self.inner.read(&mut buf[..frag]);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.pre_op() {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: peer disconnected"));
        }
        if buf.len() > 1 && self.roll(self.plan.partial_write) {
            self.note_fault();
            // A short write is legal `Write` behaviour; `write_all`
            // callers must loop. Cut to a strict prefix so the loop runs.
            let cut = 1 + (self.rng.next_u64() as usize % (buf.len() - 1));
            return self.inner.write(&buf[..cut]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: peer disconnected"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A plan with everything off is a transparent wrapper.
    fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            torn_read: 0.0,
            partial_write: 0.0,
            stall: 0.0,
            stall_for: Duration::ZERO,
            disconnect: 0.0,
        }
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut s = FaultStream::new(Cursor::new(b"hello".to_vec()), quiet(1));
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(s.injected(), 0);
    }

    #[test]
    fn torn_reads_deliver_all_bytes_in_fragments() {
        let mut plan = quiet(7);
        plan.torn_read = 1.0;
        let payload = b"0123456789abcdef".to_vec();
        let mut s = FaultStream::new(Cursor::new(payload.clone()), plan);
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 3, "torn read returned {n} bytes");
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, payload);
        assert!(s.injected() > 0);
    }

    #[test]
    fn partial_writes_compose_with_write_all() {
        let mut plan = quiet(9);
        plan.partial_write = 1.0;
        let mut s = FaultStream::new(Cursor::new(Vec::new()), plan);
        s.write_all(b"the quick brown fox jumps over the lazy dog").unwrap();
        assert_eq!(s.inner.get_ref().as_slice(), b"the quick brown fox jumps over the lazy dog");
        assert!(s.injected() > 0);
    }

    #[test]
    fn disconnect_is_eof_for_reads_and_broken_pipe_for_writes() {
        let mut plan = quiet(3);
        plan.disconnect = 1.0;
        let mut s = FaultStream::new(Cursor::new(b"data".to_vec()), plan);
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "dead stream reads as EOF");
        assert_eq!(s.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(s.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn schedules_replay_from_the_seed() {
        let run = |seed: u64| {
            let mut s = FaultStream::new(Cursor::new(vec![0u8; 256]), FaultPlan::harsh(seed));
            let mut buf = [0u8; 8];
            let mut trace = Vec::new();
            for _ in 0..64 {
                trace.push(s.read(&mut buf).map_err(|e| e.kind()));
            }
            (trace, s.injected())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn tally_mirrors_injected_count() {
        let tally = Arc::new(AtomicU64::new(0));
        let mut plan = quiet(5);
        plan.torn_read = 1.0;
        let mut s = FaultStream::new(Cursor::new(vec![1u8; 64]), plan)
            .with_tally(Arc::clone(&tally));
        let mut buf = [0u8; 8];
        for _ in 0..10 {
            let _ = s.read(&mut buf).unwrap();
        }
        assert_eq!(tally.load(Ordering::Relaxed), s.injected());
        assert!(s.injected() >= 10);
    }
}
