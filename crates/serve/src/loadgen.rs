//! A multi-connection, pipelined load generator for the service.
//!
//! The original closed-loop single-in-flight client could not saturate
//! the event-loop tier: with one request on the wire per connection,
//! measured QPS is bounded by round-trip latency, not by the server.
//! This driver opens a configurable number of connections and keeps a
//! configurable number of requests in flight on each (HTTP/1.1
//! pipelining), so the server-side limit is what gets measured. Latency
//! percentiles are reported overall and per request class (repeated vs
//! unique), since under priority shedding the two classes see very
//! different service.

use acs_errors::AcsError;
use acs_telemetry::Histogram;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which request stream to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Every `/v1/simulate` body is distinct (unique trace seeds): all
    /// misses, every request pays a full simulation.
    Unique,
    /// Every body is identical: all hits after the first.
    Repeated,
    /// Alternate unique and repeated bodies.
    Mixed,
    /// Every `/v1/screen` body is a distinct config: all misses, but
    /// each miss is a cheap policy screening rather than a simulation —
    /// the unique-throughput shape for the event-loop tier.
    UniqueScreen,
}

impl LoadMode {
    /// Parse the CLI spelling.
    ///
    /// # Errors
    ///
    /// [`AcsError::InvalidConfig`] on an unknown mode name.
    pub fn parse(s: &str) -> Result<Self, AcsError> {
        match s {
            "unique" => Ok(LoadMode::Unique),
            "repeated" => Ok(LoadMode::Repeated),
            "mixed" => Ok(LoadMode::Mixed),
            "unique-screen" | "unique_screen" => Ok(LoadMode::UniqueScreen),
            other => Err(AcsError::InvalidConfig {
                field: "mode".to_owned(),
                reason: format!(
                    "unknown mode {other:?} (expected unique, repeated, mixed, or unique-screen)"
                ),
            }),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads (one connection each when
    /// `connections` is zero).
    pub concurrency: usize,
    /// Client connections to open; zero means one per `concurrency`
    /// thread. Each connection runs on its own thread.
    pub connections: usize,
    /// Requests in flight per connection (HTTP/1.1 pipelining depth);
    /// values below one mean a single request in flight.
    pub pipeline: usize,
    /// Request stream shape.
    pub mode: LoadMode,
    /// Per-request timeout (applied to the socket reads).
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            concurrency: 4,
            connections: 0,
            pipeline: 1,
            mode: LoadMode::Repeated,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Latency summary for one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLatency {
    /// Class label (`repeated` or `unique`).
    pub class: String,
    /// Successful requests in the class.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests that returned HTTP 200.
    pub succeeded: usize,
    /// Requests that failed (transport error or non-200).
    pub failed: usize,
    /// Sustained queries per second over the run.
    pub qps: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Per-class latency percentiles (repeated vs unique bodies).
    pub per_class: Vec<ClassLatency>,
}

/// Whether request `i` of `mode` repeats an earlier body.
fn is_repeat(mode: LoadMode, i: usize) -> bool {
    match mode {
        LoadMode::Repeated => true,
        LoadMode::Unique | LoadMode::UniqueScreen => false,
        LoadMode::Mixed => i.is_multiple_of(2),
    }
}

/// The request path for `mode` (`/v1/screen` for the cheap unique-work
/// stream, `/v1/simulate` otherwise).
#[must_use]
pub fn request_path(mode: LoadMode) -> &'static str {
    match mode {
        LoadMode::UniqueScreen => "/v1/screen",
        _ => "/v1/simulate",
    }
}

/// The request body for request number `i` under `mode`. Unique
/// simulate bodies vary the trace seed, which changes the arrival
/// pattern and so defeats the response cache; unique screen bodies vary
/// the config name, making every request a distinct (but cheap) policy
/// screening.
#[must_use]
pub fn request_body(mode: LoadMode, i: usize) -> String {
    if mode == LoadMode::UniqueScreen {
        return format!("{{\"config\":{{\"name\":\"loadgen-{i}\"}}}}");
    }
    let seed = match mode {
        LoadMode::Repeated => 7,
        LoadMode::Unique | LoadMode::UniqueScreen => 1000 + i as u64,
        LoadMode::Mixed => {
            if i.is_multiple_of(2) {
                7
            } else {
                1000 + i as u64
            }
        }
    };
    format!(
        "{{\"model\":\"llama3-8b\",\"workload\":{{\"batch\":8,\"input_len\":512,\"output_len\":64}},\
         \"trace\":{{\"rate_rps\":4,\"duration_s\":5,\"seed\":{seed}}}}}"
    )
}

/// Read one `Content-Length`-framed (or chunked) response off `reader`,
/// discarding the body. Returns the status code.
fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<u16> {
    let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed");
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(eof());
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(eof());
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad("bad Content-Length"))?;
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let mut sink = [0u8; 8192];
    if chunked {
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(eof());
            }
            let size = usize::from_str_radix(line.trim_end(), 16)
                .map_err(|_| bad("bad chunk size"))?;
            let mut left = size + 2; // chunk data + CRLF
            while left > 0 {
                let take = left.min(sink.len());
                let n = reader.read(&mut sink[..take])?;
                if n == 0 {
                    return Err(eof());
                }
                left -= n;
            }
            if size == 0 {
                break;
            }
        }
    } else {
        let mut left = content_length;
        while left > 0 {
            let take = left.min(sink.len());
            let n = reader.read(&mut sink[..take])?;
            if n == 0 {
                return Err(eof());
            }
            left -= n;
        }
    }
    Ok(status)
}

/// One connection's worth of the drive: claim burst indices from the
/// shared counter, pipeline each burst in one write, read the responses
/// back in order. Returns the number of failed requests.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: SocketAddr,
    config: &LoadgenConfig,
    next: &AtomicUsize,
    overall: &Histogram,
    repeated: &Histogram,
    unique: &Histogram,
) -> usize {
    let depth = config.pipeline.max(1);
    let path = request_path(config.mode);
    let mut failures = 0usize;
    let mut redials = 0usize;
    'reconnect: loop {
        let stream = match TcpStream::connect_timeout(&addr, config.timeout) {
            Ok(s) => s,
            Err(_) => {
                // Whatever quota this connection would have claimed is
                // picked up by the other connections; report nothing.
                return failures;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(config.timeout));
        let _ = stream.set_write_timeout(Some(config.timeout));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return failures,
        };
        let mut reader = BufReader::new(stream);
        let mut burst = Vec::with_capacity(depth);
        let mut wire = Vec::with_capacity(depth * 256);
        loop {
            burst.clear();
            wire.clear();
            for _ in 0..depth {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.requests {
                    break;
                }
                let body = request_body(config.mode, i);
                wire.extend_from_slice(
                    format!(
                        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
                burst.push(i);
            }
            if burst.is_empty() {
                return failures;
            }
            let sent = Instant::now();
            if writer.write_all(&wire).is_err() {
                failures += burst.len();
                redials += 1;
                if redials > 3 {
                    return failures;
                }
                continue 'reconnect;
            }
            for &i in &burst {
                match read_response(&mut reader) {
                    Ok(200) => {
                        let ms = sent.elapsed().as_secs_f64() * 1e3;
                        overall.record(ms);
                        if is_repeat(config.mode, i) {
                            repeated.record(ms);
                        } else {
                            unique.record(ms);
                        }
                    }
                    Ok(_) => failures += 1,
                    Err(_) => {
                        failures += 1;
                        redials += 1;
                        if redials > 3 {
                            return failures;
                        }
                        continue 'reconnect;
                    }
                }
            }
        }
    }
}

/// Issue `config.requests` POSTs against `addr` from
/// `max(connections, 1)` pipelined connections (one thread each) and
/// aggregate latencies, overall and per request class.
///
/// # Errors
///
/// [`AcsError::Infeasible`] when zero requests were configured.
pub fn run_loadgen(addr: SocketAddr, config: &LoadgenConfig) -> Result<LoadgenReport, AcsError> {
    if config.requests == 0 {
        return Err(AcsError::Infeasible {
            reason: "loadgen needs at least one request".to_owned(),
        });
    }
    let conns = if config.connections > 0 { config.connections } else { config.concurrency }
        .max(1)
        .min(config.requests);
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    // Merge-safe telemetry histograms shared by every connection
    // thread, so the report's p50/p99 come from the same quantile logic
    // as the rest of the stack.
    let overall = Histogram::standalone();
    let repeated = Histogram::standalone();
    let unique = Histogram::standalone();
    let failures: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                let (next, overall, repeated, unique) = (&next, &overall, &repeated, &unique);
                scope.spawn(move || {
                    drive_connection(addr, config, next, overall, repeated, unique)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let sample = overall.snapshot();
    let succeeded = usize::try_from(sample.count).unwrap_or(usize::MAX);
    let failed: usize = failures.iter().sum();
    let per_class = [("repeated", &repeated), ("unique", &unique)]
        .into_iter()
        .filter_map(|(class, histogram)| {
            let s = histogram.snapshot();
            (s.count > 0).then(|| ClassLatency {
                class: class.to_owned(),
                count: s.count,
                mean_ms: s.mean(),
                p50_ms: s.p50(),
                p99_ms: s.p99(),
            })
        })
        .collect();
    Ok(LoadgenReport {
        requests: config.requests,
        succeeded,
        failed,
        qps: if elapsed_s > 0.0 { config.requests as f64 / elapsed_s } else { 0.0 },
        mean_ms: sample.mean(),
        p50_ms: sample.p50(),
        p99_ms: sample.p99(),
        elapsed_s,
        per_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_repeat_or_differ_as_the_mode_demands() {
        assert_eq!(request_body(LoadMode::Repeated, 0), request_body(LoadMode::Repeated, 9));
        assert_ne!(request_body(LoadMode::Unique, 0), request_body(LoadMode::Unique, 1));
        assert_eq!(request_body(LoadMode::Mixed, 0), request_body(LoadMode::Mixed, 2));
        assert_ne!(request_body(LoadMode::Mixed, 1), request_body(LoadMode::Mixed, 3));
        assert_ne!(
            request_body(LoadMode::UniqueScreen, 0),
            request_body(LoadMode::UniqueScreen, 1)
        );
        assert_eq!(request_path(LoadMode::UniqueScreen), "/v1/screen");
        assert_eq!(request_path(LoadMode::Repeated), "/v1/simulate");
    }

    #[test]
    fn mode_parsing_accepts_the_cli_spellings() {
        assert_eq!(LoadMode::parse("unique").unwrap(), LoadMode::Unique);
        assert_eq!(LoadMode::parse("repeated").unwrap(), LoadMode::Repeated);
        assert_eq!(LoadMode::parse("mixed").unwrap(), LoadMode::Mixed);
        assert_eq!(LoadMode::parse("unique-screen").unwrap(), LoadMode::UniqueScreen);
        assert_eq!(LoadMode::parse("chaos").unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn zero_requests_is_a_typed_error() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = run_loadgen(addr, &LoadgenConfig { requests: 0, ..LoadgenConfig::default() });
        assert_eq!(err.unwrap_err().kind(), "infeasible");
    }

    #[test]
    fn loadgen_measures_a_live_server_and_repeats_hit_cache() {
        let server = crate::Server::bind(crate::ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();
        let report = run_loadgen(
            addr,
            &LoadgenConfig {
                requests: 20,
                connections: 2,
                pipeline: 4,
                ..LoadgenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.succeeded, 20);
        assert_eq!(report.failed, 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms > 0.0 && report.p50_ms <= report.p99_ms);
        assert_eq!(report.per_class.len(), 1, "all-repeated stream has one class");
        assert_eq!(report.per_class[0].class, "repeated");
        // Repeats land in the semantic cache or, on the event-loop
        // tier, the workers' raw front caches; between them all but the
        // first identical request is a hit.
        let stats = state.cache_stats()[1];
        assert!(
            stats.hits + state.raw_hit_count() >= 18,
            "all but the first identical request should hit: semantic {} raw {}",
            stats.hits,
            state.raw_hit_count(),
        );
        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn pipelined_unique_screen_drive_is_all_misses_but_succeeds() {
        let server = crate::Server::bind(crate::ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();
        let report = run_loadgen(
            addr,
            &LoadgenConfig {
                requests: 24,
                connections: 3,
                pipeline: 8,
                mode: LoadMode::UniqueScreen,
                ..LoadgenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.succeeded, 24, "{report:?}");
        assert_eq!(report.per_class[0].class, "unique");
        assert_eq!(state.cache_stats()[0].misses, 24, "every unique screen is a miss");
        assert_eq!(state.raw_hit_count(), 0);
        handle.shutdown();
        thread.join().unwrap();
    }
}
