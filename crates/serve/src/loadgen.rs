//! A closed-loop load generator for the service, used to demonstrate the
//! cache's effect: a 100%-repeated request stream should sustain an
//! order of magnitude more QPS than a 100%-unique stream, because every
//! repeat is a cache lookup instead of a simulation.

use crate::http::HttpClient;
use acs_errors::AcsError;
use acs_telemetry::Histogram;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which request stream to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Every request body is distinct (unique trace seeds): all misses.
    Unique,
    /// Every request body is identical: all hits after the first.
    Repeated,
    /// Alternate unique and repeated bodies.
    Mixed,
}

impl LoadMode {
    /// Parse the CLI spelling.
    ///
    /// # Errors
    ///
    /// [`AcsError::InvalidConfig`] on an unknown mode name.
    pub fn parse(s: &str) -> Result<Self, AcsError> {
        match s {
            "unique" => Ok(LoadMode::Unique),
            "repeated" => Ok(LoadMode::Repeated),
            "mixed" => Ok(LoadMode::Mixed),
            other => Err(AcsError::InvalidConfig {
                field: "mode".to_owned(),
                reason: format!("unknown mode {other:?} (expected unique, repeated, or mixed)"),
            }),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Request stream shape.
    pub mode: LoadMode,
    /// Per-request timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            concurrency: 4,
            mode: LoadMode::Repeated,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests issued.
    pub requests: usize,
    /// Requests that returned HTTP 200.
    pub succeeded: usize,
    /// Requests that failed (transport error or non-200).
    pub failed: usize,
    /// Sustained queries per second over the run.
    pub qps: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
}

/// The `/v1/simulate` body for request number `i` under `mode`. Unique
/// bodies vary the trace seed, which changes the arrival pattern and so
/// defeats the response cache; the per-step cost cache still helps, which
/// is exactly the layering the serving path is designed to have.
#[must_use]
pub fn request_body(mode: LoadMode, i: usize) -> String {
    let seed = match mode {
        LoadMode::Repeated => 7,
        LoadMode::Unique => 1000 + i as u64,
        LoadMode::Mixed => {
            if i.is_multiple_of(2) {
                7
            } else {
                1000 + i as u64
            }
        }
    };
    format!(
        "{{\"model\":\"llama3-8b\",\"workload\":{{\"batch\":8,\"input_len\":512,\"output_len\":64}},\
         \"trace\":{{\"rate_rps\":4,\"duration_s\":5,\"seed\":{seed}}}}}"
    )
}

/// Issue `config.requests` POSTs to `/v1/simulate` on `addr` from
/// `config.concurrency` threads and aggregate latencies.
///
/// # Errors
///
/// [`AcsError::Infeasible`] when zero requests were configured.
pub fn run_loadgen(addr: SocketAddr, config: &LoadgenConfig) -> Result<LoadgenReport, AcsError> {
    if config.requests == 0 {
        return Err(AcsError::Infeasible {
            reason: "loadgen needs at least one request".to_owned(),
        });
    }
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let threads = config.concurrency.max(1).min(config.requests);
    // One histogram shared by every client thread: the same merge-safe
    // instrument the rest of the stack uses, so the report's p50/p99 come
    // from the telemetry quantile logic instead of a private percentile
    // implementation.
    let latency_ms = Histogram::standalone();
    let failures: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let latency_ms = &latency_ms;
                scope.spawn(move || {
                    // One persistent client per thread: requests reuse the
                    // same keep-alive connection, so measured latency is
                    // request service time rather than TCP handshakes.
                    let mut client = HttpClient::new(addr, config.timeout);
                    let mut failures = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= config.requests {
                            break;
                        }
                        let body = request_body(config.mode, i);
                        let sent = Instant::now();
                        match client.request("POST", "/v1/simulate", &body) {
                            Ok((200, _)) => {
                                latency_ms.record(sent.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok(_) | Err(_) => failures += 1,
                        }
                    }
                    failures
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let sample = latency_ms.snapshot();
    let succeeded = usize::try_from(sample.count).unwrap_or(usize::MAX);
    let failed: usize = failures.iter().sum();
    Ok(LoadgenReport {
        requests: config.requests,
        succeeded,
        failed,
        qps: if elapsed_s > 0.0 { config.requests as f64 / elapsed_s } else { 0.0 },
        mean_ms: sample.mean(),
        p50_ms: sample.p50(),
        p99_ms: sample.p99(),
        elapsed_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_repeat_or_differ_as_the_mode_demands() {
        assert_eq!(request_body(LoadMode::Repeated, 0), request_body(LoadMode::Repeated, 9));
        assert_ne!(request_body(LoadMode::Unique, 0), request_body(LoadMode::Unique, 1));
        assert_eq!(request_body(LoadMode::Mixed, 0), request_body(LoadMode::Mixed, 2));
        assert_ne!(request_body(LoadMode::Mixed, 1), request_body(LoadMode::Mixed, 3));
    }

    #[test]
    fn mode_parsing_accepts_the_cli_spellings() {
        assert_eq!(LoadMode::parse("unique").unwrap(), LoadMode::Unique);
        assert_eq!(LoadMode::parse("repeated").unwrap(), LoadMode::Repeated);
        assert_eq!(LoadMode::parse("mixed").unwrap(), LoadMode::Mixed);
        assert_eq!(LoadMode::parse("chaos").unwrap_err().kind(), "invalid_config");
    }

    #[test]
    fn zero_requests_is_a_typed_error() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = run_loadgen(addr, &LoadgenConfig { requests: 0, ..LoadgenConfig::default() });
        assert_eq!(err.unwrap_err().kind(), "infeasible");
    }

    #[test]
    fn loadgen_measures_a_live_server_and_repeats_hit_cache() {
        let server = crate::Server::bind(crate::ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let state = server.state();
        let (handle, thread) = server.spawn();
        let report = run_loadgen(
            addr,
            &LoadgenConfig { requests: 20, concurrency: 2, ..LoadgenConfig::default() },
        )
        .unwrap();
        assert_eq!(report.succeeded, 20);
        assert_eq!(report.failed, 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_ms > 0.0 && report.p50_ms <= report.p99_ms);
        let stats = state.cache_stats()[1];
        assert!(stats.hits >= 19 - 1, "all but the first identical request should hit");
        handle.shutdown();
        thread.join().unwrap();
    }
}
